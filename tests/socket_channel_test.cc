#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/casper/messages.h"
#include "src/common/stopwatch.h"
#include "src/obs/casper_metrics.h"
#include "src/transport/listener.h"
#include "src/transport/resilient_client.h"
#include "src/transport/socket_channel.h"

/// SocketChannel behavior against live, dead, restarting, and
/// never-answering peers: framed round trips, connection pooling under
/// concurrency, reconnect-with-backoff across a listener restart, the
/// backoff fast-fail gate, deadline-bounded I/O on a peer that accepts
/// but never answers (the slow-peer case io_timeout alone would let
/// hang for seconds), and the end-to-end guarantee that a
/// ResilientClient deadline holds across dials, retries, and backoff.

namespace casper {
namespace {

using transport::CallContext;
using transport::ListenerOptions;
using transport::SocketChannel;
using transport::SocketChannelOptions;
using transport::SocketListener;

std::string TempSocketPath(const char* tag) {
  return "unix:/tmp/casper_" + std::string(tag) + "_" +
         std::to_string(getpid()) + ".sock";
}

transport::SocketHandler EchoHandler() {
  return [](std::string_view request, const CallContext&) {
    return Result<std::string>(std::string(request));
  };
}

TEST(SocketChannelTest, RoundTripOverUnixSocket) {
  obs::MetricsRegistry registry;
  obs::CasperMetrics metrics(&registry);
  ListenerOptions server_options;
  server_options.metrics = &metrics;
  const std::string address = TempSocketPath("roundtrip");
  auto listener =
      SocketListener::Start(address, EchoHandler(), server_options);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();

  SocketChannelOptions options;
  options.metrics = &metrics;
  SocketChannel channel(address, options);
  for (int i = 0; i < 20; ++i) {
    const std::string request = "payload-" + std::to_string(i);
    auto response = channel.Call(request, CallContext{});
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response.value(), request);
  }
  const transport::SocketChannelStats stats = channel.stats();
  EXPECT_EQ(stats.calls, 20u);
  EXPECT_EQ(stats.dials, 1u) << "sequential calls reuse one pooled conn";
  (*listener)->Shutdown();
}

TEST(SocketChannelTest, RoundTripOverTcp) {
  auto listener = SocketListener::Start("127.0.0.1:0", EchoHandler());
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  SocketChannel channel((*listener)->bound_address());
  auto response = channel.Call("over tcp", CallContext{});
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value(), "over tcp");
  (*listener)->Shutdown();
}

TEST(SocketChannelTest, ConcurrentCallsEachGetTheirOwnResponse) {
  const std::string address = TempSocketPath("concurrent");
  auto listener = SocketListener::Start(address, EchoHandler());
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();

  SocketChannel channel(address);
  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 25;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&channel, &mismatches, &failures, t] {
      for (int i = 0; i < kCallsPerThread; ++i) {
        const std::string request =
            "t" + std::to_string(t) + "-" + std::to_string(i);
        auto response = channel.Call(request, CallContext{});
        if (!response.ok()) {
          ++failures;
        } else if (response.value() != request) {
          ++mismatches;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0)
      << "responses crossed between concurrent calls";
  (*listener)->Shutdown();
}

TEST(SocketChannelTest, ReconnectsAfterListenerRestart) {
  const std::string address = TempSocketPath("restart");
  auto listener = SocketListener::Start(address, EchoHandler());
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();

  SocketChannelOptions options;
  options.backoff_initial_seconds = 0.005;
  options.backoff_max_seconds = 0.05;
  SocketChannel channel(address, options);
  ASSERT_TRUE(channel.Call("before", CallContext{}).ok());

  (*listener)->Shutdown();
  // The pooled connection is dead and redials fail until the peer is
  // back; every failure is typed and retryable.
  for (int i = 0; i < 5; ++i) {
    auto down = channel.Call("down", CallContext{});
    ASSERT_FALSE(down.ok());
    EXPECT_TRUE(down.status().IsRetryable()) << down.status().ToString();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  auto restarted = SocketListener::Start(address, EchoHandler());
  ASSERT_TRUE(restarted.ok()) << restarted.status().ToString();
  bool recovered = false;
  for (int i = 0; i < 200 && !recovered; ++i) {
    recovered = channel.Call("after", CallContext{}).ok();
    if (!recovered) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(recovered) << "channel never recovered after restart";
  const transport::SocketChannelStats stats = channel.stats();
  EXPECT_GE(stats.dial_failures, 1u);
  EXPECT_GE(stats.reconnects, 1u);
  (*restarted)->Shutdown();
}

TEST(SocketChannelTest, BackoffGateFailsFastWithoutRedialing) {
  SocketChannelOptions options;
  options.connect_timeout_seconds = 0.1;
  // A wide window so the fast-fail path is deterministic.
  options.backoff_initial_seconds = 5.0;
  options.backoff_jitter_fraction = 0.0;
  SocketChannel channel("unix:/tmp/casper_no_such_peer.sock", options);

  auto first = channel.Call("x", CallContext{});
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.status().code(), StatusCode::kUnavailable);

  auto second = channel.Call("x", CallContext{});
  ASSERT_FALSE(second.ok());
  EXPECT_NE(second.status().message().find("reconnect backoff"),
            std::string_view::npos)
      << second.status().ToString();

  const transport::SocketChannelStats stats = channel.stats();
  EXPECT_EQ(stats.dials, 1u) << "the second call must not redial";
  EXPECT_EQ(stats.dial_failures, 1u);
  EXPECT_GE(stats.backoff_fastfails, 1u);
}

/// A TCP listener that accepts nothing: connects succeed through the
/// kernel backlog, but no byte is ever answered — the worst-case slow
/// peer for a client-side deadline.
class NeverAcceptingListener {
 public:
  NeverAcceptingListener() {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    EXPECT_EQ(listen(fd_, 8), 0);
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    EXPECT_EQ(
        getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len), 0);
    address_ = "127.0.0.1:" + std::to_string(ntohs(bound.sin_port));
  }
  ~NeverAcceptingListener() {
    if (fd_ >= 0) close(fd_);
  }
  const std::string& address() const { return address_; }

 private:
  int fd_ = -1;
  std::string address_;
};

TEST(SocketChannelTest, DeadlineBoundsIoOnNeverAnsweringPeer) {
  NeverAcceptingListener dead_peer;
  SocketChannelOptions options;
  options.io_timeout_seconds = 30.0;  // The deadline must win, not this.
  SocketChannel channel(dead_peer.address(), options);

  CallContext context;
  context.deadline_seconds = 0.3;
  Stopwatch watch;
  auto response = channel.Call("stalls forever", context);
  const double elapsed = watch.ElapsedSeconds();
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kUnavailable);
  EXPECT_GE(elapsed, 0.25);
  EXPECT_LT(elapsed, 3.0)
      << "the 30s io timeout leaked past the 0.3s deadline";
  EXPECT_GE(channel.stats().io_timeouts, 1u);
}

/// Satellite regression: a ResilientClient deadline is end-to-end. A
/// dead peer costs the caller its deadline — dials, io stalls, retry
/// backoffs, and breaker bookkeeping all together — and the final
/// status is kDeadlineExceeded, not a leaked retryable.
TEST(SocketChannelTest, ResilientClientDeadlineHoldsEndToEnd) {
  NeverAcceptingListener dead_peer;
  obs::MetricsRegistry registry;
  obs::CasperMetrics metrics(&registry);

  SocketChannelOptions channel_options;
  channel_options.io_timeout_seconds = 30.0;
  channel_options.metrics = &metrics;
  SocketChannel channel(dead_peer.address(), channel_options);

  transport::ResilienceOptions resilience;
  resilience.retry.max_attempts = 10;
  resilience.retry.deadline_seconds = 0.5;
  resilience.retry.initial_backoff_seconds = 0.001;
  resilience.retry.max_backoff_seconds = 0.01;
  resilience.breaker.failure_threshold = 100;  // Deadline, not breaker.
  resilience.degradation.serve_degraded_from_cache = false;
  resilience.metrics = &metrics;
  transport::ResilientClient client(&channel, resilience);

  CloakedQueryMsg query;
  query.kind = QueryKind::kNearestPublic;
  query.cloak = Rect(0.4, 0.4, 0.6, 0.6);

  Stopwatch watch;
  auto response = client.Execute(query, nullptr);
  const double elapsed = watch.ElapsedSeconds();
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded)
      << response.status().ToString();
  EXPECT_GE(elapsed, 0.4);
  EXPECT_LT(elapsed, 3.0) << "attempts did not share one deadline budget";
}

TEST(SocketChannelTest, GarbageResponseIsTypedDataLoss) {
  // A raw TCP server that answers every connection with non-frame
  // bytes: the channel must surface kDataLoss and drop the conn.
  const int listen_fd = socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                 sizeof(addr)),
            0);
  ASSERT_EQ(listen(listen_fd, 4), 0);
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ASSERT_EQ(
      getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &len), 0);
  const std::string address =
      "127.0.0.1:" + std::to_string(ntohs(bound.sin_port));

  std::thread evil_server([listen_fd] {
    const int conn = accept(listen_fd, nullptr, nullptr);
    if (conn < 0) return;
    const char garbage[] = "HTTP/1.1 400 Bad Request\r\n\r\n";
    (void)!write(conn, garbage, sizeof(garbage) - 1);
    close(conn);
  });

  SocketChannel channel(address);
  auto response = channel.Call("hello?", CallContext{});
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kDataLoss)
      << response.status().ToString();
  EXPECT_GE(channel.stats().data_loss, 1u);

  evil_server.join();
  close(listen_fd);
}

}  // namespace
}  // namespace casper
