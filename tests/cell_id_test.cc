#include "src/anonymizer/cell_id.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace casper::anonymizer {
namespace {

TEST(CellIdTest, RootProperties) {
  const CellId root = CellId::Root();
  EXPECT_TRUE(root.is_root());
  EXPECT_EQ(root.GridDim(), 1u);
  EXPECT_EQ(root.level, 0u);
}

TEST(CellIdTest, ParentChildRoundTrip) {
  const CellId cell{3, 5, 6};
  for (const CellId& child : cell.Children()) {
    EXPECT_EQ(child.Parent(), cell);
    EXPECT_EQ(child.level, 4u);
  }
}

TEST(CellIdTest, ChildrenAreDistinctAndOrdered) {
  const CellId cell{2, 1, 3};
  const auto kids = cell.Children();
  // (SW, SE, NW, NE) layout.
  EXPECT_EQ(kids[0], (CellId{3, 2, 6}));
  EXPECT_EQ(kids[1], (CellId{3, 3, 6}));
  EXPECT_EQ(kids[2], (CellId{3, 2, 7}));
  EXPECT_EQ(kids[3], (CellId{3, 3, 7}));
}

TEST(CellIdTest, NeighborsShareParentAndAxis) {
  for (uint32_t x = 0; x < 8; ++x) {
    for (uint32_t y = 0; y < 8; ++y) {
      const CellId cell{3, x, y};
      const CellId h = cell.HorizontalNeighbor();
      const CellId v = cell.VerticalNeighbor();
      EXPECT_EQ(h.Parent(), cell.Parent());
      EXPECT_EQ(v.Parent(), cell.Parent());
      EXPECT_EQ(h.y, cell.y);  // Same row.
      EXPECT_NE(h.x, cell.x);
      EXPECT_EQ(v.x, cell.x);  // Same column.
      EXPECT_NE(v.y, cell.y);
      // Neighborhood is symmetric.
      EXPECT_EQ(h.HorizontalNeighbor(), cell);
      EXPECT_EQ(v.VerticalNeighbor(), cell);
    }
  }
}

TEST(CellIdTest, ChildSlotCoversAllQuadrants) {
  const CellId cell{1, 0, 0};
  std::unordered_set<int> slots;
  for (const CellId& child : cell.Children()) {
    slots.insert(child.ChildSlot());
  }
  EXPECT_EQ(slots.size(), 4u);
}

TEST(CellIdTest, IsAncestorOf) {
  const CellId root = CellId::Root();
  const CellId cell{3, 5, 6};
  EXPECT_TRUE(root.IsAncestorOf(cell));
  EXPECT_TRUE(cell.IsAncestorOf(cell));
  EXPECT_TRUE(cell.Parent().IsAncestorOf(cell));
  EXPECT_FALSE(cell.IsAncestorOf(cell.Parent()));
  EXPECT_FALSE(cell.HorizontalNeighbor().IsAncestorOf(cell));
  for (const CellId& child : cell.Children()) {
    EXPECT_TRUE(cell.IsAncestorOf(child));
  }
}

TEST(CellIdTest, HashDistinguishesCells) {
  CellIdHash hash;
  std::unordered_set<size_t> seen;
  for (uint32_t level = 0; level < 4; ++level) {
    const uint32_t dim = 1u << level;
    for (uint32_t x = 0; x < dim; ++x) {
      for (uint32_t y = 0; y < dim; ++y) {
        seen.insert(hash(CellId{level, x, y}));
      }
    }
  }
  // 1 + 4 + 16 + 64 = 85 distinct cells; allow zero collisions here.
  EXPECT_EQ(seen.size(), 85u);
}

TEST(CellIdTest, ToStringFormat) {
  EXPECT_EQ((CellId{2, 1, 3}).ToString(), "L2(1,3)");
}

}  // namespace
}  // namespace casper::anonymizer
