#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>

/// End-to-end test of the casper_cli tool: drives the binary through a
/// scripted session over a pipe and checks the emitted answers. Locates
/// the binary relative to the test executable (both live in the build
/// tree).

namespace {

std::string RunCli(const std::string& script) {
  // Tests run from build/tests; the tool lives in build/tools.
  const char* candidates[] = {"./tools/casper_cli", "../tools/casper_cli",
                              "build/tools/casper_cli"};
  std::string binary;
  for (const char* c : candidates) {
    if (std::FILE* f = std::fopen(c, "r")) {
      std::fclose(f);
      binary = c;
      break;
    }
  }
  if (binary.empty()) return "<binary-not-found>";

  const std::string command =
      "printf '" + script + "' | " + binary + " 2>/dev/null";
  std::FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return "<popen-failed>";
  std::string output;
  char buf[512];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) output += buf;
  pclose(pipe);
  return output;
}

TEST(CliTest, FullSession) {
  const std::string output = RunCli(
      "targets 50 7\\n"
      "register 1 2 0 0.5 0.5\\n"
      "register 2 2 0 0.52 0.5\\n"
      "register 3 2 0 0.48 0.52\\n"
      "cloak 1\\n"
      "nn 1\\n"
      "sync\\n"
      "count 0 0 1 1\\n"
      "stats\\n"
      "quit\\n");
  ASSERT_NE(output, "<binary-not-found>") << "cli binary missing";

  // Registration confirmations.
  EXPECT_NE(output.find("OK: 50 public targets"), std::string::npos)
      << output;
  // Cloak line shows a region and a population >= k.
  EXPECT_NE(output.find("region="), std::string::npos) << output;
  // NN answer includes candidates and an exact target.
  EXPECT_NE(output.find("exact=target:"), std::string::npos) << output;
  // Whole-space count sees all three users with certainty.
  EXPECT_NE(output.find("certain=3 expected=3.00 possible=3"),
            std::string::npos)
      << output;
  // Stats line mentions the population.
  EXPECT_NE(output.find("users=3"), std::string::npos) << output;
  EXPECT_NE(output.find("bye"), std::string::npos) << output;
}

TEST(CliTest, ErrorsAreReportedNotFatal) {
  const std::string output = RunCli(
      "nn 99\\n"
      "register 1 0 0 0.5 0.5\\n"
      "move 7 0.1 0.1\\n"
      "bogus\\n"
      "quit\\n");
  ASSERT_NE(output, "<binary-not-found>") << "cli binary missing";
  EXPECT_NE(output.find("NotFound"), std::string::npos) << output;
  EXPECT_NE(output.find("InvalidArgument"), std::string::npos) << output;
  EXPECT_NE(output.find("unknown command"), std::string::npos) << output;
  EXPECT_NE(output.find("bye"), std::string::npos) << output;
}

TEST(CliTest, BatchSubcommand) {
  const std::string output = RunCli(
      "targets 50 7\\n"
      "register 1 2 0 0.5 0.5\\n"
      "register 2 2 0 0.52 0.5\\n"
      "register 3 2 0 0.48 0.52\\n"
      "sync\\n"
      "batch 14 2\\n"
      "quit\\n");
  ASSERT_NE(output, "<binary-not-found>") << "cli binary missing";
  // Every slot succeeds: the mixed batch cycles through all seven query
  // kinds over the three registered users after a sync.
  EXPECT_NE(output.find("batch=14 ok=14 errors=0 threads=2"),
            std::string::npos)
      << output;
  EXPECT_NE(output.find("qps="), std::string::npos) << output;
  EXPECT_NE(output.find("processor_us p50="), std::string::npos) << output;
  EXPECT_NE(output.find("totals_s anonymizer="), std::string::npos) << output;
  EXPECT_NE(output.find("cache hits="), std::string::npos) << output;
}

TEST(CliTest, MetricsAfterBatchShowsAllSevenKinds) {
  const std::string output = RunCli(
      "targets 50 7\\n"
      "register 1 2 0 0.5 0.5\\n"
      "register 2 2 0 0.52 0.5\\n"
      "register 3 2 0 0.48 0.52\\n"
      "sync\\n"
      "batch 14 2\\n"
      "metrics\\n"
      "quit\\n");
  ASSERT_NE(output, "<binary-not-found>") << "cli binary missing";
  // Non-zero tier counters after the batch...
  EXPECT_NE(output.find("# TYPE casper_anonymizer_cloaks_total counter"),
            std::string::npos)
      << output;
  EXPECT_NE(output.find("casper_batch_queries_total 14"), std::string::npos)
      << output;
  // ...and a populated per-kind latency histogram for every query kind.
  for (const char* kind :
       {"nearest_public", "k_nearest_public", "range_public",
        "nearest_private", "public_nearest", "public_range", "density"}) {
    const std::string series =
        std::string("casper_server_query_seconds_count{kind=\"") + kind +
        "\"} 2";
    EXPECT_NE(output.find(series), std::string::npos) << series;
  }
}

TEST(CliTest, MetricsJsonVariant) {
  const std::string output = RunCli(
      "targets 20 7\\n"
      "register 1 1 0 0.5 0.5\\n"
      "nn 1\\n"
      "metrics json\\n"
      "quit\\n");
  ASSERT_NE(output, "<binary-not-found>") << "cli binary missing";
  EXPECT_NE(output.find("{\"metrics\": ["), std::string::npos) << output;
  EXPECT_NE(output.find("\"name\": \"casper_anonymizer_cloaks_total\""),
            std::string::npos)
      << output;
}

TEST(CliTest, BatchWithoutUsersIsAnError) {
  const std::string output = RunCli("batch 4 2\\nbatch\\nquit\\n");
  ASSERT_NE(output, "<binary-not-found>") << "cli binary missing";
  EXPECT_NE(output.find("batch needs at least one registered user"),
            std::string::npos)
      << output;
  EXPECT_NE(output.find("usage: batch <count> <threads>"), std::string::npos)
      << output;
}

TEST(CliTest, SaveOpenRoundTrip) {
  const std::string path =
      "/tmp/casper_cli_save_test_" + std::to_string(::getpid());
  const std::string output = RunCli(
      "targets 40 7\\n"
      "register 1 2 0 0.5 0.5\\n"
      "register 2 2 0 0.52 0.5\\n"
      "register 3 2 0 0.48 0.52\\n"
      "sync\\n"
      "save " + path + "\\n"
      // Clobber the server state, then restore it from the checkpoint.
      "targets 3 9\\n"
      "open " + path + "\\n"
      "count 0 0 1 1\\n"
      "quit\\n");
  std::remove((path + ".dat").c_str());
  std::remove((path + ".idx").c_str());
  ASSERT_NE(output, "<binary-not-found>") << "cli binary missing";
  EXPECT_NE(output.find("saved targets=40 regions=3"), std::string::npos)
      << output;
  EXPECT_NE(output.find("opened targets=40 regions=3"), std::string::npos)
      << output;
  // The restored private store answers queries: all three synced users
  // are certain inside the whole space.
  EXPECT_NE(output.find("certain=3 expected=3.00 possible=3"),
            std::string::npos)
      << output;
}

TEST(CliTest, OpenMissingCheckpointIsAnError) {
  const std::string output =
      RunCli("open /tmp/casper_cli_no_such_checkpoint_xyz\\nquit\\n");
  ASSERT_NE(output, "<binary-not-found>") << "cli binary missing";
  EXPECT_NE(output.find("NotFound"), std::string::npos) << output;
  EXPECT_NE(output.find("bye"), std::string::npos) << output;
}

TEST(CliTest, HelpListsCommands) {
  const std::string output = RunCli("help\\nquit\\n");
  ASSERT_NE(output, "<binary-not-found>") << "cli binary missing";
  for (const char* cmd : {"register", "move", "nn", "knn", "density",
                          "buddy", "batch", "sync"}) {
    EXPECT_NE(output.find(cmd), std::string::npos) << cmd;
  }
}

}  // namespace
