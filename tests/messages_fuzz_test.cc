#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "src/casper/messages.h"
#include "src/common/rng.h"

/// Randomized byte-flip / truncation fuzz smoke over every messages.h
/// codec (~10k seeded mutations per message type). Three properties:
///
///  1. Decoding an arbitrarily mutated buffer never crashes — it either
///     succeeds or fails with a typed Status.
///  2. The FNV-1a-64 frame checksum rejects every mutant this driver
///     produces (byte flips, bursts, truncations, garbage suffixes):
///     with the fixed seeds below, zero mutants decode. This is the
///     "never silently accepts a corrupted payload" guarantee — a
///     flipped bit inside a raw double would otherwise decode as a
///     different valid measurement.
///  3. *Canonical acceptance*, as a belt-and-braces backstop: if a
///     mutant ever were accepted (a checksum collision), re-encoding
///     the decoded message must reproduce it byte for byte — the
///     accepted language stays exactly the image of Encode().

namespace casper {
namespace {

constexpr int kCorpusSize = 40;
constexpr int kMutationsPerMessage = 256;  // 40 * 256 = 10240 per type.

Rect RandomRect(Rng* rng) {
  const Point a = rng->PointIn(Rect(0, 0, 1, 1));
  return Rect(a.x, a.y, a.x + rng->NextDouble(), a.y + rng->NextDouble());
}

processor::ExtendedArea RandomArea(Rng* rng) {
  processor::ExtendedArea area;
  area.a_ext = RandomRect(rng);
  for (processor::EdgeExtension& edge : area.edges) {
    edge.max_d = rng->NextDouble();
    edge.has_middle = rng->Bernoulli(0.5);
    if (edge.has_middle) edge.middle = rng->PointIn(area.a_ext);
  }
  return area;
}

std::vector<processor::PublicTarget> RandomPublicTargets(Rng* rng) {
  std::vector<processor::PublicTarget> targets(rng->UniformInt(0, 4));
  for (processor::PublicTarget& t : targets) {
    t.id = rng->Next();
    t.position = rng->PointIn(Rect(0, 0, 1, 1));
  }
  return targets;
}

std::vector<processor::PrivateTarget> RandomPrivateTargets(Rng* rng) {
  std::vector<processor::PrivateTarget> targets(rng->UniformInt(0, 4));
  for (processor::PrivateTarget& t : targets) {
    t.id = rng->Next();
    t.region = RandomRect(rng);
  }
  return targets;
}

ServerPayload RandomPayload(Rng* rng, QueryKind kind) {
  switch (kind) {
    case QueryKind::kNearestPublic: {
      processor::PublicCandidateList list;
      list.candidates = RandomPublicTargets(rng);
      list.area = RandomArea(rng);
      list.policy = processor::FilterPolicy::kFourFilters;
      return list;
    }
    case QueryKind::kKNearestPublic: {
      processor::KnnCandidateList list;
      list.candidates = RandomPublicTargets(rng);
      list.a_ext = RandomRect(rng);
      list.k = rng->UniformInt(1, 8);
      return list;
    }
    case QueryKind::kRangePublic: {
      processor::PublicRangeCandidates list;
      list.candidates = RandomPublicTargets(rng);
      list.search_window = RandomRect(rng);
      return list;
    }
    case QueryKind::kNearestPrivate: {
      processor::PrivateCandidateList list;
      list.candidates = RandomPrivateTargets(rng);
      list.area = RandomArea(rng);
      list.policy = processor::FilterPolicy::kTwoFilters;
      return list;
    }
    case QueryKind::kPublicNearest: {
      processor::PublicNNCandidates list;
      list.candidates.resize(rng->UniformInt(0, 4));
      for (auto& candidate : list.candidates) {
        candidate.target.id = rng->Next();
        candidate.target.region = RandomRect(rng);
        candidate.min_dist = rng->NextDouble();
        candidate.max_dist = candidate.min_dist + rng->NextDouble();
      }
      list.minimax_bound = rng->NextDouble();
      return list;
    }
    case QueryKind::kPublicRange: {
      processor::RangeCountResult result;
      result.overlapping = RandomPrivateTargets(rng);
      result.possible = result.overlapping.size();
      result.certain = rng->UniformInt(0, result.possible);
      result.expected = static_cast<double>(result.certain);
      return result;
    }
    case QueryKind::kDensity:
    default: {
      const int cols = static_cast<int>(rng->UniformInt(1, 4));
      const int rows = static_cast<int>(rng->UniformInt(1, 4));
      std::vector<double> cells(static_cast<size_t>(cols) * rows);
      for (double& c : cells) c = rng->NextDouble();
      auto map = processor::DensityMap::FromCells(Rect(0, 0, 1, 1), cols,
                                                  rows, std::move(cells));
      CASPER_DCHECK(map.ok());
      return std::move(map).value();
    }
  }
}

/// Apply one random mutation; may return the input unchanged (the
/// driver skips those).
std::string Mutate(Rng* rng, const std::string& base) {
  std::string mutant = base;
  switch (rng->UniformInt(0, 3)) {
    case 0: {  // Flip one byte (XOR with a non-zero mask: never a no-op).
      if (mutant.empty()) break;
      const size_t pos = rng->UniformInt(0, mutant.size() - 1);
      mutant[pos] = static_cast<char>(static_cast<uint8_t>(mutant[pos]) ^
                                      rng->UniformInt(1, 255));
      break;
    }
    case 1: {  // Flip a burst of up to 4 bytes.
      if (mutant.empty()) break;
      const uint64_t flips = rng->UniformInt(1, 4);
      for (uint64_t f = 0; f < flips; ++f) {
        const size_t pos = rng->UniformInt(0, mutant.size() - 1);
        mutant[pos] = static_cast<char>(static_cast<uint8_t>(mutant[pos]) ^
                                        rng->UniformInt(1, 255));
      }
      break;
    }
    case 2:  // Truncate.
      mutant.resize(rng->UniformInt(0, mutant.size()));
      break;
    case 3: {  // Append garbage.
      const uint64_t extra = rng->UniformInt(1, 8);
      for (uint64_t e = 0; e < extra; ++e) {
        mutant.push_back(static_cast<char>(rng->UniformInt(0, 255)));
      }
      break;
    }
  }
  return mutant;
}

/// Decode the mutant; if accepted, return the re-encoding.
template <typename Msg, typename Decoder>
std::optional<std::string> DecodeReencode(const Decoder& decode,
                                          std::string_view mutant) {
  Result<Msg> decoded = decode(mutant);
  if (!decoded.ok()) return std::nullopt;
  return Encode(decoded.value());
}

template <typename Msg, typename Decoder>
void FuzzCodec(uint64_t seed, const std::vector<std::string>& corpus,
               const Decoder& decode) {
  Rng rng(seed);
  size_t accepted = 0;
  for (const std::string& base : corpus) {
    // The unmutated encoding must round-trip — a baseline for the
    // corpus being valid at all.
    ASSERT_TRUE(decode(base).ok());
    for (int m = 0; m < kMutationsPerMessage; ++m) {
      const std::string mutant = Mutate(&rng, base);
      if (mutant == base) continue;
      std::optional<std::string> reencoded =
          DecodeReencode<Msg>(decode, mutant);
      if (reencoded.has_value()) {
        ++accepted;
        ASSERT_EQ(*reencoded, mutant)
            << "codec accepted a corrupted buffer as a message that "
               "encodes differently (non-canonical acceptance)";
      }
    }
  }
  // With the FNV-1a-64 frame checksum, every mutation class this
  // driver produces (flips, bursts, truncations, garbage suffixes)
  // corrupts the body/checksum pairing and is rejected. Deterministic
  // under the fixed seeds above.
  EXPECT_EQ(accepted, 0u);
}

TEST(MessagesFuzzTest, CloakedQuery) {
  Rng rng(0xFC1);
  std::vector<std::string> corpus;
  for (int i = 0; i < kCorpusSize; ++i) {
    CloakedQueryMsg msg;
    msg.kind = static_cast<QueryKind>(rng.UniformInt(0, 6));
    msg.request_id = rng.Next();
    msg.cloak = RandomRect(&rng);
    msg.k = rng.UniformInt(1, 64);
    msg.radius = rng.NextDouble();
    msg.has_exclude = rng.Bernoulli(0.5);
    msg.exclude_handle = rng.Next();
    msg.point = rng.PointIn(Rect(0, 0, 1, 1));
    msg.region = RandomRect(&rng);
    msg.cols = static_cast<int32_t>(rng.UniformInt(1, 16));
    msg.rows = static_cast<int32_t>(rng.UniformInt(1, 16));
    corpus.push_back(Encode(msg));
  }
  FuzzCodec<CloakedQueryMsg>(0xFC1D, corpus, DecodeCloakedQuery);
}

TEST(MessagesFuzzTest, RegionUpsert) {
  Rng rng(0xFC2);
  std::vector<std::string> corpus;
  for (int i = 0; i < kCorpusSize; ++i) {
    RegionUpsertMsg msg;
    msg.request_id = rng.Next();
    msg.handle = rng.Next();
    msg.has_replaces = rng.Bernoulli(0.5);
    if (msg.has_replaces) msg.replaces = rng.Next();
    msg.region = RandomRect(&rng);
    corpus.push_back(Encode(msg));
  }
  FuzzCodec<RegionUpsertMsg>(0xFC2D, corpus, DecodeRegionUpsert);
}

TEST(MessagesFuzzTest, RegionRemove) {
  Rng rng(0xFC3);
  std::vector<std::string> corpus;
  for (int i = 0; i < kCorpusSize; ++i) {
    RegionRemoveMsg msg;
    msg.request_id = rng.Next();
    msg.handle = rng.Next();
    corpus.push_back(Encode(msg));
  }
  FuzzCodec<RegionRemoveMsg>(0xFC3D, corpus, DecodeRegionRemove);
}

TEST(MessagesFuzzTest, Snapshot) {
  Rng rng(0xFC4);
  std::vector<std::string> corpus;
  for (int i = 0; i < kCorpusSize; ++i) {
    SnapshotMsg msg;
    msg.regions = RandomPrivateTargets(&rng);
    corpus.push_back(Encode(msg));
  }
  FuzzCodec<SnapshotMsg>(0xFC4D, corpus, DecodeSnapshot);
}

TEST(MessagesFuzzTest, CandidateList) {
  Rng rng(0xFC5);
  std::vector<std::string> corpus;
  for (int i = 0; i < kCorpusSize; ++i) {
    CandidateListMsg msg;
    msg.kind = static_cast<QueryKind>(rng.UniformInt(0, 6));
    msg.request_id = rng.Next();
    msg.degraded = rng.Bernoulli(0.25);
    msg.payload = RandomPayload(&rng, msg.kind);
    msg.processor_seconds = rng.NextDouble();
    corpus.push_back(Encode(msg));
  }
  FuzzCodec<CandidateListMsg>(0xFC5D, corpus, DecodeCandidateList);
}

TEST(MessagesFuzzTest, Ack) {
  Rng rng(0xFC6);
  std::vector<std::string> corpus;
  const StatusCode codes[] = {
      StatusCode::kOk,         StatusCode::kNotFound,
      StatusCode::kUnavailable, StatusCode::kDataLoss,
      StatusCode::kDeadlineExceeded,
  };
  for (int i = 0; i < kCorpusSize; ++i) {
    AckMsg msg;
    msg.request_id = rng.Next();
    msg.code = codes[rng.UniformInt(0, 4)];
    if (rng.Bernoulli(0.5)) msg.message = "detail " + std::to_string(i);
    corpus.push_back(Encode(msg));
  }
  FuzzCodec<AckMsg>(0xFC6D, corpus, DecodeAck);
}

}  // namespace
}  // namespace casper
