#include "src/scenarios/scenario.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/casper/workload.h"
#include "src/scenarios/oracles.h"

namespace casper::scenarios {
namespace {

/// CI-sized knobs: every named scenario finishes in well under a
/// second, and the oracle cadence still samples several ticks.
ScenarioOptions TinyOptions() {
  ScenarioOptions options;
  options.users = 40;
  options.targets = 50;
  options.ticks = 6;
  options.queries_per_tick = 12;
  options.threads = 2;
  options.seed = 7;
  options.oracle_interval = 2;
  options.oracle_samples = 6;
  return options;
}

class AllScenariosTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AllScenariosTest, GreenOnFacade) {
  auto script = ScriptFor(GetParam());
  ASSERT_TRUE(script.ok()) << script.status().message();
  auto report = RunScenario(*script, TinyOptions());
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_TRUE(report->Passed())
      << "nn=" << report->oracles.nn_violations
      << " region=" << report->oracles.region_violations
      << " continuous=" << report->oracles.continuous_violations;
  EXPECT_GT(report->queries_total, 0u);
  EXPECT_GT(report->oracles.nn_checks, 0u);
  EXPECT_GT(report->oracles.region_checks, 0u);
}

TEST_P(AllScenariosTest, GreenOnSocket) {
  auto script = ScriptFor(GetParam());
  ASSERT_TRUE(script.ok());
  ScenarioOptions options = TinyOptions();
  options.ticks = 4;
  options.stack.kind = StackKind::kSocket;
  auto report = RunScenario(*script, options);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_EQ(report->stack, "socket");
  EXPECT_TRUE(report->Passed());
}

TEST_P(AllScenariosTest, GreenOnFourShards) {
  auto script = ScriptFor(GetParam());
  ASSERT_TRUE(script.ok());
  ScenarioOptions options = TinyOptions();
  options.ticks = 4;
  options.stack.kind = StackKind::kShards;
  options.stack.shards = 4;
  auto report = RunScenario(*script, options);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_EQ(report->stack, "shards:4");
  EXPECT_TRUE(report->Passed());
}

INSTANTIATE_TEST_SUITE_P(Named, AllScenariosTest,
                         ::testing::ValuesIn(ScenarioNames()),
                         [](const auto& info) { return info.param; });

TEST(ScenarioEngineTest, UnknownScenarioIsNotFound) {
  auto script = ScriptFor("gridlock");
  EXPECT_EQ(script.status().code(), StatusCode::kNotFound);
}

TEST(ScenarioEngineTest, RegistryListsFiveScenarios) {
  const auto names = ScenarioNames();
  ASSERT_EQ(names.size(), 5u);
  for (const auto& name : names) {
    EXPECT_TRUE(ScriptFor(name).ok()) << name;
  }
}

TEST(ScenarioEngineTest, SameSeedSameCounts) {
  auto script = ScriptFor("rush_hour");
  ASSERT_TRUE(script.ok());
  auto a = RunScenario(*script, TinyOptions());
  auto b = RunScenario(*script, TinyOptions());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->queries_total, b->queries_total);
  EXPECT_EQ(a->queries_ok, b->queries_ok);
  EXPECT_EQ(a->updates.applied, b->updates.applied);
  EXPECT_EQ(a->updates.dropped, b->updates.dropped);
  EXPECT_EQ(a->cloak_area.count, b->cloak_area.count);
  EXPECT_DOUBLE_EQ(a->cloak_area.p95, b->cloak_area.p95);
  EXPECT_DOUBLE_EQ(a->k_achieved.p50, b->k_achieved.p50);
  EXPECT_EQ(a->oracles.nn_checks, b->oracles.nn_checks);
}

TEST(ScenarioEngineTest, ContinuousStormExercisesShortcuts) {
  auto script = ScriptFor("continuous_storm");
  ASSERT_TRUE(script.ok());
  EXPECT_TRUE(script->assert_shortcuts);
  auto report = RunScenario(*script, TinyOptions());
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->continuous_queries, 0u);
  EXPECT_GT(report->continuous.reuses, 0u) << "shortcuts never fired";
  EXPECT_GT(report->oracles.continuous_checks, 0u);
  EXPECT_TRUE(report->shortcuts_ok);
}

TEST(ScenarioEngineTest, ChurnChaosDropsDeregisteredUpdates) {
  auto script = ScriptFor("churn_chaos");
  ASSERT_TRUE(script.ok());
  auto report = RunScenario(*script, TinyOptions());
  ASSERT_TRUE(report.ok());
  // Each tick deregisters a slice whose simulator updates then miss.
  EXPECT_GT(report->updates.dropped, 0u);
  EXPECT_GT(report->updates.applied, 0u);
  EXPECT_TRUE(report->Passed());
}

TEST(ScenarioEngineTest, ReportJsonCarriesTheSchema) {
  auto script = ScriptFor("mixed_profiles");
  ASSERT_TRUE(script.ok());
  ScenarioOptions options = TinyOptions();
  options.out_path =
      ::testing::TempDir() + "/BENCH_scenario_mixed_profiles.json";
  auto report = RunScenario(*script, options);
  ASSERT_TRUE(report.ok());

  std::ifstream in(options.out_path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  std::remove(options.out_path.c_str());

  for (const char* key :
       {"\"scenario\"", "\"stack\"", "\"config\"", "\"qps\"", "\"queries\"",
        "\"latency_micros\"", "\"cloak_area\"", "\"k_achieved\"",
        "\"candidates\"", "\"updates\"", "\"zero_progress_fallbacks\"",
        "\"continuous\"", "\"oracles\"", "\"passed\"", "\"metrics\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  EXPECT_NE(json.find("\"scenario\": \"mixed_profiles\""), std::string::npos);
}

TEST(ScenarioEngineTest, NnOracleCatchesAPlantedViolation) {
  // Feed the oracle a ground truth the serving stack has never seen: a
  // target right on top of the user that the served candidate list
  // cannot contain. The check must flag it, proving a broken stack
  // cannot slip past a watching oracle.
  StackOptions stack_options;
  auto stack = ScenarioStack::Create(stack_options);
  ASSERT_TRUE(stack.ok());
  CasperService& service = (*stack)->service();
  anonymizer::PrivacyProfile profile;
  profile.k = 1;
  ASSERT_TRUE(service.RegisterUser(1, profile, Point{0.5, 0.5}).ok());

  Rng rng(3);
  auto served = workload::UniformPublicTargets(20, Rect(0, 0, 0.2, 0.2), &rng);
  (*stack)->ProvisionTargets(served);

  std::vector<processor::PublicTarget> truth = served;
  truth.push_back(processor::PublicTarget{999, Point{0.5, 0.5}});

  OracleStats stats;
  CheckNnInclusiveness(&service, truth, 1, &stats);
  EXPECT_EQ(stats.nn_checks, 1u);
  EXPECT_EQ(stats.nn_violations, 1u);

  // Against the honest ground truth the same stack passes.
  OracleStats honest;
  CheckNnInclusiveness(&service, served, 1, &honest);
  EXPECT_EQ(honest.nn_checks, 1u);
  EXPECT_EQ(honest.nn_violations, 0u);
}

TEST(ScenarioEngineTest, RegionOracleCatchesAMissingUser) {
  StackOptions stack_options;
  auto stack = ScenarioStack::Create(stack_options);
  ASSERT_TRUE(stack.ok());
  CasperService& service = (*stack)->service();
  anonymizer::PrivacyProfile profile;
  profile.k = 1;
  ASSERT_TRUE(service.RegisterUser(1, profile, Point{0.25, 0.25}).ok());
  ASSERT_TRUE(service.RegisterUser(2, profile, Point{0.75, 0.75}).ok());
  ASSERT_TRUE(service.SyncPrivateData().ok());

  OracleStats stats;
  CheckRegionPerUser(&service, &stats);
  EXPECT_EQ(stats.region_checks, 1u);
  EXPECT_EQ(stats.region_violations, 0u);

  // Remove a user behind the facade's back (raw anonymizer, so no
  // retraction reaches the server): the server still stores two
  // regions for a one-user population — the exact kind of
  // bypass-induced inconsistency the census oracle exists to catch.
  ASSERT_TRUE(service.anonymizer().DeregisterUser(2).ok());
  OracleStats stale;
  CheckRegionPerUser(&service, &stale);
  EXPECT_EQ(stale.region_checks, 1u);
  EXPECT_EQ(stale.region_violations, 1u);
}

}  // namespace
}  // namespace casper::scenarios
