#include "src/processor/private_knn.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/rng.h"

namespace casper::processor {
namespace {

std::vector<PublicTarget> UniformTargets(size_t n, Rng* rng) {
  std::vector<PublicTarget> targets;
  for (uint64_t i = 0; i < n; ++i) {
    targets.push_back({i, rng->PointIn(Rect(0, 0, 1, 1))});
  }
  return targets;
}

std::vector<uint64_t> BruteKnnIds(const std::vector<PublicTarget>& targets,
                                  const Point& q, size_t k) {
  std::vector<std::pair<double, uint64_t>> dist;
  for (const auto& t : targets) {
    dist.emplace_back(SquaredDistance(q, t.position), t.id);
  }
  std::sort(dist.begin(), dist.end());
  std::vector<uint64_t> ids;
  for (size_t i = 0; i < k; ++i) ids.push_back(dist[i].second);
  return ids;
}

TEST(PrivateKnnTest, Validation) {
  Rng rng(1);
  PublicTargetStore store(UniformTargets(10, &rng));
  EXPECT_EQ(PrivateKNearestNeighbors(store, Rect(0, 0, 1, 1), 0)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(PrivateKNearestNeighbors(store, Rect(), 1).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(PrivateKNearestNeighbors(store, Rect(0, 0, 1, 1), 11)
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(PrivateKnnTest, KEqualsOneDegeneratesToNN) {
  Rng rng(2);
  auto targets = UniformTargets(300, &rng);
  PublicTargetStore store(targets);
  const Rect cloak(0.4, 0.4, 0.6, 0.6);
  auto result = PrivateKNearestNeighbors(store, cloak, 1);
  ASSERT_TRUE(result.ok());
  // Inclusiveness for a sampled user.
  const Point user = rng.PointIn(cloak);
  const auto truth = BruteKnnIds(targets, user, 1);
  bool found = false;
  for (const auto& c : result->candidates) {
    if (c.id == truth[0]) found = true;
  }
  EXPECT_TRUE(found);
}

/// Inclusiveness sweep: for every sampled user position in the cloak,
/// ALL of the true k nearest targets must be candidates.
struct Params {
  size_t targets;
  size_t k;
  double cloak_size;
  uint64_t seed;
};

class KnnInclusivenessTest : public ::testing::TestWithParam<Params> {};

TEST_P(KnnInclusivenessTest, AllTrueKnnInCandidates) {
  const Params params = GetParam();
  Rng rng(params.seed);
  auto targets = UniformTargets(params.targets, &rng);
  PublicTargetStore store(targets);

  for (int trial = 0; trial < 30; ++trial) {
    const double s = params.cloak_size;
    const Point c = rng.PointIn(Rect(0, 0, 1 - s, 1 - s));
    const Rect cloak(c.x, c.y, c.x + s, c.y + s);
    auto result = PrivateKNearestNeighbors(store, cloak, params.k);
    ASSERT_TRUE(result.ok());
    std::vector<uint64_t> ids;
    for (const auto& t : result->candidates) ids.push_back(t.id);
    std::sort(ids.begin(), ids.end());
    ASSERT_GE(ids.size(), params.k);

    for (int sample = 0; sample < 30; ++sample) {
      const Point user = rng.PointIn(cloak);
      for (uint64_t truth : BruteKnnIds(targets, user, params.k)) {
        EXPECT_TRUE(std::binary_search(ids.begin(), ids.end(), truth))
            << "k=" << params.k << " trial=" << trial;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, KnnInclusivenessTest,
                         ::testing::Values(Params{100, 1, 0.2, 1},
                                           Params{100, 5, 0.2, 2},
                                           Params{500, 10, 0.1, 3},
                                           Params{500, 3, 0.4, 4},
                                           Params{50, 20, 0.3, 5},
                                           Params{1000, 8, 0.05, 6}));

TEST(PrivateKnnTest, RefineKNearestExactAndOrdered) {
  Rng rng(7);
  auto targets = UniformTargets(400, &rng);
  PublicTargetStore store(targets);
  const Rect cloak(0.3, 0.3, 0.5, 0.5);
  auto result = PrivateKNearestNeighbors(store, cloak, 7);
  ASSERT_TRUE(result.ok());

  const Point user = rng.PointIn(cloak);
  const auto refined = RefineKNearest(result->candidates, user, 7);
  ASSERT_EQ(refined.size(), 7u);
  for (size_t i = 1; i < refined.size(); ++i) {
    EXPECT_LE(SquaredDistance(user, refined[i - 1].position),
              SquaredDistance(user, refined[i].position));
  }
  const auto truth = BruteKnnIds(targets, user, 7);
  for (size_t i = 0; i < 7; ++i) {
    // Compare by distance (ties permitted).
    EXPECT_NEAR(Distance(user, refined[i].position),
                Distance(user, targets[truth[i]].position), 1e-12);
  }
}

TEST(PrivateKnnTest, LargerKGrowsCandidates) {
  Rng rng(8);
  PublicTargetStore store(UniformTargets(1000, &rng));
  const Rect cloak(0.45, 0.45, 0.55, 0.55);
  size_t prev = 0;
  for (size_t k : {1u, 4u, 16u, 64u}) {
    auto result = PrivateKNearestNeighbors(store, cloak, k);
    ASSERT_TRUE(result.ok());
    EXPECT_GE(result->size(), prev);
    EXPECT_GE(result->size(), k);
    prev = result->size();
  }
}

TEST(PrivateKnnTest, RefineMoreThanCandidatesReturnsAll) {
  std::vector<PublicTarget> candidates = {{0, {0.1, 0.1}}, {1, {0.2, 0.2}}};
  EXPECT_EQ(RefineKNearest(candidates, {0, 0}, 10).size(), 2u);
}

}  // namespace
}  // namespace casper::processor
