#include "src/transport/resilient_client.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/casper/messages.h"
#include "src/common/rng.h"
#include "src/obs/casper_metrics.h"
#include "src/processor/concurrent_query_cache.h"
#include "src/server/query_server.h"
#include "src/transport/fault_injection.h"
#include "src/transport/server_endpoint.h"

/// Deterministic unit tests of every resilience mechanism: retries with
/// backoff, deadlines, the three-state circuit breaker, cache-served
/// degradation, the bounded replay buffer, and request-id idempotency.
/// Time is injected (ResilienceOptions::clock / ::sleep), so deadline
/// and cool-down transitions run without wall-clock sleeps.

namespace casper::transport {
namespace {

/// Injectable time: the clock reads a variable, the sleeper advances it.
struct FakeTime {
  double now = 0.0;
  std::vector<double> slept;

  std::function<double()> Clock() {
    return [this] { return now; };
  }
  std::function<void(double)> Sleep() {
    return [this](double seconds) {
      slept.push_back(seconds);
      now += seconds;
    };
  }
};

/// Fails the next `fail_remaining` calls (or all of them) with
/// kUnavailable; otherwise delegates to the real endpoint channel.
class FlakyChannel : public Channel {
 public:
  explicit FlakyChannel(Channel* inner) : inner_(inner) {}

  Result<std::string> Call(std::string_view request,
                           const CallContext& context) override {
    ++calls_;
    if (fail_remaining_ > 0) {
      --fail_remaining_;
      return Status::Unavailable("injected outage");
    }
    if (always_fail_) return Status::Unavailable("server down");
    return inner_->Call(request, context);
  }

  int calls_ = 0;
  int fail_remaining_ = 0;
  bool always_fail_ = false;

 private:
  Channel* inner_;
};

/// Delivers to the server, then loses the first `lose_responses` replies
/// — the case that makes idempotency keys necessary.
class ResponseLosingChannel : public Channel {
 public:
  explicit ResponseLosingChannel(Channel* inner) : inner_(inner) {}

  Result<std::string> Call(std::string_view request,
                           const CallContext& context) override {
    Result<std::string> response = inner_->Call(request, context);
    if (lose_responses_ > 0) {
      --lose_responses_;
      return Status::Unavailable("response lost");
    }
    return response;
  }

  int lose_responses_ = 0;

 private:
  Channel* inner_;
};

/// Answers every call with bytes no codec accepts.
class JunkChannel : public Channel {
 public:
  Result<std::string> Call(std::string_view, const CallContext&) override {
    return std::string("junk-response");
  }
};

class ResilientClientTest : public ::testing::Test {
 protected:
  ResilientClientTest()
      : metrics_(&registry_),
        server_(ServerOptions()),
        endpoint_(&server_),
        direct_(&endpoint_) {
    Rng rng(42);
    for (uint64_t id = 1; id <= 24; ++id) {
      server_.AddPublicTarget({id, rng.PointIn(Rect(0, 0, 1, 1))});
    }
  }

  server::QueryServerOptions ServerOptions() {
    server::QueryServerOptions options;
    options.metrics = &metrics_;
    return options;
  }

  /// Fake-timed options with no jitter: every schedule is exact.
  ResilienceOptions Options() {
    ResilienceOptions options;
    options.retry.jitter_fraction = 0.0;
    options.retry.deadline_seconds = 0.0;  // Tests opt in explicitly.
    options.breaker.failure_threshold = 1000;  // Tests opt in explicitly.
    options.clock = time_.Clock();
    options.sleep = time_.Sleep();
    options.metrics = &metrics_;
    return options;
  }

  CloakedQueryMsg NearestQuery() {
    CloakedQueryMsg query;
    query.kind = QueryKind::kNearestPublic;
    query.cloak = Rect(0.2, 0.2, 0.5, 0.5);
    return query;
  }

  RegionUpsertMsg Upsert(uint64_t handle) {
    RegionUpsertMsg msg;
    msg.handle = handle;
    msg.region = Rect(0.1, 0.1, 0.3, 0.3);
    return msg;
  }

  obs::MetricsRegistry registry_;
  obs::CasperMetrics metrics_;
  server::QueryServer server_;
  ServerEndpoint endpoint_;
  DirectChannel direct_;
  FakeTime time_;
};

TEST_F(ResilientClientTest, HealthyPathStampsFreshRequestIds) {
  ResilientClient client(&direct_, Options());
  Result<CandidateListMsg> first = client.Execute(NearestQuery(), nullptr);
  Result<CandidateListMsg> second = client.Execute(NearestQuery(), nullptr);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(first->degraded);
  EXPECT_NE(first->request_id, 0u);  // 0 would bypass idempotency.
  EXPECT_NE(first->request_id, second->request_id);
  EXPECT_EQ(first->payload, second->payload);

  // Identical to the direct tier call, transport aside.
  Result<CandidateListMsg> expected = server_.Execute(NearestQuery());
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(first->payload, expected->payload);
}

TEST_F(ResilientClientTest, RetriesTransientFailuresWithBackoff) {
  FlakyChannel flaky(&direct_);
  flaky.fail_remaining_ = 2;
  ResilienceOptions options = Options();
  options.retry.max_attempts = 3;
  options.retry.initial_backoff_seconds = 0.001;
  options.retry.backoff_multiplier = 2.0;
  ResilientClient client(&flaky, options);

  Result<CandidateListMsg> answer = client.Execute(NearestQuery(), nullptr);
  ASSERT_TRUE(answer.ok());
  EXPECT_FALSE(answer->degraded);
  EXPECT_EQ(flaky.calls_, 3);
  // Two backoffs, exponentially spaced (no jitter).
  ASSERT_EQ(time_.slept.size(), 2u);
  EXPECT_DOUBLE_EQ(time_.slept[0], 0.001);
  EXPECT_DOUBLE_EQ(time_.slept[1], 0.002);
  EXPECT_EQ(metrics_.transport_retries_total->Value(), 2u);
  EXPECT_EQ(metrics_.transport_failures_total->Value(), 2u);
}

TEST_F(ResilientClientTest, ApplicationErrorsAreNotRetried) {
  FlakyChannel flaky(&direct_);
  ResilientClient client(&flaky, Options());
  CloakedQueryMsg bad;
  bad.kind = QueryKind::kDensity;
  bad.cols = 0;  // The server rejects the grid; the channel is healthy.
  bad.rows = 0;
  Result<CandidateListMsg> answer = client.Execute(bad, nullptr);
  ASSERT_FALSE(answer.ok());
  EXPECT_FALSE(answer.status().IsRetryable());
  EXPECT_EQ(flaky.calls_, 1);  // One attempt: the server *answered*.
  EXPECT_EQ(client.breaker_state(), BreakerState::kClosed);
  EXPECT_EQ(metrics_.transport_retries_total->Value(), 0u);
}

TEST_F(ResilientClientTest, DeadlineSpentIsTerminal) {
  FlakyChannel flaky(&direct_);
  flaky.always_fail_ = true;
  ResilienceOptions options = Options();
  options.retry.max_attempts = 5;
  options.retry.deadline_seconds = 0.01;
  options.retry.initial_backoff_seconds = 0.05;  // Clamped to the budget.
  ResilientClient client(&flaky, options);

  Result<CandidateListMsg> answer = client.Execute(NearestQuery(), nullptr);
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kDeadlineExceeded);
  // The backoff was clamped to the remaining budget, so only one attempt
  // fit — the deadline bounds wall time, not just attempt count.
  EXPECT_EQ(flaky.calls_, 1);
  EXPECT_EQ(metrics_.transport_deadline_exceeded_total->Value(), 1u);
}

TEST_F(ResilientClientTest, UndecodableResponsesSurfaceAsUnavailable) {
  JunkChannel junk;
  ResilienceOptions options = Options();
  options.retry.max_attempts = 3;
  ResilientClient client(&junk, options);
  Result<CandidateListMsg> answer = client.Execute(NearestQuery(), nullptr);
  ASSERT_FALSE(answer.ok());
  // Internally kDataLoss per attempt; the caller-facing contract folds
  // exhausted retries into kUnavailable.
  EXPECT_EQ(answer.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(answer.status().message().find("retries exhausted"),
            std::string::npos);
  EXPECT_EQ(metrics_.transport_unavailable_total->Value(), 1u);
}

TEST_F(ResilientClientTest, MismatchedResponseIdIsRejected) {
  // A channel that answers every query with an ack for someone else's
  // request (id 0 can never match: stamped ids start at 1).
  class MisdirectingChannel : public Channel {
   public:
    Result<std::string> Call(std::string_view, const CallContext&) override {
      ++calls_;
      return Encode(AckMsg::For(0, Status::OK()));
    }
    int calls_ = 0;
  } misdirecting;

  ResilienceOptions options = Options();
  options.retry.max_attempts = 2;
  ResilientClient client(&misdirecting, options);
  Result<CandidateListMsg> answer = client.Execute(NearestQuery(), nullptr);
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(misdirecting.calls_, 2);  // Retried: the answer may yet come.
}

TEST_F(ResilientClientTest, BreakerOpensAfterConsecutiveFailuresAndFailsFast) {
  FlakyChannel flaky(&direct_);
  flaky.always_fail_ = true;
  ResilienceOptions options = Options();
  options.retry.max_attempts = 1;
  options.breaker.failure_threshold = 3;
  options.breaker.open_seconds = 10.0;
  ResilientClient client(&flaky, options);

  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(client.Execute(NearestQuery(), nullptr).status().code(),
              StatusCode::kUnavailable);
  }
  EXPECT_EQ(client.breaker_state(), BreakerState::kOpen);
  EXPECT_EQ(metrics_.breaker_state->Value(), 1.0);
  EXPECT_EQ(flaky.calls_, 3);

  // While open, calls fail fast without touching the channel.
  EXPECT_EQ(client.Execute(NearestQuery(), nullptr).status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(flaky.calls_, 3);
  EXPECT_EQ(metrics_.breaker_transitions_total[1]->Value(), 1u);
}

TEST_F(ResilientClientTest, BreakerHalfOpenProbesThenRecloses) {
  FlakyChannel flaky(&direct_);
  flaky.always_fail_ = true;
  ResilienceOptions options = Options();
  options.retry.max_attempts = 1;
  options.breaker.failure_threshold = 2;
  options.breaker.open_seconds = 5.0;
  options.breaker.half_open_successes = 2;
  ResilientClient client(&flaky, options);

  for (int i = 0; i < 2; ++i) {
    (void)client.Execute(NearestQuery(), nullptr);
  }
  ASSERT_EQ(client.breaker_state(), BreakerState::kOpen);

  // Cool-down passes; the channel has recovered. The first probe runs
  // half-open; the second success re-closes.
  time_.now += 6.0;
  flaky.always_fail_ = false;
  ASSERT_TRUE(client.Execute(NearestQuery(), nullptr).ok());
  EXPECT_EQ(client.breaker_state(), BreakerState::kHalfOpen);
  ASSERT_TRUE(client.Execute(NearestQuery(), nullptr).ok());
  EXPECT_EQ(client.breaker_state(), BreakerState::kClosed);
  EXPECT_EQ(metrics_.breaker_state->Value(), 0.0);
  EXPECT_EQ(metrics_.breaker_transitions_total[2]->Value(), 1u);  // half-open
  EXPECT_EQ(metrics_.breaker_transitions_total[0]->Value(), 1u);  // closed
}

TEST_F(ResilientClientTest, BreakerReopensWhenTheProbeFails) {
  FlakyChannel flaky(&direct_);
  flaky.always_fail_ = true;
  ResilienceOptions options = Options();
  options.retry.max_attempts = 1;
  options.breaker.failure_threshold = 2;
  options.breaker.open_seconds = 5.0;
  ResilientClient client(&flaky, options);

  for (int i = 0; i < 2; ++i) {
    (void)client.Execute(NearestQuery(), nullptr);
  }
  ASSERT_EQ(client.breaker_state(), BreakerState::kOpen);

  time_.now += 6.0;  // Cool-down passes, but the server is still down.
  EXPECT_FALSE(client.Execute(NearestQuery(), nullptr).ok());
  EXPECT_EQ(client.breaker_state(), BreakerState::kOpen);
  EXPECT_EQ(flaky.calls_, 3);  // Exactly one probe crossed the channel.
  EXPECT_EQ(metrics_.breaker_transitions_total[1]->Value(), 2u);
}

TEST_F(ResilientClientTest, ServesDegradedFromCacheDuringOutage) {
  FlakyChannel flaky(&direct_);
  ResilienceOptions options = Options();
  options.retry.max_attempts = 2;
  ResilientClient client(&flaky, options);
  processor::ConcurrentQueryCache cache(&server_.public_store(), 64);

  // Healthy query warms the cache for this cloak.
  Result<CandidateListMsg> healthy = client.Execute(NearestQuery(), &cache);
  ASSERT_TRUE(healthy.ok());
  ASSERT_FALSE(healthy->degraded);

  // Outage: the same cloak is served from the cache, flagged degraded.
  flaky.always_fail_ = true;
  Result<CandidateListMsg> degraded = client.Execute(NearestQuery(), &cache);
  ASSERT_TRUE(degraded.ok());
  EXPECT_TRUE(degraded->degraded);
  EXPECT_EQ(degraded->payload, healthy->payload);  // Same candidate list.
  EXPECT_EQ(metrics_.transport_degraded_total->Value(), 1u);

  // A cloak the cache has never seen cannot be served degraded.
  CloakedQueryMsg other = NearestQuery();
  other.cloak = Rect(0.6, 0.6, 0.9, 0.9);
  Result<CandidateListMsg> miss = client.Execute(other, &cache);
  ASSERT_FALSE(miss.ok());
  EXPECT_EQ(miss.status().code(), StatusCode::kUnavailable);
}

TEST_F(ResilientClientTest, ReplayBufferQueuesUpsertsAndDrainsInOrder) {
  FlakyChannel flaky(&direct_);
  flaky.always_fail_ = true;
  ResilienceOptions options = Options();
  options.retry.max_attempts = 1;
  ResilientClient client(&flaky, options);

  // Both upserts "succeed" during the outage: durable in the client.
  EXPECT_TRUE(client.Apply(Upsert(1)).ok());
  RegionUpsertMsg second = Upsert(2);
  second.has_replaces = true;  // Only applies cleanly *after* handle 1.
  second.replaces = 1;
  EXPECT_TRUE(client.Apply(second).ok());
  EXPECT_EQ(client.replay_depth(), 2u);
  EXPECT_EQ(server_.applied_request_count(), 0u);
  EXPECT_EQ(metrics_.replay_enqueued_total->Value(), 2u);

  // Recovery: the backlog lands in order, so the replace chain holds.
  flaky.always_fail_ = false;
  EXPECT_TRUE(client.Flush().ok());
  EXPECT_EQ(client.replay_depth(), 0u);
  EXPECT_EQ(server_.applied_request_count(), 2u);
  EXPECT_EQ(server_.private_store().size(), 1u);  // Handle 2 only.
  EXPECT_EQ(metrics_.replay_drained_total->Value(), 2u);
}

TEST_F(ResilientClientTest, FullReplayBufferSurfacesUnavailable) {
  FlakyChannel flaky(&direct_);
  flaky.always_fail_ = true;
  ResilienceOptions options = Options();
  options.retry.max_attempts = 1;
  options.degradation.replay_buffer_capacity = 1;
  ResilientClient client(&flaky, options);

  EXPECT_TRUE(client.Apply(Upsert(1)).ok());
  Status overflow = client.Apply(Upsert(2));
  EXPECT_EQ(overflow.code(), StatusCode::kUnavailable);
  EXPECT_EQ(client.replay_depth(), 1u);
  EXPECT_EQ(metrics_.replay_dropped_total->Value(), 1u);
}

TEST_F(ResilientClientTest, SuccessfulSnapshotSupersedesTheReplayBuffer) {
  FlakyChannel flaky(&direct_);
  flaky.always_fail_ = true;
  ResilienceOptions options = Options();
  options.retry.max_attempts = 1;
  ResilientClient client(&flaky, options);

  EXPECT_TRUE(client.Apply(Upsert(1)).ok());
  EXPECT_TRUE(client.Apply(Upsert(2)).ok());
  ASSERT_EQ(client.replay_depth(), 2u);

  flaky.always_fail_ = false;
  SnapshotMsg snapshot;
  snapshot.regions.push_back({77, Rect(0.4, 0.4, 0.6, 0.6)});
  EXPECT_TRUE(client.Load(snapshot).ok());
  EXPECT_EQ(client.replay_depth(), 0u);  // Queued changes superseded.
  EXPECT_EQ(server_.private_store().size(), 1u);  // Snapshot only.
}

TEST_F(ResilientClientTest, DuplicatedDeliveryNeverDoubleApplies) {
  // Every request is delivered to the server twice. Without the
  // idempotency window, the duplicate of "upsert 2 replaces 1" would
  // re-remove the vanished handle 1 and re-insert handle 2, and the
  // caller would see an Internal error.
  FaultProfile profile;
  profile.duplicate_rate = 1.0;
  FaultInjectingChannel duplicating(&direct_, profile, 0xD0B1E);
  ResilientClient client(&duplicating, Options());

  EXPECT_TRUE(client.Apply(Upsert(1)).ok());
  RegionUpsertMsg second = Upsert(2);
  second.has_replaces = true;
  second.replaces = 1;
  EXPECT_TRUE(client.Apply(second).ok());
  EXPECT_EQ(server_.private_store().size(), 1u);
  EXPECT_EQ(server_.applied_request_count(), 2u);
  EXPECT_EQ(duplicating.stats().duplicated, 2u);
}

TEST_F(ResilientClientTest, RetryAfterLostResponseReplaysTheOutcome) {
  // The server applies the upsert, the reply is lost, the client retries
  // with the *same* request id: the server must replay the recorded OK
  // instead of double-applying (which would be an Internal error here,
  // since the retried upsert replaces an already-removed handle).
  ResponseLosingChannel losing(&direct_);
  ResilienceOptions options = Options();
  options.retry.max_attempts = 3;
  ResilientClient client(&losing, options);

  EXPECT_TRUE(client.Apply(Upsert(1)).ok());
  losing.lose_responses_ = 1;
  RegionUpsertMsg second = Upsert(2);
  second.has_replaces = true;
  second.replaces = 1;
  EXPECT_TRUE(client.Apply(second).ok());
  EXPECT_EQ(server_.private_store().size(), 1u);
  EXPECT_EQ(server_.applied_request_count(), 2u);
  EXPECT_EQ(metrics_.transport_retries_total->Value(), 1u);
}

}  // namespace
}  // namespace casper::transport
