#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "src/sharding/partition.h"

/// ShardPartition invariants: Morton round-trips, contiguous range
/// ownership, exact window->shard fan-out, and the greedy load
/// balancer's guarantees (full cover, at least one cell per shard).

namespace casper::sharding {
namespace {

const Rect kSpace(0.0, 0.0, 1.0, 1.0);

TEST(MortonTest, EncodeDecodeRoundTrip) {
  for (uint32_t x = 0; x < 64; ++x) {
    for (uint32_t y = 0; y < 64; ++y) {
      uint32_t rx = 0, ry = 0;
      MortonDecode(MortonEncode(x, y), &rx, &ry);
      EXPECT_EQ(rx, x);
      EXPECT_EQ(ry, y);
    }
  }
}

TEST(MortonTest, NeighborCodesShareHighBits) {
  // The defining Z-order property used by the partition: the four
  // children of a quadrant occupy four consecutive codes.
  EXPECT_EQ(MortonEncode(0, 0), 0u);
  EXPECT_EQ(MortonEncode(1, 0), 1u);
  EXPECT_EQ(MortonEncode(0, 1), 2u);
  EXPECT_EQ(MortonEncode(1, 1), 3u);
}

TEST(ShardPartitionTest, UniformBoundariesCoverAllCells) {
  const ShardPartition p = ShardPartition::Uniform(4, 2, kSpace);
  ASSERT_EQ(p.num_shards(), 4u);
  EXPECT_EQ(p.boundaries().front(), 0u);
  EXPECT_EQ(p.boundaries().back(), p.cell_count());
  EXPECT_EQ(p.cell_count(), 16u);
  const std::vector<uint64_t> expected = {0, 4, 8, 12, 16};
  EXPECT_EQ(p.boundaries(), expected);
}

TEST(ShardPartitionTest, ShardCountClampedToCellCount) {
  // Level 1 has 4 cells; asking for 64 shards yields 4.
  const ShardPartition p = ShardPartition::Uniform(64, 1, kSpace);
  EXPECT_EQ(p.num_shards(), 4u);
}

TEST(ShardPartitionTest, ShardOfCodeMatchesBoundaries) {
  const ShardPartition p = ShardPartition::Uniform(3, 3, kSpace);
  for (uint64_t code = 0; code < p.cell_count(); ++code) {
    const size_t s = p.ShardOfCode(code);
    EXPECT_GE(code, p.boundaries()[s]);
    EXPECT_LT(code, p.boundaries()[s + 1]);
  }
}

TEST(ShardPartitionTest, CellCenterMapsBackToItsCode) {
  const ShardPartition p = ShardPartition::Uniform(4, 3, kSpace);
  for (uint64_t code = 0; code < p.cell_count(); ++code) {
    EXPECT_EQ(p.CellCodeOf(p.CellRect(code).Center()), code);
  }
}

TEST(ShardPartitionTest, HomeShardClampsOutOfSpacePoints) {
  const ShardPartition p = ShardPartition::Uniform(4, 2, kSpace);
  EXPECT_EQ(p.HomeShard(Point{-5.0, -5.0}), p.ShardOfCode(MortonEncode(0, 0)));
  const uint32_t top = (1u << 2) - 1;
  EXPECT_EQ(p.HomeShard(Point{5.0, 5.0}),
            p.ShardOfCode(MortonEncode(top, top)));
}

TEST(ShardPartitionTest, ShardBoundsContainEveryOwnedCell) {
  const ShardPartition p = ShardPartition::Uniform(5, 3, kSpace);
  for (size_t s = 0; s < p.num_shards(); ++s) {
    for (uint64_t code = p.boundaries()[s]; code < p.boundaries()[s + 1];
         ++code) {
      const Rect cell = p.CellRect(code);
      EXPECT_TRUE(p.ShardBounds(s).Contains(cell.min));
      EXPECT_TRUE(p.ShardBounds(s).Contains(cell.max));
    }
  }
}

TEST(ShardPartitionTest, ShardsIntersectingMatchesBruteForce) {
  const ShardPartition p = ShardPartition::Uniform(6, 3, kSpace);
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> coord(-0.1, 1.1);
  for (int trial = 0; trial < 500; ++trial) {
    const double x0 = coord(rng), y0 = coord(rng);
    const double x1 = coord(rng), y1 = coord(rng);
    const Rect window(std::min(x0, x1), std::min(y0, y1), std::max(x0, x1),
                      std::max(y0, y1));
    std::vector<size_t> expected;
    for (uint64_t code = 0; code < p.cell_count(); ++code) {
      if (p.CellRect(code).Intersects(window)) {
        expected.push_back(p.ShardOfCode(code));
      }
    }
    std::sort(expected.begin(), expected.end());
    expected.erase(std::unique(expected.begin(), expected.end()),
                   expected.end());
    EXPECT_EQ(p.ShardsIntersecting(window), expected)
        << "window " << trial;
  }
}

TEST(ShardPartitionTest, ShardsIntersectingOnCellBoundaryTouchesBothSides) {
  const ShardPartition p = ShardPartition::Uniform(4, 2, kSpace);
  // A degenerate window exactly on the vertical midline of the grid
  // touches cells on both sides (closed boundaries).
  const Rect seam(0.5, 0.1, 0.5, 0.2);
  const auto shards = p.ShardsIntersecting(seam);
  EXPECT_GE(shards.size(), 2u);
}

TEST(ShardPartitionTest, BalancedValidatesInputs) {
  EXPECT_FALSE(
      ShardPartition::Balanced(std::vector<uint64_t>(7, 1), 2, 2, kSpace)
          .ok());
  EXPECT_FALSE(
      ShardPartition::Balanced(std::vector<uint64_t>(16, 1), 0, 2, kSpace)
          .ok());
  EXPECT_FALSE(
      ShardPartition::Balanced(std::vector<uint64_t>(16, 1), 17, 2, kSpace)
          .ok());
}

TEST(ShardPartitionTest, BalancedUniformLoadsMatchUniformPartition) {
  const auto balanced =
      ShardPartition::Balanced(std::vector<uint64_t>(16, 10), 4, 2, kSpace);
  ASSERT_TRUE(balanced.ok());
  EXPECT_EQ(*balanced, ShardPartition::Uniform(4, 2, kSpace));
}

TEST(ShardPartitionTest, BalancedSkewedLoadsShrinkTheHotShard) {
  // All load in the first four codes: the first shard should own far
  // fewer cells than the uniform quarter.
  std::vector<uint64_t> loads(64, 0);
  for (size_t i = 0; i < 4; ++i) loads[i] = 1000;
  const auto balanced = ShardPartition::Balanced(loads, 4, 3, kSpace);
  ASSERT_TRUE(balanced.ok());
  EXPECT_EQ(balanced->boundaries().front(), 0u);
  EXPECT_EQ(balanced->boundaries().back(), 64u);
  // Every shard keeps at least one cell.
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_LT(balanced->boundaries()[s], balanced->boundaries()[s + 1]);
  }
  // The hot range is split: shard 0 owns at most 2 of the 4 hot cells.
  EXPECT_LE(balanced->boundaries()[1], 2u);
}

TEST(ShardPartitionTest, ToStringMentionsBoundaries) {
  const ShardPartition p = ShardPartition::Uniform(2, 1, kSpace);
  const std::string s = p.ToString();
  EXPECT_NE(s.find("shards=2"), std::string::npos);
  EXPECT_NE(s.find("[0, 2, 4]"), std::string::npos);
}

}  // namespace
}  // namespace casper::sharding
