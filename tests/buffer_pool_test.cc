#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/obs/casper_metrics.h"
#include "src/obs/metrics.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/memory_storage.h"

/// BufferPool behavior over a memory backend: hit/miss accounting, LRU
/// eviction order, dirty write-back timing (eviction and Flush), pin
/// semantics, and the casper_storage_pool_* instruments.

namespace casper::storage {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  BufferPoolTest()
      : registry_(std::make_unique<obs::MetricsRegistry>()),
        metrics_(std::make_unique<obs::CasperMetrics>(registry_.get())) {}

  BufferPoolOptions Options(size_t capacity) {
    BufferPoolOptions options;
    options.capacity_pages = capacity;
    options.metrics = metrics_.get();
    return options;
  }

  /// Store n pages directly in the backend; returns their ids.
  std::vector<PageId> Seed(size_t n) {
    std::vector<PageId> ids;
    for (size_t i = 0; i < n; ++i) {
      auto id = inner_.Store(kNoPage, "page-" + std::to_string(i));
      EXPECT_TRUE(id.ok());
      ids.push_back(*id);
    }
    return ids;
  }

  std::unique_ptr<obs::MetricsRegistry> registry_;
  std::unique_ptr<obs::CasperMetrics> metrics_;
  MemoryStorageManager inner_;
};

TEST_F(BufferPoolTest, RepeatLoadsHitTheCache) {
  const auto ids = Seed(1);
  BufferPool pool(&inner_, Options(4));
  std::string out;
  ASSERT_TRUE(pool.Load(ids[0], &out).ok());
  ASSERT_TRUE(pool.Load(ids[0], &out).ok());
  ASSERT_TRUE(pool.Load(ids[0], &out).ok());
  EXPECT_EQ(out, "page-0");
  const auto s = pool.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 2u);
  EXPECT_DOUBLE_EQ(s.hit_rate(), 2.0 / 3.0);
  EXPECT_EQ(metrics_->storage_pool_hits_total->Value(), 2u);
  EXPECT_EQ(metrics_->storage_pool_misses_total->Value(), 1u);
}

TEST_F(BufferPoolTest, EvictsLeastRecentlyUsed) {
  const auto ids = Seed(3);
  BufferPool pool(&inner_, Options(2));
  std::string out;
  ASSERT_TRUE(pool.Load(ids[0], &out).ok());
  ASSERT_TRUE(pool.Load(ids[1], &out).ok());
  // Touch page 0 so page 1 becomes the LRU victim.
  ASSERT_TRUE(pool.Load(ids[0], &out).ok());
  ASSERT_TRUE(pool.Load(ids[2], &out).ok());  // Evicts page 1.
  EXPECT_EQ(pool.stats().evictions, 1u);
  EXPECT_EQ(pool.stats().resident, 2u);
  // Page 0 is still resident (hit); page 1 must miss again.
  const uint64_t misses_before = pool.stats().misses;
  ASSERT_TRUE(pool.Load(ids[0], &out).ok());
  EXPECT_EQ(pool.stats().misses, misses_before);
  ASSERT_TRUE(pool.Load(ids[1], &out).ok());
  EXPECT_EQ(pool.stats().misses, misses_before + 1);
  EXPECT_EQ(metrics_->storage_pool_evictions_total->Value(),
            pool.stats().evictions);
}

TEST_F(BufferPoolTest, DirtyPageWritesBackOnEviction) {
  const auto ids = Seed(2);
  BufferPool pool(&inner_, Options(1));
  // Load page 0 into the cache; the overwrite then stays cached-dirty
  // (an overwrite of an *uncached* page writes through instead).
  std::string cached;
  ASSERT_TRUE(pool.Load(ids[0], &cached).ok());
  ASSERT_TRUE(pool.Store(ids[0], "updated-0").ok());
  // The backend still has the old bytes while the update is cached.
  std::string direct;
  ASSERT_TRUE(inner_.Load(ids[0], &direct).ok());
  EXPECT_EQ(direct, "page-0");
  // Loading page 1 evicts page 0, forcing the write-back.
  std::string out;
  ASSERT_TRUE(pool.Load(ids[1], &out).ok());
  ASSERT_TRUE(inner_.Load(ids[0], &direct).ok());
  EXPECT_EQ(direct, "updated-0");
  EXPECT_EQ(pool.stats().writebacks, 1u);
  EXPECT_EQ(metrics_->storage_pool_writebacks_total->Value(), 1u);
}

TEST_F(BufferPoolTest, FlushWritesBackAllDirtyPages) {
  const auto ids = Seed(3);
  BufferPool pool(&inner_, Options(8));
  std::string cached;
  ASSERT_TRUE(pool.Load(ids[0], &cached).ok());
  ASSERT_TRUE(pool.Load(ids[2], &cached).ok());
  ASSERT_TRUE(pool.Store(ids[0], "dirty-0").ok());
  ASSERT_TRUE(pool.Store(ids[2], "dirty-2").ok());
  ASSERT_TRUE(pool.Flush().ok());
  std::string direct;
  ASSERT_TRUE(inner_.Load(ids[0], &direct).ok());
  EXPECT_EQ(direct, "dirty-0");
  ASSERT_TRUE(inner_.Load(ids[2], &direct).ok());
  EXPECT_EQ(direct, "dirty-2");
  EXPECT_EQ(pool.stats().writebacks, 2u);
  // A second Flush writes nothing: the pages are clean now.
  ASSERT_TRUE(pool.Flush().ok());
  EXPECT_EQ(pool.stats().writebacks, 2u);
}

TEST_F(BufferPoolTest, NewPagesWriteThrough) {
  BufferPool pool(&inner_, Options(4));
  auto id = pool.Store(kNoPage, "fresh");
  ASSERT_TRUE(id.ok());
  std::string direct;
  ASSERT_TRUE(inner_.Load(*id, &direct).ok());
  EXPECT_EQ(direct, "fresh");
  // And it is cached: the next load is a hit.
  std::string out;
  ASSERT_TRUE(pool.Load(*id, &out).ok());
  EXPECT_EQ(pool.stats().hits, 1u);
}

TEST_F(BufferPoolTest, PinnedPagesSurviveEvictionPressure) {
  const auto ids = Seed(4);
  BufferPool pool(&inner_, Options(2));
  ASSERT_TRUE(pool.Pin(ids[0]).ok());
  std::string out;
  for (size_t i = 1; i < 4; ++i) ASSERT_TRUE(pool.Load(ids[i], &out).ok());
  // Page 0 was never evicted despite the pressure.
  const uint64_t misses_before = pool.stats().misses;
  ASSERT_TRUE(pool.Load(ids[0], &out).ok());
  EXPECT_EQ(pool.stats().misses, misses_before);
  EXPECT_EQ(pool.stats().pinned, 1u);
  EXPECT_EQ(metrics_->storage_pool_pinned_pages->Value(), 1.0);

  ASSERT_TRUE(pool.Unpin(ids[0]).ok());
  EXPECT_EQ(pool.stats().pinned, 0u);
  EXPECT_EQ(pool.Unpin(ids[0]).code(), StatusCode::kFailedPrecondition);
}

TEST_F(BufferPoolTest, DeleteDropsTheFrameAndTheBackendPage) {
  const auto ids = Seed(1);
  BufferPool pool(&inner_, Options(4));
  std::string out;
  ASSERT_TRUE(pool.Load(ids[0], &out).ok());
  ASSERT_TRUE(pool.Delete(ids[0]).ok());
  EXPECT_EQ(pool.Load(ids[0], &out).code(), StatusCode::kNotFound);
  EXPECT_EQ(inner_.page_count(), 0u);
}

TEST_F(BufferPoolTest, DeleteRefusesPinnedPage) {
  const auto ids = Seed(1);
  BufferPool pool(&inner_, Options(4));
  ASSERT_TRUE(pool.Pin(ids[0]).ok());
  EXPECT_EQ(pool.Delete(ids[0]).code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(pool.Unpin(ids[0]).ok());
  ASSERT_TRUE(pool.Delete(ids[0]).ok());
}

TEST_F(BufferPoolTest, RootsPassThrough) {
  BufferPool pool(&inner_, Options(4));
  ASSERT_TRUE(pool.SetRoot(0, 7).ok());
  auto inner_root = inner_.Root(0);
  ASSERT_TRUE(inner_root.ok());
  EXPECT_EQ(*inner_root, 7u);
  auto pool_root = pool.Root(0);
  ASSERT_TRUE(pool_root.ok());
  EXPECT_EQ(*pool_root, 7u);
}

TEST_F(BufferPoolTest, CapacityGaugeExported) {
  BufferPool pool(&inner_, Options(17));
  EXPECT_EQ(metrics_->storage_pool_capacity_pages->Value(), 17.0);
  EXPECT_EQ(pool.stats().capacity, 17u);
}

}  // namespace
}  // namespace casper::storage
