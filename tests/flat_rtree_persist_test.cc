#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "src/spatial/flat_rtree.h"
#include "src/storage/disk_storage.h"
#include "src/storage/memory_storage.h"

/// FlatRTree page round-trips: a tree saved with SaveTo and rebuilt
/// with LoadFrom must pass the same structural invariants and answer
/// every query identically — the loaded tree IS the saved tree, not an
/// approximation of it.

namespace casper::spatial {
namespace {

using storage::PageId;

std::vector<FlatRTree::Entry> RandomEntries(size_t n, uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> coord(0.0, 1000.0);
  std::uniform_real_distribution<double> extent(0.0, 8.0);
  std::vector<FlatRTree::Entry> entries;
  entries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double x = coord(rng), y = coord(rng);
    entries.push_back(
        {Rect(x, y, x + extent(rng), y + extent(rng)), 1000 + i});
  }
  return entries;
}

void ExpectTreesAnswerIdentically(const FlatRTree& original,
                                  const FlatRTree& loaded, uint32_t seed) {
  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.height(), original.height());
  EXPECT_TRUE(loaded.CheckInvariants());

  // Byte-identical entry storage order, so snapshot overlays (and any
  // order-sensitive caller) behave the same after a reload.
  for (size_t i = 0; i < original.size(); ++i) {
    const auto a = original.entry(i);
    const auto b = loaded.entry(i);
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.box.min.x, b.box.min.x);
    EXPECT_EQ(a.box.min.y, b.box.min.y);
    EXPECT_EQ(a.box.max.x, b.box.max.x);
    EXPECT_EQ(a.box.max.y, b.box.max.y);
  }

  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> coord(-50.0, 1050.0);
  for (int probe = 0; probe < 50; ++probe) {
    const Point q{coord(rng), coord(rng)};
    const Rect window(q.x, q.y, q.x + 120.0, q.y + 120.0);

    EXPECT_EQ(loaded.RangeCount(window), original.RangeCount(window));
    std::vector<FlatRTree::Entry> want, got;
    original.RangeQuery(window, &want);
    loaded.RangeQuery(window, &got);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) EXPECT_EQ(got[i].id, want[i].id);

    for (const auto metric :
         {FlatRTree::Metric::kMinDist, FlatRTree::Metric::kMaxDist}) {
      const auto want_knn = original.KNearest(q, 7, metric);
      const auto got_knn = loaded.KNearest(q, 7, metric);
      ASSERT_EQ(got_knn.size(), want_knn.size());
      for (size_t i = 0; i < want_knn.size(); ++i) {
        EXPECT_EQ(got_knn[i].id, want_knn[i].id);
        EXPECT_DOUBLE_EQ(got_knn[i].distance, want_knn[i].distance);
      }
      const auto want_nn = original.Nearest(q, metric);
      const auto got_nn = loaded.Nearest(q, metric);
      ASSERT_EQ(got_nn.found, want_nn.found);
      if (want_nn.found) {
        EXPECT_EQ(got_nn.neighbor.id, want_nn.neighbor.id);
      }
    }
  }
}

TEST(FlatRTreePersistTest, RoundTripThroughMemoryStorage) {
  const auto tree = FlatRTree::Build(RandomEntries(3000, 11), 16);
  ASSERT_TRUE(tree.CheckInvariants());

  storage::MemoryStorageManager sm;
  auto root = tree.SaveTo(&sm);
  ASSERT_TRUE(root.ok()) << root.status().ToString();

  auto loaded = FlatRTree::LoadFrom(&sm, *root);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectTreesAnswerIdentically(tree, *loaded, 29);
}

TEST(FlatRTreePersistTest, SmallFanoutRoundTrip) {
  // Deep tree: fan-out 4 over 500 entries exercises multi-level node
  // runs in the page codec.
  const auto tree = FlatRTree::Build(RandomEntries(500, 5), 4);
  storage::MemoryStorageManager sm;
  auto root = tree.SaveTo(&sm);
  ASSERT_TRUE(root.ok());
  auto loaded = FlatRTree::LoadFrom(&sm, *root);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectTreesAnswerIdentically(tree, *loaded, 31);
}

TEST(FlatRTreePersistTest, EmptyTreeRoundTrip) {
  const FlatRTree tree;
  storage::MemoryStorageManager sm;
  auto root = tree.SaveTo(&sm);
  ASSERT_TRUE(root.ok());
  auto loaded = FlatRTree::LoadFrom(&sm, *root);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->empty());
  EXPECT_EQ(loaded->RangeCount(Rect(-1e9, -1e9, 1e9, 1e9)), 0u);
  EXPECT_FALSE(loaded->Nearest({0, 0}).found);
}

TEST(FlatRTreePersistTest, SingleEntryRoundTrip) {
  const auto tree =
      FlatRTree::Build({{Rect(1.0, 2.0, 3.0, 4.0), 77}}, 16);
  storage::MemoryStorageManager sm;
  auto root = tree.SaveTo(&sm);
  ASSERT_TRUE(root.ok());
  auto loaded = FlatRTree::LoadFrom(&sm, *root);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_EQ(loaded->entry(0).id, 77u);
}

TEST(FlatRTreePersistTest, RoundTripThroughTinyDiskPages) {
  // page_size far below a full row chunk forces every tree page to
  // chain across many physical slots.
  const std::string path = testing::TempDir() + "casper_frt_persist_" +
                           std::to_string(::getpid());
  storage::DiskStorageOptions options;
  options.page_size = 512;
  const auto tree = FlatRTree::Build(RandomEntries(1200, 17), 8);
  PageId root_id;
  {
    auto sm = storage::DiskStorageManager::Create(path, options);
    ASSERT_TRUE(sm.ok()) << sm.status().ToString();
    auto root = tree.SaveTo(sm->get());
    ASSERT_TRUE(root.ok()) << root.status().ToString();
    root_id = *root;
    ASSERT_TRUE((*sm)->SetRoot(0, root_id).ok());
    ASSERT_TRUE((*sm)->Flush().ok());
  }
  auto sm = storage::DiskStorageManager::Open(path, options);
  ASSERT_TRUE(sm.ok()) << sm.status().ToString();
  auto root = (*sm)->Root(0);
  ASSERT_TRUE(root.ok());
  ASSERT_EQ(*root, root_id);
  auto loaded = FlatRTree::LoadFrom(sm->get(), *root);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectTreesAnswerIdentically(tree, *loaded, 37);
  std::remove((path + ".dat").c_str());
  std::remove((path + ".idx").c_str());
}

TEST(FlatRTreePersistTest, MissingRootPageFails) {
  storage::MemoryStorageManager sm;
  const auto loaded = FlatRTree::LoadFrom(&sm, 123);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(FlatRTreePersistTest, GarbageRootPageFailsInvalidArgument) {
  storage::MemoryStorageManager sm;
  auto id = sm.Store(storage::kNoPage, "definitely not a tree root page");
  ASSERT_TRUE(id.ok());
  const auto loaded = FlatRTree::LoadFrom(&sm, *id);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace casper::spatial
