#include <gtest/gtest.h>

#include "src/anonymizer/adaptive_anonymizer.h"
#include "src/anonymizer/basic_anonymizer.h"
#include "src/common/rng.h"

/// Parameterized stress sweeps over both anonymizers: mixed lifecycles
/// (register / move / re-profile / deregister) at several heights,
/// populations, and profile mixes, with structural invariants checked
/// throughout and every cloak validated against the issuing profile.

namespace casper::anonymizer {
namespace {

struct StressParams {
  int height;
  size_t peak_users;
  uint32_t k_max;
  double a_min_max_fraction;
  int operations;
  uint64_t seed;
};

class AnonymizerStressTest : public ::testing::TestWithParam<StressParams> {
};

template <typename Anon>
void RunStress(const StressParams& params) {
  PyramidConfig config;
  config.height = params.height;
  Anon anon(config);
  Rng rng(params.seed);

  std::unordered_map<UserId, PrivacyProfile> live;
  std::unordered_map<UserId, Point> positions;
  UserId next_uid = 0;

  auto random_profile = [&]() {
    PrivacyProfile profile;
    profile.k = static_cast<uint32_t>(rng.UniformInt(1, params.k_max));
    profile.a_min =
        config.space.Area() * rng.Uniform(0.0, params.a_min_max_fraction);
    return profile;
  };

  for (int op = 0; op < params.operations; ++op) {
    const double action = rng.NextDouble();
    if ((action < 0.35 && live.size() < params.peak_users) || live.empty()) {
      const UserId uid = next_uid++;
      const Point p = rng.PointIn(config.space);
      const PrivacyProfile profile = random_profile();
      ASSERT_TRUE(anon.RegisterUser(uid, profile, p).ok());
      live[uid] = profile;
      positions[uid] = p;
    } else if (action < 0.65) {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.UniformInt(0, live.size() - 1)));
      const Point p = rng.PointIn(config.space);
      ASSERT_TRUE(anon.UpdateLocation(it->first, p).ok());
      positions[it->first] = p;
    } else if (action < 0.8) {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.UniformInt(0, live.size() - 1)));
      const PrivacyProfile profile = random_profile();
      ASSERT_TRUE(anon.UpdateProfile(it->first, profile).ok());
      it->second = profile;
    } else if (action < 0.9 && live.size() > 1) {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.UniformInt(0, live.size() - 1)));
      ASSERT_TRUE(anon.DeregisterUser(it->first).ok());
      positions.erase(it->first);
      live.erase(it);
    } else {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.UniformInt(0, live.size() - 1)));
      auto cloak = anon.Cloak(it->first);
      if (it->second.k > live.size()) {
        ASSERT_FALSE(cloak.ok());
        ASSERT_EQ(cloak.status().code(), StatusCode::kFailedPrecondition);
      } else {
        ASSERT_TRUE(cloak.ok()) << cloak.status().ToString();
        EXPECT_GE(cloak->users_in_region, it->second.k);
        EXPECT_GE(cloak->region.Area() + 1e-15, it->second.a_min);
        EXPECT_TRUE(cloak->region.Contains(positions[it->first]));
      }
    }
  }
  EXPECT_EQ(anon.user_count(), live.size());
}

TEST_P(AnonymizerStressTest, BasicSurvivesChurn) {
  RunStress<BasicAnonymizer>(GetParam());
}

TEST_P(AnonymizerStressTest, AdaptiveSurvivesChurnWithInvariants) {
  const StressParams params = GetParam();
  // Same churn, plus periodic full structural validation.
  PyramidConfig config;
  config.height = params.height;
  AdaptiveAnonymizer anon(config);
  Rng rng(params.seed ^ 0xabcdef);

  std::vector<UserId> live;
  UserId next_uid = 0;
  for (int op = 0; op < params.operations; ++op) {
    const double action = rng.NextDouble();
    if ((action < 0.4 && live.size() < params.peak_users) || live.empty()) {
      PrivacyProfile profile;
      profile.k = static_cast<uint32_t>(rng.UniformInt(1, params.k_max));
      profile.a_min =
          config.space.Area() * rng.Uniform(0.0, params.a_min_max_fraction);
      ASSERT_TRUE(
          anon.RegisterUser(next_uid, profile, rng.PointIn(config.space))
              .ok());
      live.push_back(next_uid++);
    } else if (action < 0.8) {
      const size_t idx = rng.UniformInt(0, live.size() - 1);
      ASSERT_TRUE(
          anon.UpdateLocation(live[idx], rng.PointIn(config.space)).ok());
    } else {
      const size_t idx = rng.UniformInt(0, live.size() - 1);
      ASSERT_TRUE(anon.DeregisterUser(live[idx]).ok());
      live.erase(live.begin() + static_cast<ptrdiff_t>(idx));
    }
    if (op % 100 == 0) {
      ASSERT_TRUE(anon.CheckInvariants()) << "op " << op;
    }
  }
  EXPECT_TRUE(anon.CheckInvariants());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AnonymizerStressTest,
    ::testing::Values(StressParams{4, 50, 10, 0.0, 800, 1},
                      StressParams{6, 150, 30, 0.001, 1000, 2},
                      StressParams{8, 300, 60, 0.0005, 1200, 3},
                      StressParams{9, 200, 20, 0.01, 800, 4},
                      StressParams{5, 30, 40, 0.0, 600, 5},
                      StressParams{7, 500, 5, 0.0001, 1500, 6}));

}  // namespace
}  // namespace casper::anonymizer
