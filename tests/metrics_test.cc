#include "src/obs/metrics.h"

#include <gtest/gtest.h>

/// Unit tests of the MetricsRegistry core: instrument semantics,
/// idempotent registration, and deterministic scrape ordering.

namespace casper::obs {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.Value(), 42u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  EXPECT_DOUBLE_EQ(gauge.Value(), 0.0);
  gauge.Set(3.5);
  EXPECT_DOUBLE_EQ(gauge.Value(), 3.5);
  gauge.Add(-1.5);
  EXPECT_DOUBLE_EQ(gauge.Value(), 2.0);
  gauge.Set(7.0);  // Last write wins regardless of prior Adds.
  EXPECT_DOUBLE_EQ(gauge.Value(), 7.0);
}

TEST(HistogramTest, BucketsUseInclusiveUpperBounds) {
  Histogram hist({1.0, 2.0, 4.0});
  hist.Observe(0.5);  // -> le=1
  hist.Observe(1.0);  // -> le=1 (inclusive, Prometheus semantics)
  hist.Observe(1.5);  // -> le=2
  hist.Observe(4.0);  // -> le=4
  hist.Observe(9.0);  // -> overflow (+Inf)

  const HistogramData data = hist.Snapshot();
  ASSERT_EQ(data.bounds.size(), 3u);
  ASSERT_EQ(data.buckets.size(), 4u);  // bounds + overflow
  EXPECT_EQ(data.buckets[0], 2u);
  EXPECT_EQ(data.buckets[1], 1u);
  EXPECT_EQ(data.buckets[2], 1u);
  EXPECT_EQ(data.buckets[3], 1u);
  EXPECT_EQ(data.count, 5u);
  EXPECT_DOUBLE_EQ(data.sum, 0.5 + 1.0 + 1.5 + 4.0 + 9.0);
}

TEST(MetricsRegistryTest, RegistrationIsIdempotentOnNameAndLabels) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x_total", "help");
  Counter* b = registry.GetCounter("x_total", "help");
  EXPECT_EQ(a, b);

  // Different labels are a different series of the same family.
  Counter* labeled = registry.GetCounter("x_total", "help", {{"kind", "nn"}});
  EXPECT_NE(a, labeled);
  Counter* labeled_again =
      registry.GetCounter("x_total", "help", {{"kind", "nn"}});
  EXPECT_EQ(labeled, labeled_again);
}

TEST(MetricsRegistryTest, LabelOrderDoesNotSplitSeries) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("y_total", "help",
                                   {{"a", "1"}, {"b", "2"}});
  Counter* b = registry.GetCounter("y_total", "help",
                                   {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(a, b);
}

TEST(MetricsRegistryTest, ScrapeIsSortedAndComplete) {
  MetricsRegistry registry;
  registry.GetCounter("zebra_total", "last")->Increment(3);
  registry.GetGauge("alpha", "first")->Set(1.5);
  registry.GetHistogram("mid_seconds", "middle", {0.1, 1.0})->Observe(0.5);

  const MetricsSnapshot snapshot = registry.Scrape();
  ASSERT_EQ(snapshot.families.size(), 3u);
  EXPECT_EQ(snapshot.families[0].name, "alpha");
  EXPECT_EQ(snapshot.families[1].name, "mid_seconds");
  EXPECT_EQ(snapshot.families[2].name, "zebra_total");

  EXPECT_EQ(snapshot.families[0].type, MetricType::kGauge);
  EXPECT_DOUBLE_EQ(snapshot.families[0].samples[0].value, 1.5);
  EXPECT_EQ(snapshot.families[1].type, MetricType::kHistogram);
  EXPECT_EQ(snapshot.families[1].samples[0].histogram.count, 1u);
  EXPECT_EQ(snapshot.families[2].type, MetricType::kCounter);
  EXPECT_DOUBLE_EQ(snapshot.families[2].samples[0].value, 3.0);
}

TEST(MetricsRegistryTest, SamplesWithinFamilyAreSortedByLabels) {
  MetricsRegistry registry;
  registry.GetCounter("k_total", "h", {{"kind", "zeta"}})->Increment(1);
  registry.GetCounter("k_total", "h", {{"kind", "alpha"}})->Increment(2);

  const MetricsSnapshot snapshot = registry.Scrape();
  ASSERT_EQ(snapshot.families.size(), 1u);
  ASSERT_EQ(snapshot.families[0].samples.size(), 2u);
  EXPECT_EQ(snapshot.families[0].samples[0].labels[0].second, "alpha");
  EXPECT_EQ(snapshot.families[0].samples[1].labels[0].second, "zeta");
}

TEST(MetricsRegistryTest, DefaultRegistryIsAProcessSingleton) {
  EXPECT_EQ(MetricsRegistry::Default(), MetricsRegistry::Default());
}

}  // namespace
}  // namespace casper::obs
