#include "src/anonymizer/pseudonyms.h"

#include <gtest/gtest.h>

#include <set>

namespace casper::anonymizer {
namespace {

TEST(PseudonymsTest, StablePerUserUntilRotation) {
  PseudonymRegistry registry(1);
  const Pseudonym p1 = registry.PseudonymFor(42);
  EXPECT_EQ(registry.PseudonymFor(42), p1);
  auto resolved = registry.Resolve(p1);
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(*resolved, 42u);
}

TEST(PseudonymsTest, DistinctUsersGetDistinctPseudonyms) {
  PseudonymRegistry registry(2);
  std::set<Pseudonym> seen;
  for (UserId uid = 0; uid < 1000; ++uid) {
    seen.insert(registry.PseudonymFor(uid));
  }
  EXPECT_EQ(seen.size(), 1000u);
  EXPECT_EQ(registry.active_count(), 1000u);
}

TEST(PseudonymsTest, PseudonymNeverEqualsUserId) {
  // Not a guarantee of the scheme per se, but with 64-bit random draws
  // the pseudonym leaking the uid directly would indicate a bug.
  PseudonymRegistry registry(3);
  int equal = 0;
  for (UserId uid = 0; uid < 1000; ++uid) {
    if (registry.PseudonymFor(uid) == uid) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(PseudonymsTest, RotationUnlinksOldPseudonym) {
  PseudonymRegistry registry(4);
  const Pseudonym old = registry.PseudonymFor(7);
  auto fresh = registry.Rotate(7);
  ASSERT_TRUE(fresh.ok());
  EXPECT_NE(*fresh, old);
  // Old pseudonym no longer resolves; the fresh one does.
  EXPECT_EQ(registry.Resolve(old).status().code(), StatusCode::kNotFound);
  auto resolved = registry.Resolve(*fresh);
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(*resolved, 7u);
  EXPECT_EQ(registry.PseudonymFor(7), *fresh);
}

TEST(PseudonymsTest, RotateUnknownUser) {
  PseudonymRegistry registry(5);
  EXPECT_EQ(registry.Rotate(9).status().code(), StatusCode::kNotFound);
}

TEST(PseudonymsTest, ForgetRemovesBothDirections) {
  PseudonymRegistry registry(6);
  const Pseudonym p = registry.PseudonymFor(11);
  ASSERT_TRUE(registry.Forget(11).ok());
  EXPECT_EQ(registry.Resolve(p).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(registry.Forget(11).code(), StatusCode::kNotFound);
  EXPECT_EQ(registry.active_count(), 0u);
  // Re-registration allocates a new identity.
  EXPECT_NE(registry.PseudonymFor(11), p);
}

TEST(PseudonymsTest, DifferentSeedsGiveDifferentStreams) {
  PseudonymRegistry a(7);
  PseudonymRegistry b(8);
  int same = 0;
  for (UserId uid = 0; uid < 100; ++uid) {
    if (a.PseudonymFor(uid) == b.PseudonymFor(uid)) ++same;
  }
  EXPECT_EQ(same, 0);
}

}  // namespace
}  // namespace casper::anonymizer
