#include "src/network/shortest_path.h"

#include <gtest/gtest.h>

#include "src/network/network_generator.h"

namespace casper::network {
namespace {

/// A 1x3 chain: 0 -1- 1 -2- 2, plus a slow direct edge 0-2.
RoadNetwork ChainWithShortcut() {
  RoadNetwork net;
  const NodeId a = net.AddNode({0, 0});
  const NodeId b = net.AddNode({1, 0});
  const NodeId c = net.AddNode({2, 0});
  EXPECT_TRUE(net.AddEdge(a, b, RoadClass::kHighway).ok());
  EXPECT_TRUE(net.AddEdge(b, c, RoadClass::kHighway).ok());
  // Direct but slow: local road via a detour-free straight line would be
  // geometrically impossible, so bend through a virtual point by making
  // it long: connect a-c directly as local (length 2, speed 7.5).
  EXPECT_TRUE(net.AddEdge(a, c, RoadClass::kLocal).ok());
  return net;
}

TEST(ShortestPathTest, PrefersFastRoute) {
  RoadNetwork net = ChainWithShortcut();
  auto route = ShortestPath(net, 0, 2);
  ASSERT_TRUE(route.ok());
  // Two highway hops: 2.0 / 30 < 2.0 / 7.5 direct local.
  EXPECT_EQ(route->nodes, (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(route->edges.size(), 2u);
  EXPECT_DOUBLE_EQ(route->travel_time, 2.0 / SpeedOf(RoadClass::kHighway));
  EXPECT_DOUBLE_EQ(route->length, 2.0);
}

TEST(ShortestPathTest, TrivialRoute) {
  RoadNetwork net = ChainWithShortcut();
  auto route = ShortestPath(net, 1, 1);
  ASSERT_TRUE(route.ok());
  EXPECT_EQ(route->nodes, (std::vector<NodeId>{1}));
  EXPECT_TRUE(route->edges.empty());
  EXPECT_DOUBLE_EQ(route->travel_time, 0.0);
}

TEST(ShortestPathTest, UnknownNodes) {
  RoadNetwork net = ChainWithShortcut();
  EXPECT_EQ(ShortestPath(net, 0, 99).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(ShortestPath(net, 99, 0).status().code(), StatusCode::kNotFound);
}

TEST(ShortestPathTest, UnreachableDestination) {
  RoadNetwork net;
  net.AddNode({0, 0});
  net.AddNode({1, 1});
  EXPECT_EQ(ShortestPath(net, 0, 1).status().code(), StatusCode::kNotFound);
}

TEST(ShortestPathTest, RouteEdgesConnectRouteNodes) {
  NetworkGeneratorOptions opt;
  opt.rows = 10;
  opt.cols = 10;
  auto net = NetworkGenerator(opt).Generate(3);
  ASSERT_TRUE(net.ok());
  auto route = ShortestPath(*net, 0, static_cast<NodeId>(net->node_count() - 1));
  ASSERT_TRUE(route.ok());
  ASSERT_EQ(route->edges.size() + 1, route->nodes.size());
  double length = 0.0;
  double time = 0.0;
  for (size_t i = 0; i < route->edges.size(); ++i) {
    const RoadEdge& e = net->edge(route->edges[i]);
    EXPECT_TRUE((e.from == route->nodes[i] && e.to == route->nodes[i + 1]) ||
                (e.to == route->nodes[i] && e.from == route->nodes[i + 1]));
    length += e.length;
    time += e.TravelTime();
  }
  EXPECT_NEAR(route->length, length, 1e-9);
  EXPECT_NEAR(route->travel_time, time, 1e-9);
}

TEST(ShortestPathTest, AStarMatchesDijkstra) {
  NetworkGeneratorOptions opt;
  opt.rows = 14;
  opt.cols = 14;
  auto net = NetworkGenerator(opt).Generate(9);
  ASSERT_TRUE(net.ok());
  Rng rng(77);
  for (int i = 0; i < 50; ++i) {
    const NodeId from =
        static_cast<NodeId>(rng.UniformInt(0, net->node_count() - 1));
    const NodeId to =
        static_cast<NodeId>(rng.UniformInt(0, net->node_count() - 1));
    auto dijkstra = ShortestPath(*net, from, to);
    auto astar = ShortestPathAStar(*net, from, to);
    ASSERT_TRUE(dijkstra.ok());
    ASSERT_TRUE(astar.ok());
    EXPECT_NEAR(dijkstra->travel_time, astar->travel_time, 1e-9)
        << from << " -> " << to;
  }
}

}  // namespace
}  // namespace casper::network
