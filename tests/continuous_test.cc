#include "src/processor/continuous.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/rng.h"

namespace casper::processor {
namespace {

std::vector<PublicTarget> UniformTargets(size_t n, Rng* rng) {
  std::vector<PublicTarget> targets;
  for (uint64_t i = 0; i < n; ++i) {
    targets.push_back({i, rng->PointIn(Rect(0, 0, 1, 1))});
  }
  return targets;
}

TEST(ContinuousTest, RegisterEvaluatesImmediately) {
  Rng rng(1);
  PublicTargetStore store(UniformTargets(200, &rng));
  ContinuousQueryManager manager(&store);
  auto qid = manager.Register(Rect(0.4, 0.4, 0.6, 0.6));
  ASSERT_TRUE(qid.ok());
  auto answer = manager.Answer(*qid);
  ASSERT_TRUE(answer.ok());
  EXPECT_GT(answer->size(), 0u);
  EXPECT_EQ(manager.stats().evaluations, 1u);
  EXPECT_EQ(manager.query_count(), 1u);
}

TEST(ContinuousTest, UnregisterAndUnknownIds) {
  Rng rng(2);
  PublicTargetStore store(UniformTargets(50, &rng));
  ContinuousQueryManager manager(&store);
  auto qid = manager.Register(Rect(0.1, 0.1, 0.3, 0.3));
  ASSERT_TRUE(qid.ok());
  ASSERT_TRUE(manager.Unregister(*qid).ok());
  EXPECT_EQ(manager.Unregister(*qid).code(), StatusCode::kNotFound);
  EXPECT_EQ(manager.Answer(*qid).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(manager.OnCloakChanged(*qid, Rect(0, 0, 1, 1)).status().code(),
            StatusCode::kNotFound);
}

TEST(ContinuousTest, ShrinkingCloakReusesAnswer) {
  Rng rng(3);
  PublicTargetStore store(UniformTargets(300, &rng));
  ContinuousQueryManager manager(&store);
  auto qid = manager.Register(Rect(0.2, 0.2, 0.6, 0.6));
  ASSERT_TRUE(qid.ok());
  const uint64_t evals = manager.stats().evaluations;

  // Contained cloak: no re-evaluation.
  auto answer = manager.OnCloakChanged(*qid, Rect(0.3, 0.3, 0.5, 0.5));
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(manager.stats().evaluations, evals);
  EXPECT_EQ(manager.stats().reuses, 1u);

  // Moving outside forces a recompute.
  answer = manager.OnCloakChanged(*qid, Rect(0.5, 0.5, 0.8, 0.8));
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(manager.stats().evaluations, evals + 1);
}

TEST(ContinuousTest, ReusedAnswerStillInclusive) {
  Rng rng(4);
  auto targets = UniformTargets(400, &rng);
  PublicTargetStore store(targets);
  ContinuousQueryManager manager(&store);
  const Rect big(0.2, 0.2, 0.7, 0.7);
  auto qid = manager.Register(big);
  ASSERT_TRUE(qid.ok());

  const Rect small(0.4, 0.4, 0.5, 0.5);
  auto answer = manager.OnCloakChanged(*qid, small);
  ASSERT_TRUE(answer.ok());
  std::vector<uint64_t> ids;
  for (const auto& t : answer->candidates) ids.push_back(t.id);
  std::sort(ids.begin(), ids.end());

  for (int s = 0; s < 100; ++s) {
    const Point user = rng.PointIn(small);
    uint64_t best = 0;
    double best_d = 1e300;
    for (const auto& t : targets) {
      const double d = SquaredDistance(user, t.position);
      if (d < best_d) {
        best_d = d;
        best = t.id;
      }
    }
    EXPECT_TRUE(std::binary_search(ids.begin(), ids.end(), best));
  }
}

TEST(ContinuousTest, InsertPatchesCoveredQueries) {
  Rng rng(5);
  PublicTargetStore store(UniformTargets(100, &rng));
  ContinuousQueryManager manager(&store);
  auto qid = manager.Register(Rect(0.4, 0.4, 0.6, 0.6));
  ASSERT_TRUE(qid.ok());
  auto before = manager.Answer(*qid);
  ASSERT_TRUE(before.ok());

  // Insert inside the cloak itself (definitely inside A_EXT).
  const PublicTarget inside{1000, {0.5, 0.5}};
  store.Insert(inside);
  ASSERT_TRUE(manager.OnTargetInserted(inside).ok());
  auto after = manager.Answer(*qid);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->size(), before->size() + 1);
  EXPECT_EQ(manager.stats().insert_patches, 1u);
  EXPECT_EQ(manager.stats().evaluations, 1u);  // No recompute.

  // Insert far away: ignored.
  const PublicTarget outside{1001, {0.01, 0.99}};
  store.Insert(outside);
  ASSERT_TRUE(manager.OnTargetInserted(outside).ok());
  EXPECT_EQ(manager.Answer(*qid)->size(), after->size());
}

TEST(ContinuousTest, RemovalOfCandidateRecomputes) {
  Rng rng(6);
  auto targets = UniformTargets(300, &rng);
  PublicTargetStore store(targets);
  ContinuousQueryManager manager(&store);
  auto qid = manager.Register(Rect(0.4, 0.4, 0.6, 0.6));
  ASSERT_TRUE(qid.ok());
  auto answer = manager.Answer(*qid);
  ASSERT_TRUE(answer.ok());
  ASSERT_GT(answer->size(), 0u);

  // Remove one of the candidates from the store, then notify.
  const PublicTarget victim = answer->candidates.front();
  ASSERT_TRUE(store.Remove(victim));
  ASSERT_TRUE(manager.OnTargetRemoved(victim).ok());
  EXPECT_EQ(manager.stats().removal_recomputes, 1u);
  EXPECT_EQ(manager.stats().evaluations, 2u);

  // Remove a far-away non-candidate: no-op.
  PublicTarget far{9999, {0.0, 0.0}};
  bool found_far = false;
  for (const auto& t : targets) {
    if (!Rect(0.2, 0.2, 0.9, 0.9).Contains(t.position)) {
      far = t;
      found_far = true;
      break;
    }
  }
  if (found_far) {
    // Only counts as a no-op if it is not in the candidate list.
    auto current = manager.Answer(*qid);
    ASSERT_TRUE(current.ok());
    bool is_candidate = false;
    for (const auto& c : current->candidates) {
      if (c.id == far.id) is_candidate = true;
    }
    if (!is_candidate) {
      ASSERT_TRUE(store.Remove(far));
      ASSERT_TRUE(manager.OnTargetRemoved(far).ok());
      EXPECT_EQ(manager.stats().removal_no_ops, 1u);
      EXPECT_EQ(manager.stats().evaluations, 2u);
    }
  }
}

/// Long randomized churn: the manager's answer must always match a
/// fresh evaluation in inclusiveness (fresh list is a subset check is
/// too strong under patches, so verify true-NN membership directly).
TEST(ContinuousTest, ChurnPreservesInclusiveness) {
  Rng rng(7);
  std::vector<PublicTarget> live = UniformTargets(150, &rng);
  PublicTargetStore store(live);
  ContinuousQueryManager manager(&store);

  Rect cloak(0.3, 0.3, 0.5, 0.5);
  auto qid = manager.Register(cloak);
  ASSERT_TRUE(qid.ok());
  uint64_t next_id = 1000;

  for (int round = 0; round < 200; ++round) {
    const double action = rng.NextDouble();
    if (action < 0.3) {
      // Move the cloak (sometimes shrink, sometimes translate).
      if (rng.Bernoulli(0.5) && cloak.width() > 0.05) {
        cloak = Rect(cloak.min.x + 0.01, cloak.min.y + 0.01,
                     cloak.max.x - 0.01, cloak.max.y - 0.01);
      } else {
        const Point c = rng.PointIn(Rect(0, 0, 0.8, 0.8));
        cloak = Rect(c.x, c.y, c.x + rng.Uniform(0.05, 0.2),
                     c.y + rng.Uniform(0.05, 0.2));
      }
      ASSERT_TRUE(manager.OnCloakChanged(*qid, cloak).ok());
    } else if (action < 0.6 || live.size() < 10) {
      const PublicTarget t{next_id++, rng.PointIn(Rect(0, 0, 1, 1))};
      live.push_back(t);
      store.Insert(t);
      ASSERT_TRUE(manager.OnTargetInserted(t).ok());
    } else {
      const size_t idx = rng.UniformInt(0, live.size() - 1);
      const PublicTarget t = live[idx];
      live.erase(live.begin() + static_cast<ptrdiff_t>(idx));
      ASSERT_TRUE(store.Remove(t));
      ASSERT_TRUE(manager.OnTargetRemoved(t).ok());
    }

    // Inclusiveness check against brute force.
    auto answer = manager.Answer(*qid);
    ASSERT_TRUE(answer.ok());
    std::vector<uint64_t> ids;
    for (const auto& t : answer->candidates) ids.push_back(t.id);
    std::sort(ids.begin(), ids.end());
    for (int s = 0; s < 5; ++s) {
      const Point user = rng.PointIn(cloak);
      uint64_t best = 0;
      double best_d = 1e300;
      for (const auto& t : live) {
        const double d = SquaredDistance(user, t.position);
        if (d < best_d) {
          best_d = d;
          best = t.id;
        }
      }
      ASSERT_TRUE(std::binary_search(ids.begin(), ids.end(), best))
          << "round " << round;
    }
  }
  // The shortcuts must actually fire during the churn.
  EXPECT_GT(manager.stats().insert_patches, 0u);
  EXPECT_GT(manager.stats().removal_no_ops, 0u);
}

}  // namespace
}  // namespace casper::processor
