#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/casper/messages.h"
#include "src/common/rng.h"

/// Tests for the zero-copy view decoders: a view must accept exactly the
/// frames the owning decoder accepts, Materialize() must reproduce the
/// owning decode bit-for-bit, and records extracted through a view are
/// deep copies — mutating the frame afterwards must not corrupt them.

namespace casper {
namespace {

Rect RandomRect(Rng* rng) {
  const Point a = rng->PointIn(Rect(0, 0, 1, 1));
  return Rect(a.x, a.y, a.x + rng->NextDouble(), a.y + rng->NextDouble());
}

processor::ExtendedArea RandomArea(Rng* rng) {
  processor::ExtendedArea area;
  area.a_ext = RandomRect(rng);
  for (processor::EdgeExtension& edge : area.edges) {
    edge.max_d = rng->NextDouble();
    edge.has_middle = rng->Bernoulli(0.5);
    if (edge.has_middle) edge.middle = rng->PointIn(area.a_ext);
  }
  return area;
}

std::vector<processor::PublicTarget> RandomPublicTargets(Rng* rng,
                                                         size_t max_n) {
  std::vector<processor::PublicTarget> targets(rng->UniformInt(0, max_n));
  for (processor::PublicTarget& t : targets) {
    t.id = rng->Next();
    t.position = rng->PointIn(Rect(0, 0, 1, 1));
  }
  return targets;
}

std::vector<processor::PrivateTarget> RandomPrivateTargets(Rng* rng,
                                                           size_t max_n) {
  std::vector<processor::PrivateTarget> targets(rng->UniformInt(0, max_n));
  for (processor::PrivateTarget& t : targets) {
    t.id = rng->Next();
    t.region = RandomRect(rng);
  }
  return targets;
}

ServerPayload RandomPayload(Rng* rng, QueryKind kind) {
  switch (kind) {
    case QueryKind::kNearestPublic: {
      processor::PublicCandidateList list;
      list.candidates = RandomPublicTargets(rng, 8);
      list.area = RandomArea(rng);
      return list;
    }
    case QueryKind::kKNearestPublic: {
      processor::KnnCandidateList list;
      list.candidates = RandomPublicTargets(rng, 8);
      list.a_ext = RandomRect(rng);
      list.k = rng->UniformInt(1, 16);
      return list;
    }
    case QueryKind::kRangePublic: {
      processor::PublicRangeCandidates list;
      list.candidates = RandomPublicTargets(rng, 8);
      list.search_window = RandomRect(rng);
      return list;
    }
    case QueryKind::kNearestPrivate: {
      processor::PrivateCandidateList list;
      list.candidates = RandomPrivateTargets(rng, 8);
      list.area = RandomArea(rng);
      return list;
    }
    case QueryKind::kPublicNearest: {
      processor::PublicNNCandidates list;
      list.candidates.resize(rng->UniformInt(0, 8));
      for (auto& candidate : list.candidates) {
        candidate.target.id = rng->Next();
        candidate.target.region = RandomRect(rng);
        candidate.min_dist = rng->NextDouble();
        candidate.max_dist = candidate.min_dist + rng->NextDouble();
      }
      list.minimax_bound = rng->NextDouble();
      return list;
    }
    case QueryKind::kPublicRange: {
      processor::RangeCountResult result;
      result.overlapping = RandomPrivateTargets(rng, 8);
      result.possible = result.overlapping.size();
      result.certain = rng->UniformInt(0, result.possible);
      result.expected = rng->Uniform(static_cast<double>(result.certain),
                                     static_cast<double>(result.possible));
      return result;
    }
    case QueryKind::kDensity:
    default: {
      const int cols = static_cast<int>(rng->UniformInt(1, 8));
      const int rows = static_cast<int>(rng->UniformInt(1, 8));
      std::vector<double> cells(static_cast<size_t>(cols) * rows);
      for (double& c : cells) c = rng->NextDouble();
      auto map = processor::DensityMap::FromCells(Rect(0, 0, 1, 1), cols,
                                                  rows, std::move(cells));
      CASPER_DCHECK(map.ok());
      return std::move(map).value();
    }
  }
}

CandidateListMsg RandomCandidateList(Rng* rng) {
  CandidateListMsg msg;
  msg.kind = static_cast<QueryKind>(rng->UniformInt(0, 6));
  msg.request_id = rng->Next();
  msg.degraded = rng->Bernoulli(0.25);
  msg.processor_seconds = rng->NextDouble();
  msg.payload = RandomPayload(rng, msg.kind);
  return msg;
}

/// View → Materialize reproduces the owning decode exactly, for every
/// payload kind.
TEST(MessagesViewTest, MaterializeMatchesOwningDecode) {
  Rng rng(0x51DE);
  for (int i = 0; i < 300; ++i) {
    const CandidateListMsg msg = RandomCandidateList(&rng);
    const std::string frame = Encode(msg);
    auto view = DecodeCandidateListView(frame);
    ASSERT_TRUE(view.ok()) << view.status().ToString();
    EXPECT_TRUE(view->Materialize() == msg) << "round " << i;
    EXPECT_EQ(RecordCount(view->payload), RecordCount(msg.payload));
  }
}

TEST(MessagesViewTest, SnapshotViewMaterializeMatchesOwningDecode) {
  Rng rng(0x54AF);
  for (int i = 0; i < 200; ++i) {
    SnapshotMsg msg;
    msg.regions = RandomPrivateTargets(&rng, 32);
    const std::string frame = Encode(msg);
    auto view = DecodeSnapshotView(frame);
    ASSERT_TRUE(view.ok()) << view.status().ToString();
    EXPECT_EQ(view->regions.size(), msg.regions.size());
    for (size_t j = 0; j < msg.regions.size(); ++j) {
      EXPECT_TRUE(view->regions[j] == msg.regions[j]);
    }
    EXPECT_TRUE(view->Materialize() == msg);
  }
}

/// Records pulled through a WireSpan are deep copies: overwriting the
/// frame afterwards must leave previously-extracted results intact.
TEST(MessagesViewTest, ExtractedRecordsSurviveFrameMutation) {
  Rng rng(0xA11A5);
  SnapshotMsg msg;
  msg.regions = RandomPrivateTargets(&rng, 32);
  while (msg.regions.empty()) msg.regions = RandomPrivateTargets(&rng, 32);
  std::string frame = Encode(msg);

  auto view = DecodeSnapshotView(frame);
  ASSERT_TRUE(view.ok());
  const processor::PrivateTarget first = view->regions[0];
  const SnapshotMsg materialized = view->Materialize();

  for (char& b : frame) b = '\x5a';  // Scribble over the whole frame.

  EXPECT_TRUE(first == msg.regions[0]);
  EXPECT_TRUE(materialized == msg);
  // The live span aliases the frame, so re-reading through it now sees
  // the scribbled bytes — that is the documented borrow semantics.
  EXPECT_FALSE(view->regions[0] == msg.regions[0]);
}

TEST(MessagesViewTest, CandidateListExtractionSurvivesFrameMutation) {
  Rng rng(0xBEE5);
  CandidateListMsg msg;
  msg.kind = QueryKind::kPublicNearest;
  msg.request_id = 77;
  msg.payload = RandomPayload(&rng, msg.kind);
  std::string frame = Encode(msg);

  auto view = DecodeCandidateListView(frame);
  ASSERT_TRUE(view.ok());
  const CandidateListMsg materialized = view->Materialize();
  for (char& b : frame) b = '\x00';
  EXPECT_TRUE(materialized == msg);
  EXPECT_EQ(materialized.request_id, 77u);
}

/// Acceptance parity under corruption: for randomized single-byte
/// mutations and truncations of valid frames, the view decoder accepts
/// exactly when the owning decoder accepts.
TEST(MessagesViewTest, FuzzAcceptanceParityWithOwningDecoders) {
  Rng rng(0xF022);
  for (int i = 0; i < 200; ++i) {
    std::string frame = Encode(RandomCandidateList(&rng));
    const int mutations = static_cast<int>(rng.UniformInt(1, 4));
    for (int m = 0; m < mutations; ++m) {
      const size_t pos = rng.UniformInt(0, frame.size() - 1);
      frame[pos] = static_cast<char>(rng.UniformInt(0, 255));
    }
    if (rng.Bernoulli(0.3)) {
      frame.resize(rng.UniformInt(0, frame.size()));
    }
    const bool owning_ok = DecodeCandidateList(frame).ok();
    const bool view_ok = DecodeCandidateListView(frame).ok();
    EXPECT_EQ(owning_ok, view_ok) << "round " << i;
  }
  for (int i = 0; i < 100; ++i) {
    SnapshotMsg msg;
    msg.regions = RandomPrivateTargets(&rng, 16);
    std::string frame = Encode(msg);
    const size_t pos = rng.UniformInt(0, frame.size() - 1);
    frame[pos] = static_cast<char>(rng.UniformInt(0, 255));
    EXPECT_EQ(DecodeSnapshot(frame).ok(), DecodeSnapshotView(frame).ok());
  }
}

/// When both decoders accept a corrupted-then-revalidated frame (the
/// checksum was recomputed to match), they must agree on content too.
TEST(MessagesViewTest, ViewRejectsTruncatedAndMistypedFrames) {
  EXPECT_FALSE(DecodeCandidateListView("").ok());
  EXPECT_FALSE(DecodeSnapshotView("").ok());
  RegionRemoveMsg remove;
  remove.handle = 9;
  const std::string bytes = Encode(remove);
  EXPECT_FALSE(DecodeCandidateListView(bytes).ok());
  EXPECT_FALSE(DecodeSnapshotView(bytes).ok());

  Rng rng(0x7A11);
  const std::string frame = Encode(RandomCandidateList(&rng));
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    EXPECT_FALSE(
        DecodeCandidateListView(std::string_view(frame).substr(0, cut)).ok());
  }
}

}  // namespace
}  // namespace casper
