#include "src/processor/target_store.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/rng.h"

namespace casper::processor {
namespace {

std::vector<PublicTarget> SomeTargets() {
  return {{0, {0.1, 0.1}}, {1, {0.9, 0.9}}, {2, {0.5, 0.5}}, {3, {0.9, 0.1}}};
}

TEST(PublicTargetStoreTest, NearestAndRange) {
  PublicTargetStore store(SomeTargets());
  EXPECT_EQ(store.size(), 4u);

  auto nn = store.Nearest({0.45, 0.55});
  ASSERT_TRUE(nn.ok());
  EXPECT_EQ(nn->id, 2u);

  auto in_range = store.RangeQuery(Rect(0.0, 0.0, 0.5, 0.5));
  std::vector<uint64_t> ids;
  for (const auto& t : in_range) ids.push_back(t.id);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<uint64_t>{0, 2}));
  EXPECT_EQ(store.RangeCount(Rect(0.0, 0.0, 0.5, 0.5)), 2u);
}

TEST(PublicTargetStoreTest, EmptyStore) {
  PublicTargetStore store;
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.Nearest({0.5, 0.5}).status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(store.RangeQuery(Rect(0, 0, 1, 1)).empty());
}

TEST(PublicTargetStoreTest, InsertRemove) {
  PublicTargetStore store;
  store.Insert({7, {0.3, 0.3}});
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.Remove({7, {0.3, 0.3}}));
  EXPECT_FALSE(store.Remove({7, {0.3, 0.3}}));
  EXPECT_TRUE(store.empty());
}

TEST(PublicTargetStoreTest, KNearestOrdered) {
  PublicTargetStore store(SomeTargets());
  auto knn = store.KNearest({0.0, 0.0}, 3);
  ASSERT_EQ(knn.size(), 3u);
  EXPECT_EQ(knn[0].id, 0u);
  EXPECT_EQ(knn[1].id, 2u);
}

TEST(PrivateTargetStoreTest, NearestByMaxDist) {
  // A large region close by vs a tiny region slightly farther: MaxDist
  // ranks by the furthest corner, so the tiny one can win.
  PrivateTargetStore store(std::vector<PrivateTarget>{
      {0, Rect(0.1, 0.1, 0.9, 0.9)},   // Huge: far corner ~ (0.9, 0.9).
      {1, Rect(0.3, 0.3, 0.32, 0.32)}  // Tiny, near the query.
  });
  auto nn = store.NearestByMaxDist({0.25, 0.25});
  ASSERT_TRUE(nn.ok());
  EXPECT_EQ(nn->id, 1u);
}

TEST(PrivateTargetStoreTest, OverlappingClosedBoundaries) {
  PrivateTargetStore store(std::vector<PrivateTarget>{
      {0, Rect(0.0, 0.0, 0.2, 0.2)},
      {1, Rect(0.2, 0.2, 0.4, 0.4)},  // Touches the query corner.
      {2, Rect(0.5, 0.5, 0.7, 0.7)},
  });
  auto hits = store.Overlapping(Rect(0.1, 0.1, 0.2, 0.2));
  std::vector<uint64_t> ids;
  for (const auto& t : hits) ids.push_back(t.id);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<uint64_t>{0, 1}));
  EXPECT_EQ(store.OverlapCount(Rect(0.1, 0.1, 0.2, 0.2)), 2u);
}

TEST(PrivateTargetStoreTest, OverlappingAtLeastThresholds) {
  PrivateTargetStore store(std::vector<PrivateTarget>{
      {0, Rect(0.0, 0.0, 1.0, 1.0)},  // 25% inside the window below.
      {1, Rect(0.0, 0.0, 0.5, 0.5)},  // 100% inside.
  });
  const Rect window(0.0, 0.0, 0.5, 0.5);
  EXPECT_EQ(store.OverlappingAtLeast(window, 0.0).size(), 2u);
  EXPECT_EQ(store.OverlappingAtLeast(window, 0.3).size(), 1u);
  EXPECT_EQ(store.OverlappingAtLeast(window, 1.0).size(), 1u);
}

TEST(PrivateTargetStoreTest, DegenerateRegionCountsAsFullOverlap) {
  PrivateTargetStore store;
  store.Insert({0, Rect::FromPoint({0.25, 0.25})});
  EXPECT_EQ(store.OverlappingAtLeast(Rect(0, 0, 0.5, 0.5), 1.0).size(), 1u);
}

TEST(PrivateTargetStoreTest, EmptyStore) {
  PrivateTargetStore store;
  EXPECT_EQ(store.NearestByMaxDist({0, 0}).status().code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(store.Overlapping(Rect(0, 0, 1, 1)).empty());
}

TEST(PrivateTargetStoreTest, MaxDistNearestMatchesBruteForce) {
  Rng rng(31);
  const Rect space(0, 0, 1, 1);
  std::vector<PrivateTarget> targets;
  for (uint64_t i = 0; i < 200; ++i) {
    const Point c = rng.PointIn(space);
    targets.push_back(
        {i, Rect(c.x, c.y, std::min(c.x + rng.Uniform(0, 0.1), 1.0),
                 std::min(c.y + rng.Uniform(0, 0.1), 1.0))});
  }
  PrivateTargetStore store(targets);
  for (int trial = 0; trial < 50; ++trial) {
    const Point q = rng.PointIn(space);
    auto nn = store.NearestByMaxDist(q);
    ASSERT_TRUE(nn.ok());
    double best = 1e300;
    for (const auto& t : targets) best = std::min(best, MaxDist(q, t.region));
    EXPECT_NEAR(MaxDist(q, nn->region), best, 1e-12);
  }
}

}  // namespace
}  // namespace casper::processor
