#include "src/baselines/gg_cloak.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace casper::baselines {
namespace {

anonymizer::PyramidConfig Config(int height = 6) {
  anonymizer::PyramidConfig config;
  config.height = height;
  return config;
}

TEST(GGCloakTest, UserLifecycle) {
  GGCloak gg(Config(), 2);
  ASSERT_TRUE(gg.RegisterUser(1, {0.5, 0.5}).ok());
  EXPECT_EQ(gg.RegisterUser(1, {0.5, 0.5}).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(gg.RegisterUser(2, {1.5, 0.5}).code(), StatusCode::kOutOfRange);
  ASSERT_TRUE(gg.UpdateLocation(1, {0.2, 0.2}).ok());
  EXPECT_EQ(gg.UpdateLocation(9, {0.2, 0.2}).code(), StatusCode::kNotFound);
  ASSERT_TRUE(gg.DeregisterUser(1).ok());
  EXPECT_EQ(gg.DeregisterUser(1).code(), StatusCode::kNotFound);
}

TEST(GGCloakTest, CloakRequiresPopulation) {
  GGCloak gg(Config(), 5);
  ASSERT_TRUE(gg.RegisterUser(1, {0.5, 0.5}).ok());
  EXPECT_EQ(gg.Cloak(1).status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(gg.Cloak(42).status().code(), StatusCode::kNotFound);
}

TEST(GGCloakTest, CloakSatisfiesGlobalK) {
  Rng rng(1);
  GGCloak gg(Config(7), 10);
  std::vector<Point> positions;
  for (anonymizer::UserId uid = 0; uid < 300; ++uid) {
    const Point p = rng.PointIn(Rect(0, 0, 1, 1));
    positions.push_back(p);
    ASSERT_TRUE(gg.RegisterUser(uid, p).ok());
  }
  for (anonymizer::UserId uid = 0; uid < 300; uid += 13) {
    auto cloak = gg.Cloak(uid);
    ASSERT_TRUE(cloak.ok());
    EXPECT_GE(cloak->users_in_region, 10u);
    EXPECT_TRUE(cloak->region.Contains(positions[uid]));
  }
}

TEST(GGCloakTest, RelaxedKGivesSmallerRegions) {
  Rng rng(2);
  std::vector<Point> positions;
  for (int i = 0; i < 500; ++i) positions.push_back(rng.PointIn(Rect(0, 0, 1, 1)));

  double area_k2 = 0.0, area_k50 = 0.0;
  for (uint32_t k : {2u, 50u}) {
    GGCloak gg(Config(8), k);
    for (anonymizer::UserId uid = 0; uid < positions.size(); ++uid) {
      ASSERT_TRUE(gg.RegisterUser(uid, positions[uid]).ok());
    }
    double total = 0.0;
    for (anonymizer::UserId uid = 0; uid < 100; ++uid) {
      auto cloak = gg.Cloak(uid);
      ASSERT_TRUE(cloak.ok());
      total += cloak->region.Area();
    }
    (k == 2 ? area_k2 : area_k50) = total;
  }
  EXPECT_LT(area_k2, area_k50);
}

TEST(GGCloakTest, QuadrantIsAlwaysPyramidCell) {
  Rng rng(3);
  anonymizer::PyramidConfig config = Config(5);
  GGCloak gg(config, 4);
  for (anonymizer::UserId uid = 0; uid < 200; ++uid) {
    ASSERT_TRUE(gg.RegisterUser(uid, rng.PointIn(config.space)).ok());
  }
  for (anonymizer::UserId uid = 0; uid < 50; ++uid) {
    auto cloak = gg.Cloak(uid);
    ASSERT_TRUE(cloak.ok());
    // Region must be a power-of-four fraction of the space (a quadtree
    // cell), unlike CliqueCloak's arbitrary MBRs.
    const double ratio = config.space.Area() / cloak->region.Area();
    const double log4 = std::log(ratio) / std::log(4.0);
    EXPECT_NEAR(log4, std::round(log4), 1e-9);
  }
}

}  // namespace
}  // namespace casper::baselines
