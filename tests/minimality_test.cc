#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/processor/extended_area.h"
#include "src/processor/private_nn.h"

/// Empirical check of Theorem 2 (minimality): given the chosen filters,
/// each side's extension distance max_d is *achieved* — there is a
/// point on the corresponding cloak edge whose distance to its nearest
/// filter equals max_d (up to edge sampling resolution). Shrinking any
/// side would therefore cut into a circle that may contain the true
/// nearest target, i.e. A_EXT is the smallest per-side extension that
/// stays inclusive for this filter set.

namespace casper::processor {
namespace {

double EdgeBound(const Point& p, const FilterTarget& fi,
                 const FilterTarget& fj) {
  return std::min(MaxDist(p, fi.region), MaxDist(p, fj.region));
}

class MinimalityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MinimalityTest, PerSideExtensionIsAchievedOnTheEdge) {
  Rng rng(GetParam());
  const Rect space(0, 0, 1, 1);

  for (int trial = 0; trial < 50; ++trial) {
    // Random cloak and random *point* filters assigned per corner as
    // the true per-corner nearest among a random target set, matching
    // Algorithm 2's filter step.
    std::vector<FilterTarget> targets;
    for (uint64_t i = 0; i < 60; ++i) {
      targets.push_back({i, Rect::FromPoint(rng.PointIn(space))});
    }
    const Point c = rng.PointIn(Rect(0.2, 0.2, 0.6, 0.6));
    const Rect cloak(c.x, c.y, c.x + rng.Uniform(0.05, 0.25),
                     c.y + rng.Uniform(0.05, 0.25));
    const auto corners = cloak.Corners();
    std::array<FilterTarget, 4> filters;
    for (size_t i = 0; i < 4; ++i) {
      const FilterTarget* best = &targets.front();
      double best_d = MaxDist(corners[i], best->region);
      for (const auto& t : targets) {
        const double d = MaxDist(corners[i], t.region);
        if (d < best_d) {
          best = &t;
          best_d = d;
        }
      }
      filters[i] = *best;
    }

    const ExtendedArea area = ComputeExtendedArea(cloak, filters);
    for (size_t e = 0; e < 4; ++e) {
      const Point a = corners[e];
      const Point b = corners[(e + 1) % 4];
      // Dense sampling of the edge: the supremum of the per-point bound
      // must reach max_d (tightness) and never exceed it (soundness).
      double achieved = 0.0;
      for (int s = 0; s <= 400; ++s) {
        const double u = s / 400.0;
        const Point p{a.x + u * (b.x - a.x), a.y + u * (b.y - a.y)};
        achieved = std::max(
            achieved, EdgeBound(p, filters[e], filters[(e + 1) % 4]));
      }
      EXPECT_LE(achieved, area.edges[e].max_d + 1e-9);
      EXPECT_GE(achieved, area.edges[e].max_d - 0.01);  // Sampling slack.
    }
  }
}

TEST_P(MinimalityTest, ShrunkAreaLosesInclusiveness) {
  // Constructive counterexample check: shrink every side of A_EXT by 5%
  // of its extension and show some (user position, target layout) pair
  // whose true NN falls outside the shrunk area — i.e. the full
  // extension is not slack. Statistical: must find violations across
  // the sweep, not necessarily per trial.
  Rng rng(GetParam() + 77);
  const Rect space(0, 0, 1, 1);
  int violations = 0;
  for (int trial = 0; trial < 120; ++trial) {
    std::vector<PublicTarget> targets;
    for (uint64_t i = 0; i < 40; ++i) {
      targets.push_back({i, rng.PointIn(space)});
    }
    PublicTargetStore store(targets);
    const Point c = rng.PointIn(Rect(0.25, 0.25, 0.5, 0.5));
    const Rect cloak(c.x, c.y, c.x + 0.15, c.y + 0.15);
    auto answer = PrivateNearestNeighbor(store, cloak);
    ASSERT_TRUE(answer.ok());
    const Rect& full = answer->area.a_ext;
    const Rect shrunk(
        full.min.x + 0.05 * (cloak.min.x - full.min.x),
        full.min.y + 0.05 * (cloak.min.y - full.min.y),
        full.max.x + 0.05 * (cloak.max.x - full.max.x),
        full.max.y + 0.05 * (cloak.max.y - full.max.y));
    for (int s = 0; s < 50 && violations < 1000; ++s) {
      const Point user = rng.PointIn(cloak);
      const PublicTarget* best = &targets.front();
      double best_d = 1e300;
      for (const auto& t : targets) {
        const double d = SquaredDistance(user, t.position);
        if (d < best_d) {
          best_d = d;
          best = &t;
        }
      }
      if (!shrunk.Contains(best->position)) ++violations;
    }
  }
  // The extension is tight enough that trimming it really does lose
  // answers somewhere in the sweep.
  EXPECT_GT(violations, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinimalityTest,
                         ::testing::Values(1ull, 2ull, 3ull));

}  // namespace
}  // namespace casper::processor
