#include "src/processor/extended_area.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace casper::processor {
namespace {

TEST(ExtendedAreaTest, ContainsCloak) {
  const Rect cloak(0.4, 0.4, 0.6, 0.6);
  std::array<FilterTarget, 4> filters = {
      FilterTarget{0, Rect::FromPoint({0.3, 0.3})},
      FilterTarget{1, Rect::FromPoint({0.7, 0.3})},
      FilterTarget{2, Rect::FromPoint({0.7, 0.7})},
      FilterTarget{3, Rect::FromPoint({0.3, 0.7})}};
  const ExtendedArea area = ComputeExtendedArea(cloak, filters);
  EXPECT_TRUE(area.a_ext.Contains(cloak));
  for (const auto& e : area.edges) EXPECT_GE(e.max_d, 0.0);
}

TEST(ExtendedAreaTest, SameFilterEverywhereUsesVertexDistances) {
  // One shared filter: no middle points; each side extends by the
  // larger corner distance of that edge.
  const Rect cloak(0, 0, 1, 1);
  const Point t{0.5, -1.0};  // Below the cloak.
  std::array<FilterTarget, 4> filters;
  filters.fill(FilterTarget{7, Rect::FromPoint(t)});
  const ExtendedArea area = ComputeExtendedArea(cloak, filters);
  for (const auto& e : area.edges) EXPECT_FALSE(e.has_middle);

  const auto v = cloak.Corners();
  // Bottom edge (v0, v1): both corners at distance sqrt(0.25 + 1).
  EXPECT_NEAR(area.edges[0].max_d, Distance(v[0], t), 1e-12);
  // Right edge (v1, v2): v2 is farther.
  EXPECT_NEAR(area.edges[1].max_d, Distance(v[2], t), 1e-12);
  // Per-side expansion matches the edge extents.
  EXPECT_NEAR(area.a_ext.min.y, cloak.min.y - area.edges[0].max_d, 1e-12);
  EXPECT_NEAR(area.a_ext.max.x, cloak.max.x + area.edges[1].max_d, 1e-12);
  EXPECT_NEAR(area.a_ext.max.y, cloak.max.y + area.edges[2].max_d, 1e-12);
  EXPECT_NEAR(area.a_ext.min.x, cloak.min.x - area.edges[3].max_d, 1e-12);
}

TEST(ExtendedAreaTest, MiddlePointOnEdgeAndEquidistant) {
  const Rect cloak(0, 0, 1, 1);
  // Distinct filters for v0 and v1, symmetric about x = 0.5.
  const Point t0{0.2, -0.5};
  const Point t1{0.8, -0.5};
  std::array<FilterTarget, 4> filters = {
      FilterTarget{0, Rect::FromPoint(t0)},
      FilterTarget{1, Rect::FromPoint(t1)},
      FilterTarget{1, Rect::FromPoint(t1)},
      FilterTarget{0, Rect::FromPoint(t0)}};
  const ExtendedArea area = ComputeExtendedArea(cloak, filters);
  const EdgeExtension& bottom = area.edges[0];
  ASSERT_TRUE(bottom.has_middle);
  EXPECT_NEAR(bottom.middle.x, 0.5, 1e-12);
  EXPECT_NEAR(bottom.middle.y, 0.0, 1e-12);
  EXPECT_NEAR(Distance(bottom.middle, t0), Distance(bottom.middle, t1),
              1e-12);
  // max_d covers the middle-point distance, which here exceeds both
  // vertex distances.
  EXPECT_NEAR(bottom.max_d, Distance(bottom.middle, t0), 1e-12);
  EXPECT_GT(bottom.max_d, Distance(Point{0, 0}, t0));
}

TEST(ExtendedAreaTest, PrivateRegionsUseFurthestCorners) {
  const Rect cloak(0.4, 0.4, 0.6, 0.6);
  // A single region filter shared by all vertices.
  const Rect region(0.0, 0.0, 0.2, 0.2);
  std::array<FilterTarget, 4> filters;
  filters.fill(FilterTarget{3, region});
  const ExtendedArea area = ComputeExtendedArea(cloak, filters);
  const auto v = cloak.Corners();
  // Bottom edge: max over corners of MaxDist(v, region).
  const double expect =
      std::max(MaxDist(v[0], region), MaxDist(v[1], region));
  EXPECT_NEAR(area.edges[0].max_d, expect, 1e-12);
}

TEST(ExtendedAreaTest, ExtensionCoversEveryEdgePointNNRadius) {
  // Property: for every point p on the cloak boundary, the circle
  // around p with radius MaxDist(p, nearest-filter-region) must fit
  // inside A_EXT in the outward direction of p's edge. We verify the
  // weaker but sufficient check used by the proofs: the per-edge
  // extension is at least the distance from any sampled edge point to
  // its nearer endpoint filter.
  Rng rng(11);
  for (int trial = 0; trial < 100; ++trial) {
    const Point c = rng.PointIn(Rect(0.2, 0.2, 0.6, 0.6));
    const Rect cloak(c.x, c.y, c.x + rng.Uniform(0.05, 0.3),
                     c.y + rng.Uniform(0.05, 0.3));
    std::array<FilterTarget, 4> filters;
    for (uint64_t i = 0; i < 4; ++i) {
      filters[i] = FilterTarget{i, Rect::FromPoint(rng.PointIn(
                                       Rect(0, 0, 1, 1)))};
    }
    const ExtendedArea area = ComputeExtendedArea(cloak, filters);
    const auto v = cloak.Corners();
    for (size_t e = 0; e < 4; ++e) {
      const Point a = v[e];
      const Point b = v[(e + 1) % 4];
      const Rect ri = filters[e].region;
      const Rect rj = filters[(e + 1) % 4].region;
      for (int s = 0; s <= 20; ++s) {
        const double u = s / 20.0;
        const Point p{a.x + u * (b.x - a.x), a.y + u * (b.y - a.y)};
        const double bound = std::min(MaxDist(p, ri), MaxDist(p, rj));
        EXPECT_LE(bound, area.edges[e].max_d + 1e-9)
            << "edge " << e << " s " << s;
      }
    }
  }
}

TEST(ExtendedAreaTest, IdenticalFiltersNoMiddleEvenIfRegionsEqual) {
  const Rect cloak(0, 0, 1, 1);
  std::array<FilterTarget, 4> filters;
  filters.fill(FilterTarget{5, Rect(0.4, -0.4, 0.6, -0.2)});
  const ExtendedArea area = ComputeExtendedArea(cloak, filters);
  for (const auto& e : area.edges) EXPECT_FALSE(e.has_middle);
}

}  // namespace
}  // namespace casper::processor
