#include "src/processor/density.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace casper::processor {
namespace {

TEST(DensityTest, Validation) {
  PrivateTargetStore store;
  EXPECT_EQ(ExpectedDensity(store, Rect(), 2, 2).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ExpectedDensity(store, Rect(0, 0, 1, 1), 0, 2).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DensityTest, EmptyStoreIsZero) {
  PrivateTargetStore store;
  auto map = ExpectedDensity(store, Rect(0, 0, 1, 1), 4, 4);
  ASSERT_TRUE(map.ok());
  EXPECT_DOUBLE_EQ(map->Total(), 0.0);
}

TEST(DensityTest, RegionInsideOneCell) {
  PrivateTargetStore store;
  store.Insert({0, Rect(0.1, 0.1, 0.2, 0.2)});
  auto map = ExpectedDensity(store, Rect(0, 0, 1, 1), 2, 2);
  ASSERT_TRUE(map.ok());
  EXPECT_DOUBLE_EQ(map->At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(map->At(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(map->At(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(map->At(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(map->Total(), 1.0);
}

TEST(DensityTest, RegionSplitsAcrossCells) {
  PrivateTargetStore store;
  // Centered square overlapping all four quadrants equally.
  store.Insert({0, Rect(0.4, 0.4, 0.6, 0.6)});
  auto map = ExpectedDensity(store, Rect(0, 0, 1, 1), 2, 2);
  ASSERT_TRUE(map.ok());
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 2; ++c) {
      EXPECT_NEAR(map->At(c, r), 0.25, 1e-12);
    }
  }
  EXPECT_NEAR(map->Total(), 1.0, 1e-12);
}

TEST(DensityTest, DegenerateRegionCountsOnce) {
  PrivateTargetStore store;
  store.Insert({0, Rect::FromPoint({0.75, 0.25})});
  auto map = ExpectedDensity(store, Rect(0, 0, 1, 1), 2, 2);
  ASSERT_TRUE(map.ok());
  EXPECT_DOUBLE_EQ(map->At(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(map->Total(), 1.0);
}

TEST(DensityTest, TotalEqualsPopulationWhenAllInside) {
  Rng rng(1);
  PrivateTargetStore store;
  const size_t n = 200;
  for (uint64_t i = 0; i < n; ++i) {
    const Point c = rng.PointIn(Rect(0, 0, 0.9, 0.9));
    store.Insert({i, Rect(c.x, c.y, c.x + 0.1, c.y + 0.1)});
  }
  auto map = ExpectedDensity(store, Rect(0, 0, 1, 1), 8, 8);
  ASSERT_TRUE(map.ok());
  EXPECT_NEAR(map->Total(), static_cast<double>(n), 1e-9);
}

TEST(DensityTest, MatchesPerCellRangeCounts) {
  // The density map must equal running PublicRangeCount per cell.
  Rng rng(2);
  std::vector<PrivateTarget> regions;
  for (uint64_t i = 0; i < 100; ++i) {
    const Point c = rng.PointIn(Rect(0, 0, 0.8, 0.8));
    regions.push_back({i, Rect(c.x, c.y, c.x + rng.Uniform(0.01, 0.2),
                               c.y + rng.Uniform(0.01, 0.2))});
  }
  PrivateTargetStore store(regions);
  auto map = ExpectedDensity(store, Rect(0, 0, 1, 1), 4, 4);
  ASSERT_TRUE(map.ok());
  for (int row = 0; row < 4; ++row) {
    for (int col = 0; col < 4; ++col) {
      const Rect cell = map->CellRect(col, row);
      double expect = 0.0;
      for (const auto& r : regions) {
        if (r.region.Area() > 0.0) {
          expect += r.region.IntersectionArea(cell) / r.region.Area();
        }
      }
      EXPECT_NEAR(map->At(col, row), expect, 1e-9);
    }
  }
}

TEST(DensityTest, SkewedPopulationShowsSkew) {
  Rng rng(3);
  PrivateTargetStore store;
  for (uint64_t i = 0; i < 100; ++i) {
    const Point c = rng.PointIn(Rect(0, 0, 0.4, 0.4));  // All in the SW.
    store.Insert({i, Rect(c.x, c.y, c.x + 0.05, c.y + 0.05)});
  }
  auto map = ExpectedDensity(store, Rect(0, 0, 1, 1), 2, 2);
  ASSERT_TRUE(map.ok());
  EXPECT_GT(map->At(0, 0), 90.0);
  EXPECT_LT(map->At(1, 1), 1.0);
}

}  // namespace
}  // namespace casper::processor
