#include "src/casper/workload.h"

#include <gtest/gtest.h>

#include "src/anonymizer/basic_anonymizer.h"
#include "src/casper/casper.h"
#include "src/network/network_generator.h"
#include "src/obs/casper_metrics.h"
#include "src/obs/metrics.h"

namespace casper::workload {
namespace {

TEST(WorkloadTest, SampleProfileRespectsDistribution) {
  Rng rng(1);
  ProfileDistribution dist;
  dist.k_min = 5;
  dist.k_max = 10;
  dist.area_fraction_min = 0.001;
  dist.area_fraction_max = 0.002;
  for (int i = 0; i < 500; ++i) {
    const auto p = SampleProfile(dist, 2.0, &rng);
    EXPECT_GE(p.k, 5u);
    EXPECT_LE(p.k, 10u);
    EXPECT_GE(p.a_min, 0.002);
    EXPECT_LE(p.a_min, 0.004);
  }
}

TEST(WorkloadTest, UniformPublicTargets) {
  Rng rng(2);
  const Rect space(0, 0, 1, 1);
  auto targets = UniformPublicTargets(100, space, &rng);
  ASSERT_EQ(targets.size(), 100u);
  for (size_t i = 0; i < targets.size(); ++i) {
    EXPECT_EQ(targets[i].id, i);
    EXPECT_TRUE(space.Contains(targets[i].position));
  }
}

TEST(WorkloadTest, RandomPrivateTargetsRespectCellSizes) {
  Rng rng(3);
  anonymizer::PyramidConfig pyramid;
  pyramid.height = 6;
  const double cell_w = pyramid.space.width() / (1 << 6);
  auto targets = RandomPrivateTargets(200, pyramid, 8, &rng);
  ASSERT_EQ(targets.size(), 200u);
  for (const auto& t : targets) {
    EXPECT_TRUE(pyramid.space.Contains(t.region));
    EXPECT_GE(t.region.width(), 0.0);
    EXPECT_LE(t.region.width(), 8 * cell_w + 1e-12);
    EXPECT_LE(t.region.height(), 8 * cell_w + 1e-12);
    // Area between (almost) 0 and 64 cells (clipping can shrink).
    EXPECT_LE(t.region.Area(), 64 * cell_w * cell_w + 1e-12);
  }
}

TEST(WorkloadTest, RandomCellAlignedRegion) {
  Rng rng(4);
  anonymizer::PyramidConfig pyramid;
  pyramid.height = 5;
  const double cell = pyramid.space.width() / 32;
  for (int i = 0; i < 100; ++i) {
    const Rect r = RandomCellAlignedRegion(pyramid, 4, 2, &rng);
    EXPECT_TRUE(pyramid.space.Contains(r));
    EXPECT_NEAR(r.width(), 4 * cell, 1e-12);
    EXPECT_NEAR(r.height(), 2 * cell, 1e-12);
    // Aligned to the cell grid.
    EXPECT_NEAR(std::fmod(r.min.x, cell), 0.0, 1e-9);
  }
}

TEST(WorkloadTest, RegisterSimulatedUsersAndTicks) {
  network::NetworkGeneratorOptions opt;
  opt.rows = 8;
  opt.cols = 8;
  auto net = network::NetworkGenerator(opt).Generate(1);
  ASSERT_TRUE(net.ok());
  network::SimulatorOptions sopt;
  sopt.object_count = 60;
  network::MovingObjectSimulator sim(&*net, sopt, 2);

  anonymizer::PyramidConfig config;
  config.height = 5;
  anonymizer::BasicAnonymizer anon(config);
  Rng rng(5);
  ProfileDistribution dist;
  dist.k_min = 1;
  dist.k_max = 5;
  ASSERT_TRUE(RegisterSimulatedUsers(sim, 60, dist, &anon, &rng).ok());
  EXPECT_EQ(anon.user_count(), 60u);

  for (int t = 0; t < 5; ++t) {
    const auto updates = sim.Tick();
    ASSERT_TRUE(ApplyTick(updates, &anon).ok());
  }
  EXPECT_TRUE(anon.CheckInvariants());
  EXPECT_EQ(anon.stats().location_updates, 300u);

  // Requesting more users than objects fails.
  anonymizer::BasicAnonymizer anon2(config);
  EXPECT_EQ(RegisterSimulatedUsers(sim, 100, dist, &anon2, &rng).code(),
            StatusCode::kInvalidArgument);
}

// Regression: a user deregistering mid-simulation used to abort the
// whole tick with NotFound, dropping every later user's update on the
// floor. Unknown uids must instead be counted drops — in the per-call
// stats and the casper_workload_dropped_updates_total counter — while
// everyone still registered keeps moving.
TEST(WorkloadTest, UnregisterMidSimulationCountsDrops) {
  network::NetworkGeneratorOptions opt;
  opt.rows = 8;
  opt.cols = 8;
  auto net = network::NetworkGenerator(opt).Generate(4);
  ASSERT_TRUE(net.ok());
  network::SimulatorOptions sopt;
  sopt.object_count = 40;
  network::MovingObjectSimulator sim(&*net, sopt, 6);

  anonymizer::PyramidConfig config;
  config.height = 5;
  anonymizer::BasicAnonymizer anon(config);
  Rng rng(7);
  ProfileDistribution dist;
  ASSERT_TRUE(RegisterSimulatedUsers(sim, 40, dist, &anon, &rng).ok());
  ASSERT_TRUE(ApplyTick(sim.Tick(), &anon).ok());

  // Ten users leave; the simulator keeps reporting all forty objects.
  for (anonymizer::UserId uid = 0; uid < 10; ++uid) {
    ASSERT_TRUE(anon.DeregisterUser(uid).ok());
  }
  obs::MetricsRegistry registry;
  obs::CasperMetrics metrics(&registry);
  ApplyTickStats stats;
  ASSERT_TRUE(ApplyTick(sim.Tick(), &anon, &stats, &metrics).ok());
  EXPECT_EQ(stats.dropped, 10u);
  EXPECT_EQ(stats.applied, 30u);
  EXPECT_EQ(metrics.workload_dropped_updates_total->Value(), 10u);
  EXPECT_TRUE(anon.CheckInvariants());

  // The stats accumulate across calls and re-registration stops drops.
  anonymizer::PrivacyProfile profile;
  ASSERT_TRUE(anon.RegisterUser(3, profile,
                                ClampToRect(sim.PositionOf(3), config.space))
                  .ok());
  ASSERT_TRUE(ApplyTick(sim.Tick(), &anon, &stats, &metrics).ok());
  EXPECT_EQ(stats.dropped, 19u);
  EXPECT_EQ(stats.applied, 61u);
  EXPECT_EQ(metrics.workload_dropped_updates_total->Value(), 19u);
}

// Regression: driving the raw anonymizer under a CasperService left the
// facade's client-position table frozen at registration time, so local
// refinement (and any oracle) used stale positions. The facade-routed
// overload must advance both views together.
TEST(WorkloadTest, FacadeApplyTickKeepsClientPositionsFresh) {
  network::NetworkGeneratorOptions opt;
  opt.rows = 8;
  opt.cols = 8;
  auto net = network::NetworkGenerator(opt).Generate(5);
  ASSERT_TRUE(net.ok());
  network::SimulatorOptions sopt;
  sopt.object_count = 25;
  network::MovingObjectSimulator sim(&*net, sopt, 8);

  CasperOptions options;
  CasperService service(options);
  const Rect& space = service.options().pyramid.space;
  anonymizer::PrivacyProfile profile;
  profile.k = 2;
  for (anonymizer::UserId uid = 0; uid < 25; ++uid) {
    ASSERT_TRUE(service
                    .RegisterUser(uid, profile,
                                  ClampToRect(sim.PositionOf(uid), space))
                    .ok());
  }

  for (int t = 0; t < 5; ++t) {
    ApplyTickStats stats;
    ASSERT_TRUE(ApplyTick(sim.Tick(), &service, &stats).ok());
    EXPECT_EQ(stats.applied, 25u);
    EXPECT_EQ(stats.dropped, 0u);
  }
  for (anonymizer::UserId uid = 0; uid < 25; ++uid) {
    const auto pos = service.ClientPosition(uid);
    ASSERT_TRUE(pos.ok());
    // Pre-fix this still returned the registration-time position.
    EXPECT_EQ(*pos, ClampToRect(sim.PositionOf(uid), space));
  }

  // Deregistering through the facade turns later updates into drops.
  ASSERT_TRUE(service.DeregisterUser(0).ok());
  ApplyTickStats stats;
  ASSERT_TRUE(ApplyTick(sim.Tick(), &service, &stats).ok());
  EXPECT_EQ(stats.dropped, 1u);
  EXPECT_EQ(stats.applied, 24u);
}

}  // namespace
}  // namespace casper::workload
