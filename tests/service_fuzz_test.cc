#include <gtest/gtest.h>

#include "src/casper/casper.h"
#include "src/casper/workload.h"
#include "src/common/rng.h"

/// Randomized operation-sequence fuzzing of the whole CasperService:
/// register / move / re-profile / deregister / query in arbitrary
/// interleavings. Invariants checked continuously:
///  * no operation crashes or returns an unexpected status;
///  * every successful private-NN answer, refined with the client's
///    exact position, equals the true global nearest target;
///  * every cloak contains the client's position and satisfies the
///    user's current profile.

namespace casper {
namespace {

struct FuzzParams {
  uint64_t seed;
  int operations;
  bool adaptive;
};

class ServiceFuzzTest : public ::testing::TestWithParam<FuzzParams> {};

TEST_P(ServiceFuzzTest, RandomOperationSequences) {
  const FuzzParams params = GetParam();
  Rng rng(params.seed);

  CasperOptions options;
  options.pyramid.height = 6;
  options.use_adaptive_anonymizer = params.adaptive;
  CasperService service(options);
  const Rect space = options.pyramid.space;

  service.SetPublicTargets(
      workload::UniformPublicTargets(300, space, &rng));

  std::unordered_map<anonymizer::UserId, anonymizer::PrivacyProfile> live;
  anonymizer::UserId next_uid = 0;

  for (int op = 0; op < params.operations; ++op) {
    const double action = rng.NextDouble();
    if (action < 0.25 || live.size() < 3) {
      anonymizer::PrivacyProfile profile;
      profile.k = static_cast<uint32_t>(rng.UniformInt(1, 12));
      profile.a_min = space.Area() * rng.Uniform(0.0, 0.001);
      const anonymizer::UserId uid = next_uid++;
      ASSERT_TRUE(
          service.RegisterUser(uid, profile, rng.PointIn(space)).ok());
      live[uid] = profile;
    } else if (action < 0.45) {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.UniformInt(0, live.size() - 1)));
      ASSERT_TRUE(service.UpdateUserLocation(it->first, rng.PointIn(space))
                      .ok());
    } else if (action < 0.55) {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.UniformInt(0, live.size() - 1)));
      anonymizer::PrivacyProfile profile;
      profile.k = static_cast<uint32_t>(rng.UniformInt(1, 12));
      profile.a_min = space.Area() * rng.Uniform(0.0, 0.001);
      ASSERT_TRUE(service.UpdateUserProfile(it->first, profile).ok());
      it->second = profile;
    } else if (action < 0.62 && live.size() > 13) {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.UniformInt(0, live.size() - 1)));
      ASSERT_TRUE(service.DeregisterUser(it->first).ok());
      live.erase(it);
    } else {
      // Query a random live user; k never exceeds the population here
      // (live.size() >= 13 whenever deregistration is possible).
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.UniformInt(0, live.size() - 1)));
      const anonymizer::UserId uid = it->first;
      auto response = service.QueryNearestPublic(uid);
      if (!response.ok()) {
        // The only legitimate failure: k exceeds the population.
        ASSERT_EQ(response.status().code(), StatusCode::kFailedPrecondition);
        ASSERT_GT(it->second.k, live.size());
        continue;
      }
      auto pos = service.ClientPosition(uid);
      ASSERT_TRUE(pos.ok());
      // Cloak invariants.
      ASSERT_TRUE(response->cloak.region.Contains(*pos));
      ASSERT_GE(response->cloak.users_in_region, it->second.k);
      ASSERT_GE(response->cloak.region.Area() + 1e-15, it->second.a_min);
      // Answer-quality invariant.
      auto truth = service.public_store().Nearest(*pos);
      ASSERT_TRUE(truth.ok());
      ASSERT_EQ(response->exact.id, truth->id) << "op " << op;
    }
  }

  // Final integrity: a full private-data sync succeeds and the density
  // mass equals the live population.
  ASSERT_TRUE(service.SyncPrivateData().ok());
  auto map = service.QueryDensity(4, 4);
  ASSERT_TRUE(map.ok());
  EXPECT_NEAR(map->Total(), static_cast<double>(live.size()), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Runs, ServiceFuzzTest,
                         ::testing::Values(FuzzParams{1, 600, true},
                                           FuzzParams{2, 600, false},
                                           FuzzParams{3, 1200, true},
                                           FuzzParams{4, 1200, false},
                                           FuzzParams{5, 2000, true}));

}  // namespace
}  // namespace casper
