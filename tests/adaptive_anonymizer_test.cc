#include "src/anonymizer/adaptive_anonymizer.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace casper::anonymizer {
namespace {

PyramidConfig SmallConfig(int height = 5) {
  PyramidConfig config;
  config.height = height;
  return config;
}

TEST(AdaptiveAnonymizerTest, StartsWithOnlyRoot) {
  AdaptiveAnonymizer anon(SmallConfig());
  EXPECT_EQ(anon.materialized_cell_count(), 1u);
  EXPECT_TRUE(anon.IsMaterialized(CellId::Root()));
  EXPECT_TRUE(anon.CheckInvariants());
}

TEST(AdaptiveAnonymizerTest, RelaxedUsersDeepenStructure) {
  AdaptiveAnonymizer anon(SmallConfig(4));
  Rng rng(1);
  // Fully relaxed users (k=1, no area need): the structure should split
  // down toward the lowest level around each user.
  for (UserId uid = 0; uid < 50; ++uid) {
    ASSERT_TRUE(
        anon.RegisterUser(uid, {1, 0.0}, rng.PointIn(anon.config().space))
            .ok());
  }
  EXPECT_GT(anon.materialized_cell_count(), 1u);
  EXPECT_GT(anon.stats().splits, 0u);
  EXPECT_TRUE(anon.CheckInvariants());
}

TEST(AdaptiveAnonymizerTest, StrictUsersKeepStructureShallow) {
  AdaptiveAnonymizer anon(SmallConfig(6));
  Rng rng(2);
  // Every user requires the entire population (k = uid count would be
  // unachievable below root for most cells).
  for (UserId uid = 0; uid < 40; ++uid) {
    ASSERT_TRUE(
        anon.RegisterUser(uid, {40, 0.0}, rng.PointIn(anon.config().space))
            .ok());
  }
  // k=40 of 40 users: no level-1 cell can hold everyone unless all users
  // cluster in one quadrant, so the structure stays tiny.
  EXPECT_LT(anon.materialized_cell_count(), 10u);
  EXPECT_TRUE(anon.CheckInvariants());
}

TEST(AdaptiveAnonymizerTest, AreaRequirementBoundsDepth) {
  PyramidConfig config = SmallConfig(8);
  AdaptiveAnonymizer anon(config);
  Rng rng(3);
  // a_min equal to a level-2 cell: no cell deeper than level 2 can ever
  // serve these users, so no leaf is deeper than level 2.
  const double a_min = config.CellArea(2);
  for (UserId uid = 0; uid < 200; ++uid) {
    ASSERT_TRUE(
        anon.RegisterUser(uid, {1, a_min}, rng.PointIn(config.space)).ok());
  }
  EXPECT_TRUE(anon.CheckInvariants());
  // Materialized cells can be at most level 2 (leaves) — count bound:
  // root + 4 + 16 = 21.
  EXPECT_LE(anon.materialized_cell_count(), 21u);
}

TEST(AdaptiveAnonymizerTest, DeregistrationTriggersMerges) {
  AdaptiveAnonymizer anon(SmallConfig(5));
  Rng rng(4);
  std::vector<UserId> uids;
  for (UserId uid = 0; uid < 100; ++uid) {
    uids.push_back(uid);
    ASSERT_TRUE(
        anon.RegisterUser(uid, {2, 0.0}, rng.PointIn(anon.config().space))
            .ok());
  }
  const size_t peak = anon.materialized_cell_count();
  for (UserId uid : uids) ASSERT_TRUE(anon.DeregisterUser(uid).ok());
  EXPECT_EQ(anon.user_count(), 0u);
  EXPECT_TRUE(anon.CheckInvariants());
  // With everyone gone, merges should have collapsed the structure
  // substantially (empty quadrants merge: no user needs them).
  EXPECT_LT(anon.materialized_cell_count(), peak);
  EXPECT_GT(anon.stats().merges, 0u);
}

TEST(AdaptiveAnonymizerTest, MovementMaintainsInvariants) {
  AdaptiveAnonymizer anon(SmallConfig(6));
  Rng rng(5);
  const Rect space = anon.config().space;
  for (UserId uid = 0; uid < 150; ++uid) {
    const uint32_t k = static_cast<uint32_t>(rng.UniformInt(1, 20));
    ASSERT_TRUE(anon.RegisterUser(uid, {k, 0.0}, rng.PointIn(space)).ok());
  }
  for (int round = 0; round < 20; ++round) {
    for (UserId uid = 0; uid < 150; ++uid) {
      ASSERT_TRUE(anon.UpdateLocation(uid, rng.PointIn(space)).ok());
    }
    ASSERT_TRUE(anon.CheckInvariants()) << "round " << round;
  }
}

TEST(AdaptiveAnonymizerTest, LocalMovementMaintainsInvariants) {
  // Small steps (the realistic regime for the adaptive structure).
  AdaptiveAnonymizer anon(SmallConfig(6));
  Rng rng(6);
  const Rect space = anon.config().space;
  std::vector<Point> pos;
  for (UserId uid = 0; uid < 100; ++uid) {
    pos.push_back(rng.PointIn(space));
    const uint32_t k = static_cast<uint32_t>(rng.UniformInt(1, 10));
    ASSERT_TRUE(anon.RegisterUser(uid, {k, 0.0}, pos.back()).ok());
  }
  for (int round = 0; round < 30; ++round) {
    for (UserId uid = 0; uid < 100; ++uid) {
      pos[uid].x = std::clamp(pos[uid].x + rng.Uniform(-0.02, 0.02), 0.0, 1.0);
      pos[uid].y = std::clamp(pos[uid].y + rng.Uniform(-0.02, 0.02), 0.0, 1.0);
      ASSERT_TRUE(anon.UpdateLocation(uid, pos[uid]).ok());
    }
  }
  EXPECT_TRUE(anon.CheckInvariants());
}

TEST(AdaptiveAnonymizerTest, CloakHonorsProfile) {
  AdaptiveAnonymizer anon(SmallConfig(7));
  Rng rng(7);
  std::vector<Point> positions;
  for (UserId uid = 0; uid < 300; ++uid) {
    const Point p = rng.PointIn(anon.config().space);
    positions.push_back(p);
    const uint32_t k = static_cast<uint32_t>(rng.UniformInt(1, 30));
    const double a_min = anon.config().space.Area() * rng.Uniform(0, 1e-3);
    ASSERT_TRUE(anon.RegisterUser(uid, {k, a_min}, p).ok());
  }
  for (UserId uid = 0; uid < 300; uid += 5) {
    auto result = anon.Cloak(uid);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result->region.Contains(positions[uid]));
  }
  EXPECT_TRUE(anon.CheckInvariants());
}

TEST(AdaptiveAnonymizerTest, ProfileChangeReshapesStructure) {
  AdaptiveAnonymizer anon(SmallConfig(6));
  Rng rng(8);
  for (UserId uid = 0; uid < 60; ++uid) {
    // Strict: nobody satisfiable below root-ish levels.
    ASSERT_TRUE(
        anon.RegisterUser(uid, {60, 0.0}, rng.PointIn(anon.config().space))
            .ok());
  }
  const size_t shallow = anon.materialized_cell_count();
  // Relax everyone: structure should deepen.
  for (UserId uid = 0; uid < 60; ++uid) {
    ASSERT_TRUE(anon.UpdateProfile(uid, {1, 0.0}).ok());
  }
  EXPECT_GT(anon.materialized_cell_count(), shallow);
  EXPECT_TRUE(anon.CheckInvariants());

  // Tighten again: merges collapse it back.
  for (UserId uid = 0; uid < 60; ++uid) {
    ASSERT_TRUE(anon.UpdateProfile(uid, {60, 0.0}).ok());
  }
  EXPECT_TRUE(anon.CheckInvariants());
  EXPECT_LE(anon.materialized_cell_count(), shallow + 8);
}

TEST(AdaptiveAnonymizerTest, FewerMaterializedCellsThanComplete) {
  const int height = 7;
  AdaptiveAnonymizer anon(SmallConfig(height));
  Rng rng(9);
  for (UserId uid = 0; uid < 500; ++uid) {
    const uint32_t k = static_cast<uint32_t>(rng.UniformInt(10, 50));
    ASSERT_TRUE(
        anon.RegisterUser(uid, {k, 0.0}, rng.PointIn(anon.config().space))
            .ok());
  }
  // Complete pyramid cell count: sum 4^l, l = 0..7 = 21845.
  size_t complete = 0;
  for (int l = 0; l <= height; ++l) complete += size_t{1} << (2 * l);
  EXPECT_LT(anon.materialized_cell_count(), complete / 10);
}

TEST(AdaptiveAnonymizerTest, ErrorPaths) {
  AdaptiveAnonymizer anon(SmallConfig());
  EXPECT_EQ(anon.UpdateLocation(9, {0.5, 0.5}).code(), StatusCode::kNotFound);
  EXPECT_EQ(anon.DeregisterUser(9).code(), StatusCode::kNotFound);
  EXPECT_EQ(anon.Cloak(9).status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(anon.RegisterUser(1, {1, 0.0}, {0.5, 0.5}).ok());
  EXPECT_EQ(anon.RegisterUser(1, {1, 0.0}, {0.5, 0.5}).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(anon.UpdateLocation(1, {2.0, 0.5}).code(),
            StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace casper::anonymizer
