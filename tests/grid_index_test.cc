#include "src/spatial/grid_index.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/rng.h"

namespace casper::spatial {
namespace {

TEST(GridIndexTest, InsertQueryRemove) {
  GridIndex grid(Rect(0, 0, 1, 1), 8);
  ASSERT_TRUE(grid.Insert({0.5, 0.5}, 1).ok());
  ASSERT_TRUE(grid.Insert({0.9, 0.1}, 2).ok());
  EXPECT_EQ(grid.size(), 2u);

  std::vector<uint64_t> out;
  grid.RangeQuery(Rect(0.4, 0.4, 0.6, 0.6), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 1u);

  EXPECT_TRUE(grid.Remove(1).ok());
  EXPECT_EQ(grid.size(), 1u);
  EXPECT_EQ(grid.Remove(1).code(), StatusCode::kNotFound);
}

TEST(GridIndexTest, RejectsDuplicatesAndOutOfRange) {
  GridIndex grid(Rect(0, 0, 1, 1), 4);
  ASSERT_TRUE(grid.Insert({0.5, 0.5}, 1).ok());
  EXPECT_EQ(grid.Insert({0.2, 0.2}, 1).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(grid.Insert({1.5, 0.5}, 2).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(grid.Update({2.0, 0.0}, 1).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(grid.Update({0.1, 0.1}, 99).code(), StatusCode::kNotFound);
}

TEST(GridIndexTest, UpdateMovesAcrossCells) {
  GridIndex grid(Rect(0, 0, 1, 1), 4);
  ASSERT_TRUE(grid.Insert({0.1, 0.1}, 1).ok());
  ASSERT_TRUE(grid.Update({0.9, 0.9}, 1).ok());
  Point p;
  ASSERT_TRUE(grid.TryGetPosition(1, &p));
  EXPECT_EQ(p, (Point{0.9, 0.9}));
  std::vector<uint64_t> out;
  grid.RangeQuery(Rect(0.8, 0.8, 1.0, 1.0), &out);
  ASSERT_EQ(out.size(), 1u);
}

TEST(GridIndexTest, NearestSimple) {
  GridIndex grid(Rect(0, 0, 1, 1), 8);
  ASSERT_TRUE(grid.Insert({0.2, 0.2}, 1).ok());
  ASSERT_TRUE(grid.Insert({0.8, 0.8}, 2).ok());
  const auto nn = grid.Nearest({0.25, 0.25});
  ASSERT_TRUE(nn.found);
  EXPECT_EQ(nn.id, 1u);
  EXPECT_NEAR(nn.distance, Distance({0.25, 0.25}, {0.2, 0.2}), 1e-12);
}

TEST(GridIndexTest, NearestEmpty) {
  GridIndex grid(Rect(0, 0, 1, 1), 8);
  EXPECT_FALSE(grid.Nearest({0.5, 0.5}).found);
  EXPECT_TRUE(grid.KNearest({0.5, 0.5}, 3).empty());
}

TEST(GridIndexTest, NearestMatchesBruteForce) {
  Rng rng(42);
  const Rect space(0, 0, 1, 1);
  GridIndex grid(space, 16);
  std::vector<Point> points;
  for (uint64_t i = 0; i < 300; ++i) {
    const Point p = rng.PointIn(space);
    points.push_back(p);
    ASSERT_TRUE(grid.Insert(p, i).ok());
  }
  for (int i = 0; i < 100; ++i) {
    const Point q = rng.PointIn(space);
    const auto nn = grid.Nearest(q);
    ASSERT_TRUE(nn.found);
    double best = 1e300;
    for (const Point& p : points) best = std::min(best, Distance(q, p));
    EXPECT_NEAR(nn.distance, best, 1e-12);
  }
}

TEST(GridIndexTest, KNearestMatchesBruteForce) {
  Rng rng(43);
  const Rect space(0, 0, 1, 1);
  GridIndex grid(space, 8);
  std::vector<Point> points;
  for (uint64_t i = 0; i < 200; ++i) {
    const Point p = rng.PointIn(space);
    points.push_back(p);
    ASSERT_TRUE(grid.Insert(p, i).ok());
  }
  for (int trial = 0; trial < 20; ++trial) {
    const Point q = rng.PointIn(space);
    const auto knn = grid.KNearest(q, 5);
    ASSERT_EQ(knn.size(), 5u);
    std::vector<double> brute;
    for (const Point& p : points) brute.push_back(Distance(q, p));
    std::sort(brute.begin(), brute.end());
    for (size_t i = 0; i < 5; ++i) {
      EXPECT_NEAR(knn[i].distance, brute[i], 1e-12);
    }
  }
}

TEST(GridIndexTest, NearestFromOutsideSpace) {
  GridIndex grid(Rect(0, 0, 1, 1), 8);
  ASSERT_TRUE(grid.Insert({0.5, 0.5}, 1).ok());
  const auto nn = grid.Nearest({5.0, 5.0});
  ASSERT_TRUE(nn.found);
  EXPECT_EQ(nn.id, 1u);
}

TEST(GridIndexTest, RangeQueryMatchesBruteForce) {
  Rng rng(44);
  const Rect space(0, 0, 1, 1);
  GridIndex grid(space, 10);
  std::vector<Point> points;
  for (uint64_t i = 0; i < 500; ++i) {
    const Point p = rng.PointIn(space);
    points.push_back(p);
    ASSERT_TRUE(grid.Insert(p, i).ok());
  }
  for (int trial = 0; trial < 30; ++trial) {
    const Point c = rng.PointIn(space);
    const Rect window(c.x, c.y, std::min(c.x + 0.3, 1.0),
                      std::min(c.y + 0.2, 1.0));
    std::vector<uint64_t> got;
    grid.RangeQuery(window, &got);
    std::sort(got.begin(), got.end());
    std::vector<uint64_t> expect;
    for (uint64_t i = 0; i < points.size(); ++i) {
      if (window.Contains(points[i])) expect.push_back(i);
    }
    EXPECT_EQ(got, expect);
    EXPECT_EQ(grid.RangeCount(window), expect.size());
  }
}

TEST(GridIndexTest, SingleCellGridWorks) {
  GridIndex grid(Rect(0, 0, 1, 1), 1);
  for (uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(grid.Insert({0.1 * i, 0.05 * i}, i).ok());
  }
  EXPECT_EQ(grid.size(), 10u);
  const auto nn = grid.Nearest({0.0, 0.0});
  ASSERT_TRUE(nn.found);
  EXPECT_EQ(nn.id, 0u);
}

}  // namespace
}  // namespace casper::spatial
