#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/casper/messages.h"
#include "src/casper/workload.h"
#include "src/common/rng.h"
#include "src/server/query_server.h"
#include "src/transport/channel.h"
#include "src/transport/listener.h"
#include "src/transport/server_endpoint.h"
#include "src/transport/socket_channel.h"

/// The acceptance bar for the real transport: against the *same*
/// QueryServer, every one of the seven query kinds answered over a
/// Unix-domain socket is byte-identical (after zeroing the one
/// measured field, processor_seconds) to the answer over the
/// in-process DirectChannel. The socket moves bytes; it must never
/// change them.

namespace casper {
namespace {

using transport::CallContext;
using transport::DirectChannel;
using transport::SocketChannel;
using transport::SocketListener;

std::vector<CloakedQueryMsg> AllSevenKinds() {
  std::vector<CloakedQueryMsg> queries;
  {
    CloakedQueryMsg q;
    q.kind = QueryKind::kNearestPublic;
    q.request_id = 101;
    q.cloak = Rect(0.2, 0.2, 0.4, 0.4);
    queries.push_back(q);
  }
  {
    CloakedQueryMsg q;
    q.kind = QueryKind::kKNearestPublic;
    q.request_id = 102;
    q.cloak = Rect(0.3, 0.1, 0.5, 0.3);
    q.k = 4;
    queries.push_back(q);
  }
  {
    CloakedQueryMsg q;
    q.kind = QueryKind::kRangePublic;
    q.request_id = 103;
    q.cloak = Rect(0.6, 0.6, 0.7, 0.7);
    q.radius = 0.05;
    queries.push_back(q);
  }
  {
    CloakedQueryMsg q;
    q.kind = QueryKind::kNearestPrivate;
    q.request_id = 104;
    q.cloak = Rect(0.4, 0.4, 0.45, 0.45);
    q.has_exclude = true;
    q.exclude_handle = 3;
    queries.push_back(q);
  }
  {
    CloakedQueryMsg q;
    q.kind = QueryKind::kPublicNearest;
    q.request_id = 105;
    q.point = Point{0.31, 0.64};
    queries.push_back(q);
  }
  {
    CloakedQueryMsg q;
    q.kind = QueryKind::kPublicRange;
    q.request_id = 106;
    q.region = Rect(0.1, 0.1, 0.8, 0.8);
    queries.push_back(q);
  }
  {
    CloakedQueryMsg q;
    q.kind = QueryKind::kDensity;
    q.request_id = 107;
    q.cols = 4;
    q.rows = 4;
    queries.push_back(q);
  }
  return queries;
}

TEST(SocketParityTest, AllSevenKindsByteIdenticalToDirectChannel) {
  // One populated server answers through both transports.
  server::QueryServerOptions server_options;
  server::QueryServer server(server_options);
  Rng rng(0xBEEF);
  const Rect space(0.0, 0.0, 1.0, 1.0);
  server.SetPublicTargets(workload::UniformPublicTargets(64, space, &rng));
  SnapshotMsg snapshot;
  for (uint64_t handle = 1; handle <= 24; ++handle) {
    const Point center = rng.PointIn(space);
    processor::PrivateTarget region;
    region.id = handle;
    region.region = Rect(center.x, center.y,
                         std::min(1.0, center.x + 0.03),
                         std::min(1.0, center.y + 0.03));
    snapshot.regions.push_back(region);
  }
  ASSERT_TRUE(server.Load(snapshot).ok());

  transport::ServerEndpoint endpoint(&server);
  DirectChannel direct(&endpoint);

  const std::string address = "unix:/tmp/casper_parity_" +
                              std::to_string(getpid()) + ".sock";
  auto listener = SocketListener::Start(
      address,
      [&endpoint](std::string_view request, const CallContext& context) {
        return endpoint.Handle(request, context);
      },
      transport::ListenerOptions{});
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  SocketChannel socket(address);

  for (const CloakedQueryMsg& query : AllSevenKinds()) {
    const std::string request = Encode(query);
    auto direct_bytes = direct.Call(request, CallContext{});
    auto socket_bytes = socket.Call(request, CallContext{});
    ASSERT_TRUE(direct_bytes.ok()) << direct_bytes.status().ToString();
    ASSERT_TRUE(socket_bytes.ok()) << socket_bytes.status().ToString();

    auto direct_msg = DecodeCandidateList(direct_bytes.value());
    auto socket_msg = DecodeCandidateList(socket_bytes.value());
    ASSERT_TRUE(direct_msg.ok())
        << "kind " << static_cast<int>(query.kind) << ": "
        << direct_msg.status().ToString();
    ASSERT_TRUE(socket_msg.ok())
        << "kind " << static_cast<int>(query.kind) << ": "
        << socket_msg.status().ToString();

    // processor_seconds is a measurement, not an answer; everything
    // else must survive the wire byte for byte.
    CandidateListMsg direct_answer = std::move(direct_msg).value();
    CandidateListMsg socket_answer = std::move(socket_msg).value();
    direct_answer.processor_seconds = 0.0;
    socket_answer.processor_seconds = 0.0;
    EXPECT_EQ(Encode(direct_answer), Encode(socket_answer))
        << "kind " << static_cast<int>(query.kind)
        << " diverged across the socket";
    EXPECT_EQ(socket_answer.request_id, query.request_id);
  }
  (*listener)->Shutdown();
}

TEST(SocketParityTest, MaintenanceAcksMatchAcrossTransports) {
  server::QueryServerOptions server_options;
  server::QueryServer direct_server(server_options);
  server::QueryServer socket_server(server_options);
  transport::ServerEndpoint direct_endpoint(&direct_server);
  transport::ServerEndpoint socket_endpoint(&socket_server);
  DirectChannel direct(&direct_endpoint);

  const std::string address = "unix:/tmp/casper_parity_maint_" +
                              std::to_string(getpid()) + ".sock";
  auto listener = SocketListener::Start(
      address,
      [&socket_endpoint](std::string_view request,
                         const CallContext& context) {
        return socket_endpoint.Handle(request, context);
      },
      transport::ListenerOptions{});
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  SocketChannel socket(address);

  RegionUpsertMsg upsert;
  upsert.request_id = 11;
  upsert.handle = 42;
  upsert.region = Rect(0.1, 0.2, 0.3, 0.4);
  RegionRemoveMsg remove;
  remove.request_id = 12;
  remove.handle = 42;
  RegionRemoveMsg missing;
  missing.request_id = 13;
  missing.handle = 777;  // Never stored: still an identical typed ack.

  const std::vector<std::string> stream = {Encode(upsert), Encode(remove),
                                           Encode(missing)};
  for (const std::string& request : stream) {
    auto direct_bytes = direct.Call(request, CallContext{});
    auto socket_bytes = socket.Call(request, CallContext{});
    ASSERT_TRUE(direct_bytes.ok());
    ASSERT_TRUE(socket_bytes.ok());
    EXPECT_EQ(direct_bytes.value(), socket_bytes.value());
  }
  EXPECT_EQ(direct_server.private_store().size(),
            socket_server.private_store().size());
  (*listener)->Shutdown();
}

}  // namespace
}  // namespace casper
