#include "src/anonymizer/privacy_analysis.h"

#include <gtest/gtest.h>

#include "src/anonymizer/adaptive_anonymizer.h"
#include "src/common/rng.h"

namespace casper::anonymizer {
namespace {

CloakObservation Obs(Rect region, uint64_t users, PrivacyProfile profile,
                     Point truth) {
  return CloakObservation{region, users, profile, truth};
}

TEST(PrivacyAnalysisTest, SingleObservation) {
  auto report = AnalyzeCloaks(
      {Obs(Rect(0, 0, 0.5, 0.5), 8, {4, 0.1}, {0.25, 0.25})});
  EXPECT_DOUBLE_EQ(report.achieved_k.mean(), 8.0);
  EXPECT_DOUBLE_EQ(report.k_accuracy.mean(), 2.0);
  EXPECT_DOUBLE_EQ(report.area.mean(), 0.25);
  EXPECT_DOUBLE_EQ(report.area_accuracy.mean(), 2.5);
  EXPECT_DOUBLE_EQ(report.identity_entropy_bits.mean(), 3.0);
  EXPECT_DOUBLE_EQ(report.profile_satisfaction, 1.0);
  // True position at the center: attack error 0.
  EXPECT_DOUBLE_EQ(report.center_attack_normalized_error, 0.0);
}

TEST(PrivacyAnalysisTest, UnsatisfiedProfileDetected) {
  auto report = AnalyzeCloaks(
      {Obs(Rect(0, 0, 0.1, 0.1), 3, {10, 0.0}, {0.05, 0.05}),
       Obs(Rect(0, 0, 0.5, 0.5), 20, {10, 0.0}, {0.2, 0.2})});
  EXPECT_DOUBLE_EQ(report.profile_satisfaction, 0.5);
}

TEST(PrivacyAnalysisTest, CornerPositionMaximizesAttackError) {
  auto report = AnalyzeCloaks(
      {Obs(Rect(0, 0, 1, 1), 5, {1, 0.0}, {0.0, 0.0})});
  // True position on a corner: distance = half diagonal, normalized 1.
  EXPECT_NEAR(report.center_attack_normalized_error, 1.0, 1e-12);
}

TEST(PrivacyAnalysisTest, UniformTruthGivesExpectedAttackError) {
  // Users uniform in their cloaks: normalized center error averages to
  // the analytic constant for squares (~0.3826 * sqrt(2) = 0.541).
  Rng rng(1);
  std::vector<CloakObservation> obs;
  for (int i = 0; i < 20000; ++i) {
    const Rect region(0.2, 0.2, 0.7, 0.7);
    obs.push_back(Obs(region, 10, {5, 0.0}, rng.PointIn(region)));
  }
  auto report = AnalyzeCloaks(obs);
  EXPECT_NEAR(report.center_attack_normalized_error, 0.541, 0.01);
}

TEST(PrivacyAnalysisTest, UniformityDeviationSmallForUniformDraws) {
  Rng rng(2);
  std::vector<CloakObservation> obs;
  for (int i = 0; i < 20000; ++i) {
    const Rect region(0.1, 0.3, 0.6, 0.8);
    obs.push_back(Obs(region, 10, {5, 0.0}, rng.PointIn(region)));
  }
  EXPECT_LT(UniformityDeviation(obs, 4), 0.1);
}

TEST(PrivacyAnalysisTest, UniformityDeviationLargeForSkewedDraws) {
  Rng rng(3);
  std::vector<CloakObservation> obs;
  for (int i = 0; i < 5000; ++i) {
    const Rect region(0, 0, 1, 1);
    // All users hide in one corner of their cloak: a strong leak.
    obs.push_back(Obs(region, 10, {5, 0.0},
                      rng.PointIn(Rect(0, 0, 0.25, 0.25))));
  }
  EXPECT_GT(UniformityDeviation(obs, 4), 1.0);
}

TEST(PrivacyAnalysisTest, EndToEndWithAnonymizer) {
  // The pyramid anonymizer's cell-aligned cloaks must satisfy every
  // profile and keep the user position uniform within the region when
  // users themselves are uniformly distributed.
  PyramidConfig config;
  config.height = 7;
  AdaptiveAnonymizer anon(config);
  Rng rng(4);
  std::vector<Point> positions;
  for (UserId uid = 0; uid < 2000; ++uid) {
    const Point p = rng.PointIn(config.space);
    positions.push_back(p);
    const uint32_t k = static_cast<uint32_t>(rng.UniformInt(1, 30));
    ASSERT_TRUE(anon.RegisterUser(uid, {k, 0.0}, p).ok());
  }
  std::vector<CloakObservation> obs;
  for (UserId uid = 0; uid < 2000; ++uid) {
    auto cloak = anon.Cloak(uid);
    ASSERT_TRUE(cloak.ok());
    auto profile = anon.GetProfile(uid);
    ASSERT_TRUE(profile.ok());
    obs.push_back(Obs(cloak->region, cloak->users_in_region, *profile,
                      positions[uid]));
  }
  auto report = AnalyzeCloaks(obs);
  EXPECT_DOUBLE_EQ(report.profile_satisfaction, 1.0);
  EXPECT_GE(report.k_accuracy.min(), 1.0);
  // No strong positional bias inside cloaks (coarse check; cell-aligned
  // regions plus uniform users keep this modest).
  EXPECT_LT(UniformityDeviation(obs, 2), 0.35);
}

}  // namespace
}  // namespace casper::anonymizer
