#include "src/spatial/epoch_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "src/common/rng.h"

namespace casper::spatial {
namespace {

const Rect kSpace(0.0, 0.0, 1.0, 1.0);

std::vector<RTree::Entry> RandomRectEntries(size_t n, Rng* rng,
                                            double max_extent,
                                            uint64_t first_id = 0) {
  std::vector<RTree::Entry> entries;
  for (size_t i = 0; i < n; ++i) {
    const Point c = rng->PointIn(kSpace);
    const double w = rng->Uniform(0.0, max_extent);
    const double h = rng->Uniform(0.0, max_extent);
    entries.push_back({Rect(c.x, c.y, c.x + w, c.y + h), first_id + i});
  }
  return entries;
}

std::vector<uint64_t> SortedIds(const std::vector<RTree::Entry>& entries) {
  std::vector<uint64_t> ids;
  ids.reserve(entries.size());
  for (const auto& e : entries) ids.push_back(e.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST(EpochIndexTest, EmptyIndexPublishesUsableSnapshot) {
  EpochIndex index;
  auto snap = index.Acquire();
  ASSERT_NE(snap, nullptr);
  EXPECT_TRUE(snap->empty());
  EXPECT_EQ(snap->RangeCount(kSpace), 0u);
  EXPECT_FALSE(snap->Nearest(Point{0.5, 0.5}).found);
}

/// Every mutation publishes a new epoch, and queries on the current
/// snapshot always match the authoritative Guttman tree.
TEST(EpochIndexTest, SnapshotMatchesAuthoritativeTreeAfterEachMutation) {
  Rng rng(1);
  EpochIndex index(8, /*rebuild_threshold=*/16);
  std::vector<RTree::Entry> alive;
  for (size_t step = 0; step < 300; ++step) {
    if (alive.empty() || rng.Uniform(0.0, 1.0) < 0.65) {
      RTree::Entry e = RandomRectEntries(1, &rng, 0.05, step)[0];
      index.Insert(e.box, e.id);
      alive.push_back(e);
    } else {
      const size_t victim = static_cast<size_t>(
          rng.Uniform(0.0, static_cast<double>(alive.size())));
      ASSERT_TRUE(index.Remove(alive[victim].box, alive[victim].id));
      alive.erase(alive.begin() + static_cast<ptrdiff_t>(victim));
    }
    if (step % 10 != 0) continue;  // Deep-compare every 10th step.
    auto snap = index.Acquire();
    ASSERT_EQ(snap->size(), alive.size());
    const Point a = rng.PointIn(kSpace);
    const Point b = rng.PointIn(kSpace);
    const Rect window(std::min(a.x, b.x), std::min(a.y, b.y),
                      std::max(a.x, b.x), std::max(a.y, b.y));
    std::vector<RTree::Entry> from_tree;
    index.tree().RangeQuery(window, &from_tree);
    std::vector<RTree::Entry> from_snap;
    snap->RangeQuery(window, &from_snap);
    EXPECT_EQ(SortedIds(from_tree), SortedIds(from_snap));
    EXPECT_EQ(index.tree().RangeCount(window), snap->RangeCount(window));

    const Point q = rng.PointIn(kSpace);
    for (auto metric : {RTree::Metric::kMinDist, RTree::Metric::kMaxDist}) {
      auto exact = index.tree().KNearest(q, 5, metric);
      auto approx = snap->KNearest(q, 5, metric);
      ASSERT_EQ(exact.size(), approx.size());
      for (size_t i = 0; i < exact.size(); ++i) {
        EXPECT_DOUBLE_EQ(exact[i].distance, approx[i].distance);
      }
    }
  }
}

/// A reader's snapshot is frozen at acquisition: later writes neither
/// change its answers nor invalidate it.
TEST(EpochIndexTest, AcquiredSnapshotIsImmuneToLaterWrites) {
  Rng rng(2);
  EpochIndex index = EpochIndex::BulkLoad(RandomRectEntries(100, &rng, 0.05));
  auto old_snap = index.Acquire();
  const size_t old_size = old_snap->size();
  const size_t old_count = old_snap->RangeCount(kSpace);
  const uint64_t old_epoch = old_snap->epoch();

  for (const auto& e : RandomRectEntries(50, &rng, 0.05, 1000)) {
    index.Insert(e.box, e.id);
  }

  EXPECT_EQ(old_snap->size(), old_size);
  EXPECT_EQ(old_snap->RangeCount(kSpace), old_count);
  auto new_snap = index.Acquire();
  EXPECT_GT(new_snap->epoch(), old_epoch);
  EXPECT_EQ(new_snap->size(), 150u);
  EXPECT_EQ(new_snap->RangeCount(kSpace), 150u);
}

TEST(EpochIndexTest, StatsCountPublicationsRebuildsAndReclamation) {
  Rng rng(3);
  EpochIndex index(16, /*rebuild_threshold=*/8);
  const auto entries = RandomRectEntries(32, &rng, 0.05);
  {
    auto snap = index.Acquire();  // Hold epoch 1 while writing.
    for (const auto& e : entries) index.Insert(e.box, e.id);
  }
  EpochIndex::Stats stats = index.stats();
  // 1 initial publication + one per insert.
  EXPECT_EQ(stats.published, 1u + entries.size());
  // 32 inserts at threshold 8 force repacks; the live delta stays small.
  EXPECT_GE(stats.rebuilds, 3u);
  EXPECT_LT(stats.delta_entries, 8u);
  EXPECT_EQ(stats.tombstones, 0u);
  // Every superseded snapshot was released (ours included); only the
  // currently-published epoch is still alive.
  EXPECT_EQ(stats.reclaimed, stats.published - 1u);

  // Tombstones accumulate on removes of base entries, then clear on the
  // next repack.
  size_t removed = 0;
  for (const auto& e : entries) {
    index.Remove(e.box, e.id);
    if (++removed == 4) break;
  }
  stats = index.stats();
  EXPECT_EQ(index.size(), entries.size() - removed);
  EXPECT_EQ(index.Acquire()->size(), entries.size() - removed);
}

/// Readers acquire and query snapshots while a writer churns — the
/// TSan-labeled guarantee that the read path is safe without locks.
TEST(EpochIndexTest, ConcurrentReadersSeeConsistentSnapshots) {
  Rng rng(4);
  std::vector<RTree::Entry> alive = RandomRectEntries(200, &rng, 0.05);
  EpochIndex index = EpochIndex::BulkLoad(alive, 16, 32);
  std::atomic<bool> stop{false};
  std::atomic<size_t> reads{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&index, &stop, &reads, t] {
      Rng reader_rng(100 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        auto snap = index.Acquire();
        const size_t snapshot_size = snap->size();
        // A snapshot is internally consistent: a full-space range count
        // equals its size no matter what the writer does meanwhile.
        ASSERT_EQ(snap->RangeCount(kSpace), snapshot_size);
        const Point q = reader_rng.PointIn(kSpace);
        auto nn = snap->KNearest(q, 3, RTree::Metric::kMaxDist);
        ASSERT_LE(nn.size(), std::min<size_t>(3, snapshot_size));
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (int round = 0; round < 50; ++round) {
    RTree::Entry e = RandomRectEntries(1, &rng, 0.05, 5000 + round)[0];
    index.Insert(e.box, e.id);
    const size_t victim = static_cast<size_t>(
        rng.Uniform(0.0, static_cast<double>(alive.size())));
    if (index.Remove(alive[victim].box, alive[victim].id)) {
      alive.erase(alive.begin() + static_cast<ptrdiff_t>(victim));
    }
  }
  // Let the readers observe the final state too.
  while (reads.load(std::memory_order_relaxed) < 100) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();
  EXPECT_GE(index.stats().published, 51u);
}

}  // namespace
}  // namespace casper::spatial
