#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "src/casper/messages.h"
#include "src/obs/metrics.h"
#include "src/server/query_server.h"
#include "src/sharding/shard_router.h"

/// Cross-shard inclusiveness differential test: over a randomized
/// workload — including upserts, removes, and replaces whose regions
/// land exactly on partition-cell boundaries — the sharded router and
/// a single un-sharded QueryServer produce byte-identical encoded
/// answers for every query kind. Byte equality subsumes inclusiveness:
/// whatever the single server's candidate list guarantees, the merged
/// one guarantees too.

namespace casper::sharding {
namespace {

constexpr uint32_t kLevel = 3;  // 64 cells, cell edge 0.125
constexpr size_t kShards = 4;

class ShardInclusivenessTest : public ::testing::Test {
 protected:
  ShardInclusivenessTest() : rng_(20260807), reference_({}) {
    ShardRouterOptions options;
    options.num_shards = kShards;
    options.partition_level = kLevel;
    options.space = Rect(0.0, 0.0, 1.0, 1.0);
    options.registry = &registry_;
    router_ = std::make_unique<ShardRouter>(options);
  }

  double Coord() { return std::uniform_real_distribution<double>(0.02, 0.98)(rng_); }

  /// A coordinate landing exactly on a partition-cell boundary.
  double BoundaryCoord() {
    const uint32_t dim = 1u << kLevel;
    return static_cast<double>(
               std::uniform_int_distribution<uint32_t>(1, dim - 1)(rng_)) /
           dim;
  }

  Rect RandomRegion(bool on_boundary) {
    const double cx = on_boundary ? BoundaryCoord() : Coord();
    const double cy = on_boundary ? BoundaryCoord() : Coord();
    const double hw =
        std::uniform_real_distribution<double>(0.005, 0.08)(rng_);
    const double hh =
        std::uniform_real_distribution<double>(0.005, 0.08)(rng_);
    return Rect(cx - hw, cy - hh, cx + hw, cy + hh);
  }

  uint64_t NextId() { return ++next_id_; }

  /// Apply one maintenance message to both sides; both must agree on
  /// the outcome.
  void ApplyBoth(const RegionUpsertMsg& msg) {
    const Status a = router_->Apply(msg);
    RegionUpsertMsg ref = msg;
    ref.request_id = msg.request_id + 1000000;  // distinct replay windows
    const Status b = reference_.Apply(ref);
    ASSERT_EQ(a.code(), b.code()) << a.ToString() << " vs " << b.ToString();
    if (a.ok()) handles_.push_back(msg.handle);
  }

  void RemoveBoth(uint64_t handle) {
    RegionRemoveMsg msg;
    msg.request_id = NextId();
    msg.handle = handle;
    const Status a = router_->Apply(msg);
    msg.request_id += 1000000;
    const Status b = reference_.Apply(msg);
    ASSERT_EQ(a.code(), b.code());
    if (a.ok()) {
      handles_.erase(std::find(handles_.begin(), handles_.end(), handle));
    }
  }

  void ExpectSameAnswer(const CloakedQueryMsg& query) {
    auto routed = router_->Execute(query);
    auto single = reference_.Execute(query, nullptr);
    ASSERT_EQ(routed.ok(), single.ok())
        << "kind " << static_cast<int>(query.kind) << ": "
        << routed.status().ToString() << " vs " << single.status().ToString();
    if (!routed.ok()) {
      EXPECT_EQ(routed.status().code(), single.status().code());
      EXPECT_EQ(routed.status().message(), single.status().message());
      return;
    }
    EXPECT_FALSE(routed->degraded);
    routed->processor_seconds = 0.0;
    routed->request_id = 0;
    single->processor_seconds = 0.0;
    single->request_id = 0;
    EXPECT_EQ(Encode(*routed), Encode(*single))
        << "kind " << static_cast<int>(query.kind);
  }

  Rect RandomCloak() {
    const double x = Coord(), y = Coord();
    const double w = std::uniform_real_distribution<double>(0.01, 0.2)(rng_);
    const double h = std::uniform_real_distribution<double>(0.01, 0.2)(rng_);
    return Rect(x, y, std::min(1.0, x + w), std::min(1.0, y + h));
  }

  void QueryRound() {
    // kNearestPublic
    CloakedQueryMsg q;
    q.request_id = NextId();
    q.kind = QueryKind::kNearestPublic;
    q.cloak = RandomCloak();
    ExpectSameAnswer(q);

    // kKNearestPublic, k occasionally larger than a shard's holdings
    q.kind = QueryKind::kKNearestPublic;
    q.k = std::uniform_int_distribution<uint64_t>(1, 9)(rng_);
    ExpectSameAnswer(q);

    // kRangePublic
    q.kind = QueryKind::kRangePublic;
    q.radius = std::uniform_real_distribution<double>(0.0, 0.15)(rng_);
    ExpectSameAnswer(q);

    // kNearestPrivate, sometimes excluding a live handle (the
    // continuous-query self-exclusion path)
    if (!handles_.empty()) {
      q.kind = QueryKind::kNearestPrivate;
      if (std::bernoulli_distribution(0.5)(rng_)) {
        q.has_exclude = true;
        q.exclude_handle = handles_[std::uniform_int_distribution<size_t>(
            0, handles_.size() - 1)(rng_)];
      }
      ExpectSameAnswer(q);
      q.has_exclude = false;
    }

    // kPublicNearest
    q.kind = QueryKind::kPublicNearest;
    q.point = Point{Coord(), Coord()};
    ExpectSameAnswer(q);

    // kPublicRange, every other window snapped to cell boundaries
    q.kind = QueryKind::kPublicRange;
    if (std::bernoulli_distribution(0.5)(rng_)) {
      const double x0 = BoundaryCoord(), y0 = BoundaryCoord();
      q.region = Rect(std::min(x0, 0.75), std::min(y0, 0.75),
                      std::min(x0, 0.75) + 0.25, std::min(y0, 0.75) + 0.25);
    } else {
      q.region = RandomCloak();
    }
    ExpectSameAnswer(q);

    // kDensity
    q.kind = QueryKind::kDensity;
    q.cols = std::uniform_int_distribution<int32_t>(1, 6)(rng_);
    q.rows = std::uniform_int_distribution<int32_t>(1, 6)(rng_);
    ExpectSameAnswer(q);
  }

  obs::MetricsRegistry registry_;
  std::mt19937_64 rng_;
  server::QueryServer reference_;
  std::unique_ptr<ShardRouter> router_;
  std::vector<uint64_t> handles_;
  uint64_t next_id_ = 0;
};

TEST_F(ShardInclusivenessTest, RandomizedWorkloadMatchesSingleServer) {
  // Seed public data on both sides.
  std::vector<processor::PublicTarget> targets;
  for (uint64_t i = 1; i <= 250; ++i) {
    targets.push_back({i, {Coord(), Coord()}});
  }
  router_->SetPublicTargets(targets);
  reference_.SetPublicTargets(targets);

  for (int round = 0; round < 6; ++round) {
    // Mutation batch: fresh upserts (half boundary-landing), replaces
    // that may move a region across shards, and removes.
    for (int i = 0; i < 12; ++i) {
      RegionUpsertMsg up;
      up.request_id = NextId();
      up.handle = 10000 + NextId();
      up.region = RandomRegion(/*on_boundary=*/i % 2 == 0);
      ApplyBoth(up);
    }
    for (int i = 0; i < 4 && !handles_.empty(); ++i) {
      const size_t pick = std::uniform_int_distribution<size_t>(
          0, handles_.size() - 1)(rng_);
      RegionUpsertMsg up;
      up.request_id = NextId();
      up.handle = 10000 + NextId();
      up.has_replaces = true;
      up.replaces = handles_[pick];
      up.region = RandomRegion(/*on_boundary=*/i % 2 == 0);
      handles_.erase(handles_.begin() + static_cast<ptrdiff_t>(pick));
      ApplyBoth(up);
    }
    for (int i = 0; i < 3 && !handles_.empty(); ++i) {
      RemoveBoth(handles_[std::uniform_int_distribution<size_t>(
          0, handles_.size() - 1)(rng_)]);
    }

    for (int i = 0; i < 8; ++i) QueryRound();
  }

  // Bulk snapshot reload keeps the equivalence.
  SnapshotMsg snapshot;
  for (uint64_t i = 0; i < 40; ++i) {
    snapshot.regions.push_back(
        {20000 + i, RandomRegion(/*on_boundary=*/i % 2 == 0)});
  }
  ASSERT_TRUE(router_->Load(snapshot).ok());
  ASSERT_TRUE(reference_.Load(snapshot).ok());
  handles_.clear();
  for (const auto& r : snapshot.regions) handles_.push_back(r.id);
  for (int i = 0; i < 8; ++i) QueryRound();
}

TEST_F(ShardInclusivenessTest, DegenerateAndEdgeQueriesAgree) {
  router_->SetPublicTargets({{1, {0.125, 0.5}},    // exactly on a cell seam
                             {2, {0.5, 0.5}},      // grid center
                             {3, {0.875, 0.125}}});
  reference_.SetPublicTargets({{1, {0.125, 0.5}},
                               {2, {0.5, 0.5}},
                               {3, {0.875, 0.125}}});
  RegionUpsertMsg up;
  up.request_id = NextId();
  up.handle = 1;
  up.region = Rect(0.375, 0.375, 0.625, 0.625);  // cell-aligned region
  ApplyBoth(up);

  // Degenerate (point) cloak exactly on the seam between shards.
  CloakedQueryMsg q;
  q.request_id = NextId();
  q.kind = QueryKind::kNearestPublic;
  q.cloak = Rect::FromPoint({0.5, 0.5});
  ExpectSameAnswer(q);

  q.kind = QueryKind::kKNearestPublic;
  q.k = 3;  // forces the fewer-than-k fallback on every shard
  ExpectSameAnswer(q);

  q.kind = QueryKind::kPublicRange;
  q.region = Rect(0.375, 0.375, 0.625, 0.625);
  ExpectSameAnswer(q);

  q.kind = QueryKind::kPublicNearest;
  q.point = Point{0.5, 0.5};
  ExpectSameAnswer(q);
}

}  // namespace
}  // namespace casper::sharding
