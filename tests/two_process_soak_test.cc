#include <gtest/gtest.h>

#include <signal.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/casper/casper.h"
#include "src/casper/workload.h"
#include "src/common/rng.h"
#include "src/common/stopwatch.h"
#include "src/transport/socket_channel.h"

/// The two-process churn soak (the ISSUE's final acceptance bar): a
/// real `casper_cli serve` process answers over a Unix-domain socket
/// while this process runs a CasperService whose tier channel is a
/// SocketChannel. Mid-run the server is SIGKILLed and respawned — a
/// genuine crash, not a polite shutdown — and the run must end with
/// the breaker recovered, exactly-once region state (one region per
/// user, checked through a density query), and zero inclusiveness
/// violations among the answers that succeeded.
///
/// Duration scales with CASPER_SOAK_SECONDS (default a few seconds for
/// developer runs; CI sets 60). The server binary comes from
/// CASPER_CLI_BIN or the build-time default baked in by CMake.

#ifndef CASPER_CLI_BIN_DEFAULT
#define CASPER_CLI_BIN_DEFAULT ""
#endif

extern char** environ;

namespace casper {
namespace {

constexpr size_t kUsers = 12;
constexpr size_t kServerTargets = 200;
constexpr uint64_t kTargetSeed = 7;

std::string CliBinary() {
  const char* env = std::getenv("CASPER_CLI_BIN");
  if (env != nullptr && env[0] != '\0') return env;
  return CASPER_CLI_BIN_DEFAULT;
}

double SoakSeconds() {
  const char* env = std::getenv("CASPER_SOAK_SECONDS");
  if (env != nullptr && env[0] != '\0') {
    const double parsed = std::atof(env);
    if (parsed > 0.0) return parsed;
  }
  return 4.0;
}

pid_t SpawnServer(const std::string& binary, const std::string& address) {
  const std::string targets = "--targets=" + std::to_string(kServerTargets);
  const std::string seed = "--targets-seed=" + std::to_string(kTargetSeed);
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>(binary.c_str()));
  argv.push_back(const_cast<char*>("serve"));
  argv.push_back(const_cast<char*>(address.c_str()));
  argv.push_back(const_cast<char*>(targets.c_str()));
  argv.push_back(const_cast<char*>(seed.c_str()));
  argv.push_back(const_cast<char*>("--idempotency-window=4096"));
  argv.push_back(nullptr);
  pid_t pid = -1;
  const int rc = posix_spawn(&pid, binary.c_str(), nullptr, nullptr,
                             argv.data(), environ);
  return rc == 0 ? pid : -1;
}

void KillServer(pid_t pid, int sig) {
  if (pid <= 0) return;
  kill(pid, sig);
  int status = 0;
  waitpid(pid, &status, 0);
}

uint64_t BruteNearest(const std::vector<processor::PublicTarget>& targets,
                      const Point& p) {
  uint64_t best_id = 0;
  double best_d2 = -1.0;
  for (const processor::PublicTarget& t : targets) {
    const double dx = t.position.x - p.x;
    const double dy = t.position.y - p.y;
    const double d2 = dx * dx + dy * dy;
    if (best_d2 < 0.0 || d2 < best_d2) {
      best_d2 = d2;
      best_id = t.id;
    }
  }
  return best_id;
}

bool ContainsId(const std::vector<processor::PublicTarget>& candidates,
                uint64_t id) {
  for (const processor::PublicTarget& t : candidates) {
    if (t.id == id) return true;
  }
  return false;
}

TEST(TwoProcessSoakTest, SurvivesServerKillNineWithExactlyOnceState) {
  const std::string binary = CliBinary();
  if (binary.empty() || access(binary.c_str(), X_OK) != 0) {
    GTEST_SKIP() << "casper_cli binary not found (set CASPER_CLI_BIN)";
  }
  const std::string path =
      "/tmp/casper_soak_" + std::to_string(getpid()) + ".sock";
  const std::string address = "unix:" + path;
  unlink(path.c_str());

  pid_t server = SpawnServer(binary, address);
  ASSERT_GT(server, 0) << "failed to spawn " << binary;
  struct ServerGuard {
    pid_t* pid;
    const std::string* path;
    ~ServerGuard() {
      KillServer(*pid, SIGKILL);
      unlink(path->c_str());
    }
  } guard{&server, &path};

  CasperOptions options;
  options.pyramid.height = 6;
  options.auto_sync_private_data = true;
  options.resilience.retry.max_attempts = 3;
  options.resilience.retry.initial_backoff_seconds = 0.002;
  options.resilience.retry.max_backoff_seconds = 0.02;
  options.resilience.retry.deadline_seconds = 1.0;
  options.resilience.breaker.failure_threshold = 5;
  options.resilience.breaker.open_seconds = 0.02;
  options.resilience.breaker.half_open_successes = 1;
  options.channel_decorator =
      [&address](transport::Channel*) -> std::unique_ptr<transport::Channel> {
    transport::SocketChannelOptions socket_options;
    socket_options.connect_timeout_seconds = 0.25;
    socket_options.io_timeout_seconds = 2.0;
    socket_options.backoff_initial_seconds = 0.002;
    socket_options.backoff_max_seconds = 0.05;
    return std::make_unique<transport::SocketChannel>(address,
                                                      socket_options);
  };
  CasperService service(options);
  const Rect space = service.options().pyramid.space;

  // The oracle: the serve process provisions UniformPublicTargets with
  // the same count/seed over the same default pyramid space, so this
  // local list is byte-for-byte what the remote server answers from.
  Rng oracle_rng(kTargetSeed);
  const std::vector<processor::PublicTarget> oracle =
      workload::UniformPublicTargets(kServerTargets, space, &oracle_rng);

  Rng rng(0x50AC);
  for (anonymizer::UserId uid = 0; uid < kUsers; ++uid) {
    anonymizer::PrivacyProfile profile;
    profile.k = static_cast<uint32_t>(rng.UniformInt(1, 3));
    // Registration publishes through the socket; if the server is not
    // accepting yet the upsert lands in the replay buffer — still OK.
    ASSERT_TRUE(service.RegisterUser(uid, profile, rng.PointIn(space)).ok());
  }

  // Readiness: the first successful query proves the serve process is
  // up, provisioned, and speaking framed sealed messages.
  bool ready = false;
  for (int i = 0; i < 600 && !ready; ++i) {
    ready = service.QueryNearestPublic(0).ok();
    if (!ready) std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  ASSERT_TRUE(ready) << "serve process never answered";

  const double soak_seconds = SoakSeconds();
  Stopwatch clock;
  size_t ok_count = 0;
  size_t typed_failures = 0;
  size_t inclusiveness_violations = 0;
  bool killed_once = false;
  size_t iteration = 0;
  while (clock.ElapsedSeconds() < soak_seconds) {
    ++iteration;
    if (!killed_once && clock.ElapsedSeconds() > soak_seconds / 2.0) {
      // The crash: no drain, no goodbye. The client must ride through
      // on reconnect backoff + breaker + replay buffer.
      killed_once = true;
      KillServer(server, SIGKILL);
      server = SpawnServer(binary, address);
      ASSERT_GT(server, 0) << "failed to respawn server";
    }

    const anonymizer::UserId uid = iteration % kUsers;
    if (iteration % 3 == 0) {
      ASSERT_TRUE(service.UpdateUserLocation(uid, rng.PointIn(space)).ok());
    }
    auto response = service.QueryNearestPublic(uid);
    if (!response.ok()) {
      EXPECT_TRUE(
          response.status().code() == StatusCode::kUnavailable ||
          response.status().code() == StatusCode::kDeadlineExceeded)
          << response.status().ToString();
      ++typed_failures;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      continue;
    }
    ++ok_count;
    const auto position = service.ClientPosition(uid);
    ASSERT_TRUE(position.ok());
    const uint64_t truth = BruteNearest(oracle, position.value());
    if (!ContainsId(response.value().server_answer.candidates, truth)) {
      ++inclusiveness_violations;
    }
  }
  ASSERT_TRUE(killed_once) << "soak too short to exercise the kill";
  EXPECT_EQ(inclusiveness_violations, 0u);
  EXPECT_GT(ok_count, 10u);

  // Recovery: the respawned server must start answering and the
  // breaker must re-close.
  bool recovered = false;
  for (int i = 0; i < 600 && !recovered; ++i) {
    recovered = service.QueryNearestPublic(0).ok() &&
                service.transport_client().breaker_state() ==
                    transport::BreakerState::kClosed;
    if (!recovered) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(recovered) << "client never recovered after kill -9";

  // The respawned server lost all region state; republish every user,
  // drain the replay buffer, and count regions through a density query
  // over the wire: exactly one per user — retried and replayed upserts
  // deduplicated by the idempotency window, stale rotation links
  // resolved by the retired-handle memory.
  for (anonymizer::UserId uid = 0; uid < kUsers; ++uid) {
    ASSERT_TRUE(service.UpdateUserLocation(uid, rng.PointIn(space)).ok());
  }
  ASSERT_TRUE(service.transport_client().Flush().ok());
  auto density = service.QueryDensity(4, 4);
  ASSERT_TRUE(density.ok()) << density.status().ToString();
  EXPECT_NEAR(density.value().Total(), static_cast<double>(kUsers), 1e-6)
      << "server region count diverged from the registered population";
}

}  // namespace
}  // namespace casper
