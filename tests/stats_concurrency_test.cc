#include "src/common/stats.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace casper {
namespace {

// Regression for the lazy-sort data race: Quantile() used to sort the
// mutable sample buffer without synchronization, so two concurrent
// readers (or a reader racing Add) scribbled over the same vector.
// Run under TSan (this file carries the `concurrency` ctest label) this
// fails on the pre-fix code and is clean on the mutexed rewrite.
TEST(SummaryStatsConcurrencyTest, ConcurrentReadersDuringWrites) {
  SummaryStats stats;
  for (int i = 0; i < 1000; ++i) stats.Add(static_cast<double>(i));

  constexpr int kReaders = 4;
  constexpr int kIterations = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kReaders + 1);

  // Writer keeps appending (unsorting the buffer) while readers force
  // re-sorts through Quantile and consume the other locked accessors.
  threads.emplace_back([&stats] {
    for (int i = 0; i < kIterations; ++i) {
      stats.Add(static_cast<double>(i % 97));
    }
  });
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&stats] {
      for (int i = 0; i < kIterations; ++i) {
        const double p50 = stats.Quantile(0.5);
        const double p99 = stats.Quantile(0.99);
        EXPECT_LE(p50, p99);
        EXPECT_LE(stats.min(), stats.max());
        EXPECT_GE(stats.count(), 1000u);
        (void)stats.mean();
        (void)stats.StdDev();
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(stats.count(), 1000u + kIterations);
  EXPECT_DOUBLE_EQ(stats.Quantile(1.0), 999.0);
}

TEST(SummaryStatsConcurrencyTest, ConcurrentMergesIntoOneAccumulator) {
  SummaryStats total;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&total, t] {
      SummaryStats local;
      for (int i = 0; i < kPerThread; ++i) {
        local.Add(static_cast<double>(t * kPerThread + i));
      }
      total.Merge(local);
    });
  }
  // A reader races the merges; every snapshot it sees must be coherent.
  std::thread reader([&total] {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LE(total.min(), total.max());
      (void)total.Quantile(0.5);
    }
  });
  for (auto& t : threads) t.join();
  reader.join();

  EXPECT_EQ(total.count(), static_cast<size_t>(kThreads * kPerThread));
  EXPECT_DOUBLE_EQ(total.min(), 0.0);
  EXPECT_DOUBLE_EQ(total.max(), kThreads * kPerThread - 1.0);
}

TEST(SummaryStatsConcurrencyTest, CopyWhileWriting) {
  SummaryStats stats;
  std::thread writer([&stats] {
    for (int i = 0; i < 2000; ++i) stats.Add(static_cast<double>(i));
  });
  for (int i = 0; i < 200; ++i) {
    SummaryStats snapshot = stats;  // Copy ctor locks the source.
    EXPECT_LE(snapshot.min(), snapshot.max());
    EXPECT_LE(snapshot.Quantile(0.5), snapshot.Quantile(1.0));
  }
  writer.join();
  EXPECT_EQ(stats.count(), 2000u);
}

}  // namespace
}  // namespace casper
