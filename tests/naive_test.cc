#include "src/processor/naive.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/processor/private_nn.h"

namespace casper::processor {
namespace {

TEST(NaiveTest, CenterNearestReturnsNNOfCenter) {
  PublicTargetStore store(std::vector<PublicTarget>{
      {0, {0.45, 0.45}}, {1, {0.9, 0.9}}});
  auto result = NaiveCenterNearest(store, Rect(0.4, 0.4, 0.6, 0.6));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->id, 0u);
}

TEST(NaiveTest, CenterNearestErrorPaths) {
  PublicTargetStore empty;
  EXPECT_EQ(NaiveCenterNearest(empty, Rect(0, 0, 1, 1)).status().code(),
            StatusCode::kNotFound);
  PublicTargetStore store(std::vector<PublicTarget>{{0, {0.5, 0.5}}});
  EXPECT_EQ(NaiveCenterNearest(store, Rect()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(NaiveTest, SendAllReturnsEverything) {
  Rng rng(1);
  std::vector<PublicTarget> targets;
  for (uint64_t i = 0; i < 123; ++i) {
    targets.push_back({i, rng.PointIn(Rect(0, 0, 1, 1))});
  }
  PublicTargetStore store(targets);
  EXPECT_EQ(NaiveSendAll(store).size(), 123u);
}

TEST(NaiveTest, CenterNNIsSometimesWrongButCasperNever) {
  // The Figure 4 comparison: for users away from the cloak center, the
  // center-NN baseline returns the wrong answer on some draws; the
  // candidate-list approach refined at the client never does.
  Rng rng(2);
  const Rect space(0, 0, 1, 1);
  std::vector<PublicTarget> targets;
  for (uint64_t i = 0; i < 500; ++i) {
    targets.push_back({i, rng.PointIn(space)});
  }
  PublicTargetStore store(targets);

  int center_wrong = 0;
  int casper_wrong = 0;
  int trials = 0;
  for (int t = 0; t < 100; ++t) {
    const Point c = rng.PointIn(Rect(0, 0, 0.8, 0.8));
    const Rect cloak(c.x, c.y, c.x + 0.2, c.y + 0.2);
    const Point user = rng.PointIn(cloak);

    uint64_t true_nn = 0;
    double best = 1e300;
    for (const auto& tg : targets) {
      const double d = SquaredDistance(user, tg.position);
      if (d < best) {
        best = d;
        true_nn = tg.id;
      }
    }

    auto naive = NaiveCenterNearest(store, cloak);
    ASSERT_TRUE(naive.ok());
    if (naive->id != true_nn) ++center_wrong;

    auto casper = PrivateNearestNeighbor(store, cloak);
    ASSERT_TRUE(casper.ok());
    auto refined = RefineNearest(casper->candidates, user);
    ASSERT_TRUE(refined.ok());
    if (refined->id != true_nn) ++casper_wrong;
    ++trials;
  }
  EXPECT_EQ(casper_wrong, 0);
  EXPECT_GT(center_wrong, 0) << "with " << trials << " trials";
}

}  // namespace
}  // namespace casper::processor
