#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <queue>
#include <set>
#include <sstream>
#include <string>
#include <vector>

/// Trust-boundary enforcement for the three-tier split: the database
/// server tier (src/server/) and the query processor (src/processor/)
/// run *outside* the trusted perimeter in the paper's architecture
/// (Figure 1) — they see only pseudonyms and cloaked regions, never
/// user identities. This test pins that property to the source tree:
/// no file under either directory may include the pseudonym registry
/// or name anonymizer::UserId, directly or through any chain of
/// project includes.
///
/// The source root is injected by the build as CASPER_SOURCE_DIR.

namespace {

namespace fs = std::filesystem;

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::vector<fs::path> SourcesUnder(const fs::path& dir) {
  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".h" || ext == ".cc") files.push_back(entry.path());
  }
  return files;
}

/// Project-relative paths named by `#include "src/..."` lines.
std::vector<std::string> ProjectIncludes(const std::string& content) {
  std::vector<std::string> includes;
  std::istringstream lines(content);
  std::string line;
  while (std::getline(lines, line)) {
    const size_t at = line.find("#include \"");
    if (at == std::string::npos) continue;
    const size_t start = at + 10;
    const size_t end = line.find('"', start);
    if (end == std::string::npos) continue;
    const std::string name = line.substr(start, end - start);
    if (name.rfind("src/", 0) == 0) includes.push_back(name);
  }
  return includes;
}

/// All project headers reachable from `roots` by following
/// `#include "src/..."` edges.
std::set<std::string> IncludeClosure(const fs::path& repo_root,
                                     const std::vector<fs::path>& roots) {
  std::set<std::string> visited;
  std::queue<std::string> frontier;
  for (const fs::path& root : roots) {
    for (const std::string& inc :
         ProjectIncludes(ReadFile(root))) {
      if (visited.insert(inc).second) frontier.push(inc);
    }
  }
  while (!frontier.empty()) {
    const std::string current = frontier.front();
    frontier.pop();
    const fs::path path = repo_root / current;
    if (!fs::exists(path)) continue;
    for (const std::string& inc : ProjectIncludes(ReadFile(path))) {
      if (visited.insert(inc).second) frontier.push(inc);
    }
  }
  return visited;
}

class TierBoundaryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    repo_root_ = fs::path(CASPER_SOURCE_DIR);
    ASSERT_TRUE(fs::exists(repo_root_ / "src" / "server"))
        << "source root not found: " << repo_root_;
    untrusted_ = SourcesUnder(repo_root_ / "src" / "server");
    for (const fs::path& p :
         SourcesUnder(repo_root_ / "src" / "processor")) {
      untrusted_.push_back(p);
    }
    ASSERT_FALSE(untrusted_.empty());
  }

  fs::path repo_root_;
  std::vector<fs::path> untrusted_;
};

TEST_F(TierBoundaryTest, NoDirectPseudonymOrUserIdReference) {
  for (const fs::path& file : untrusted_) {
    const std::string content = ReadFile(file);
    EXPECT_EQ(content.find("pseudonyms.h"), std::string::npos)
        << file << " includes the pseudonym registry";
    EXPECT_EQ(content.find("anonymizer::UserId"), std::string::npos)
        << file << " names anonymizer::UserId";
  }
}

TEST_F(TierBoundaryTest, IncludeClosureStaysOutsideTheTrustedPerimeter) {
  const std::set<std::string> closure = IncludeClosure(repo_root_, untrusted_);
  for (const std::string& header : closure) {
    EXPECT_EQ(header.find("anonymizer/"), std::string::npos)
        << "server/processor include closure reaches trusted-tier header "
        << header;
  }
}

TEST_F(TierBoundaryTest, ClosureIsNonTrivial) {
  // Sanity: the scan actually followed edges (messages.h, common/,
  // spatial/ are all legitimately reachable).
  const std::set<std::string> closure = IncludeClosure(repo_root_, untrusted_);
  EXPECT_GT(closure.size(), 5u);
  EXPECT_TRUE(closure.count("src/casper/messages.h") > 0)
      << "query server no longer speaks the wire-message protocol?";
}

}  // namespace
