#include "src/sharding/shard_endpoint.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/casper/casper.h"
#include "src/casper/workload.h"
#include "src/common/rng.h"
#include "src/obs/casper_metrics.h"
#include "src/obs/metrics.h"
#include "src/sharding/shard_router.h"

// The ShardEndpoint speaks the single-server wire contract, so an
// unmodified CasperService pointed at a shard fleet through
// CasperOptions::channel_decorator (the `casper_cli --shards=N` wiring)
// must produce the same answers as one talking to its own in-process
// server. These tests run the two facades side by side over identical
// inputs, plus check the byte-level contract of Handle() itself.

namespace casper {
namespace {

class ShardEndpointTest : public ::testing::Test {
 protected:
  ShardEndpointTest()
      : plain_metrics_(&plain_registry_), sharded_metrics_(&sharded_registry_) {
    sharding::ShardRouterOptions router_options;
    router_options.num_shards = 4;
    router_options.partition_level = 3;
    router_options.registry = &router_registry_;
    router_ = std::make_unique<sharding::ShardRouter>(router_options);
    endpoint_ = std::make_unique<sharding::ShardEndpoint>(router_.get());

    CasperOptions plain_options;
    plain_options.pyramid.height = 6;
    plain_options.metrics = &plain_metrics_;
    plain_ = std::make_unique<CasperService>(plain_options);

    CasperOptions sharded_options = plain_options;
    sharded_options.metrics = &sharded_metrics_;
    sharded_options.channel_decorator =
        [this](transport::Channel*) -> std::unique_ptr<transport::Channel> {
      return std::make_unique<sharding::ShardChannel>(endpoint_.get());
    };
    sharded_ = std::make_unique<CasperService>(sharded_options);

    Rng rng(42);
    const auto targets = workload::UniformPublicTargets(
        400, plain_options.pyramid.space, &rng);
    plain_->SetPublicTargets(targets);
    router_->SetPublicTargets(targets);
  }

  void RegisterBoth(uint64_t uid, const Point& position) {
    const anonymizer::PrivacyProfile profile{2, 0.0001};
    ASSERT_TRUE(plain_->RegisterUser(uid, profile, position).ok());
    ASSERT_TRUE(sharded_->RegisterUser(uid, profile, position).ok());
  }

  obs::MetricsRegistry plain_registry_;
  obs::MetricsRegistry sharded_registry_;
  obs::MetricsRegistry router_registry_;
  obs::CasperMetrics plain_metrics_;
  obs::CasperMetrics sharded_metrics_;
  std::unique_ptr<sharding::ShardRouter> router_;
  std::unique_ptr<sharding::ShardEndpoint> endpoint_;
  std::unique_ptr<CasperService> plain_;
  std::unique_ptr<CasperService> sharded_;
};

TEST_F(ShardEndpointTest, FacadeParityAcrossAllQueryKinds) {
  const std::vector<Point> positions = {
      {0.12, 0.34}, {0.48, 0.52}, {0.51, 0.49},  // straddle the center seam
      {0.87, 0.13}, {0.25, 0.75}, {0.66, 0.91},
  };
  for (size_t i = 0; i < positions.size(); ++i) {
    RegisterBoth(100 + i, positions[i]);
  }
  ASSERT_TRUE(plain_->SyncPrivateData().ok());
  ASSERT_TRUE(sharded_->SyncPrivateData().ok());

  for (size_t i = 0; i < positions.size(); ++i) {
    const uint64_t uid = 100 + i;

    auto plain_nn = plain_->QueryNearestPublic(uid);
    auto sharded_nn = sharded_->QueryNearestPublic(uid);
    ASSERT_TRUE(plain_nn.ok()) << plain_nn.status().ToString();
    ASSERT_TRUE(sharded_nn.ok()) << sharded_nn.status().ToString();
    EXPECT_FALSE(sharded_nn->degraded);
    EXPECT_EQ(plain_nn->exact.id, sharded_nn->exact.id);
    EXPECT_EQ(plain_nn->server_answer, sharded_nn->server_answer);

    auto plain_knn = plain_->QueryKNearestPublic(uid, 5);
    auto sharded_knn = sharded_->QueryKNearestPublic(uid, 5);
    ASSERT_TRUE(plain_knn.ok());
    ASSERT_TRUE(sharded_knn.ok());
    EXPECT_EQ(plain_knn->server_answer, sharded_knn->server_answer);
    ASSERT_EQ(plain_knn->exact.size(), sharded_knn->exact.size());
    for (size_t j = 0; j < plain_knn->exact.size(); ++j) {
      EXPECT_EQ(plain_knn->exact[j].id, sharded_knn->exact[j].id);
    }

    auto plain_range = plain_->QueryRangePublic(uid, 0.05);
    auto sharded_range = sharded_->QueryRangePublic(uid, 0.05);
    ASSERT_TRUE(plain_range.ok());
    ASSERT_TRUE(sharded_range.ok());
    EXPECT_EQ(plain_range->candidates, sharded_range->candidates);

    auto plain_buddy = plain_->QueryNearestPrivate(uid);
    auto sharded_buddy = sharded_->QueryNearestPrivate(uid);
    ASSERT_TRUE(plain_buddy.ok()) << plain_buddy.status().ToString();
    ASSERT_TRUE(sharded_buddy.ok()) << sharded_buddy.status().ToString();
    // Both services rotate pseudonyms from the same seed in the same
    // registration order, so even the stripped ids must agree.
    EXPECT_EQ(plain_buddy->best.id, sharded_buddy->best.id);
    EXPECT_EQ(plain_buddy->server_answer, sharded_buddy->server_answer);
  }

  auto plain_count = plain_->QueryPublicRange(Rect(0.1, 0.1, 0.9, 0.9));
  auto sharded_count = sharded_->QueryPublicRange(Rect(0.1, 0.1, 0.9, 0.9));
  ASSERT_TRUE(plain_count.ok());
  ASSERT_TRUE(sharded_count.ok());
  EXPECT_EQ(plain_count->certain, sharded_count->certain);
  EXPECT_EQ(plain_count->possible, sharded_count->possible);
  EXPECT_DOUBLE_EQ(plain_count->expected, sharded_count->expected);

  auto plain_density = plain_->QueryDensity(4, 4);
  auto sharded_density = sharded_->QueryDensity(4, 4);
  ASSERT_TRUE(plain_density.ok());
  ASSERT_TRUE(sharded_density.ok());
  for (int col = 0; col < 4; ++col) {
    for (int row = 0; row < 4; ++row) {
      EXPECT_DOUBLE_EQ(plain_density->At(col, row),
                       sharded_density->At(col, row))
          << "cell (" << col << ", " << row << ")";
    }
  }

  auto plain_pub_nn = plain_->QueryPublicNearest(Point{0.5, 0.5});
  auto sharded_pub_nn = sharded_->QueryPublicNearest(Point{0.5, 0.5});
  ASSERT_TRUE(plain_pub_nn.ok());
  ASSERT_TRUE(sharded_pub_nn.ok());
  EXPECT_EQ(*plain_pub_nn, *sharded_pub_nn);
}

TEST_F(ShardEndpointTest, MovesAndProfileChangesStayInSync) {
  RegisterBoth(1, Point{0.2, 0.2});
  RegisterBoth(2, Point{0.8, 0.8});
  RegisterBoth(3, Point{0.21, 0.19});

  // Drag user 1 across the center seam; the router turns the replacing
  // upsert into a cross-shard remove + insert the single server never
  // needs. Answers must stay identical either way.
  const std::vector<Point> path = {
      {0.45, 0.45}, {0.55, 0.55}, {0.52, 0.48}, {0.1, 0.9}};
  for (const Point& p : path) {
    ASSERT_TRUE(plain_->UpdateUserLocation(1, p).ok());
    ASSERT_TRUE(sharded_->UpdateUserLocation(1, p).ok());
    ASSERT_TRUE(plain_->SyncPrivateData().ok());
    ASSERT_TRUE(sharded_->SyncPrivateData().ok());

    auto plain_nn = plain_->QueryNearestPublic(1);
    auto sharded_nn = sharded_->QueryNearestPublic(1);
    ASSERT_TRUE(plain_nn.ok());
    ASSERT_TRUE(sharded_nn.ok());
    EXPECT_EQ(plain_nn->exact.id, sharded_nn->exact.id);
    EXPECT_EQ(plain_nn->server_answer, sharded_nn->server_answer);

    auto plain_buddy = plain_->QueryNearestPrivate(2);
    auto sharded_buddy = sharded_->QueryNearestPrivate(2);
    ASSERT_TRUE(plain_buddy.ok());
    ASSERT_TRUE(sharded_buddy.ok());
    EXPECT_EQ(plain_buddy->server_answer, sharded_buddy->server_answer);
  }

  ASSERT_TRUE(plain_->DeregisterUser(3).ok());
  ASSERT_TRUE(sharded_->DeregisterUser(3).ok());
  ASSERT_TRUE(plain_->SyncPrivateData().ok());
  ASSERT_TRUE(sharded_->SyncPrivateData().ok());
  auto plain_count = plain_->QueryPublicRange(Rect(0.0, 0.0, 1.0, 1.0));
  auto sharded_count = sharded_->QueryPublicRange(Rect(0.0, 0.0, 1.0, 1.0));
  ASSERT_TRUE(plain_count.ok());
  ASSERT_TRUE(sharded_count.ok());
  EXPECT_EQ(plain_count->possible, sharded_count->possible);
}

TEST_F(ShardEndpointTest, WireContractMatchesSingleServerEndpoint) {
  const transport::CallContext context;

  // Garbage frames come back as a DataLoss ack, never an error status.
  auto garbage = endpoint_->Handle("not a frame", context);
  ASSERT_TRUE(garbage.ok());
  auto garbage_ack = DecodeAck(garbage.value());
  ASSERT_TRUE(garbage_ack.ok());
  EXPECT_EQ(garbage_ack->code, StatusCode::kDataLoss);

  // Response messages sent as requests are rejected, not dispatched.
  auto reflected = endpoint_->Handle(Encode(AckMsg::For(9, Status())),
                                     context);
  ASSERT_TRUE(reflected.ok());
  auto reflected_ack = DecodeAck(reflected.value());
  ASSERT_TRUE(reflected_ack.ok());
  EXPECT_EQ(reflected_ack->code, StatusCode::kInvalidArgument);

  // Maintenance acks echo the idempotency key.
  RegionUpsertMsg upsert;
  upsert.request_id = 77;
  upsert.handle = 4242;
  upsert.region = Rect(0.4, 0.4, 0.6, 0.6);
  auto upsert_response = endpoint_->Handle(Encode(upsert), context);
  ASSERT_TRUE(upsert_response.ok());
  auto upsert_ack = DecodeAck(upsert_response.value());
  ASSERT_TRUE(upsert_ack.ok());
  EXPECT_EQ(upsert_ack->request_id, 77u);
  EXPECT_TRUE(upsert_ack->ok());
  EXPECT_EQ(router_->total_regions(), 1u);

  // Queries answered through Handle() are byte-identical to a direct
  // router call, modulo the merge timing.
  CloakedQueryMsg query;
  query.kind = QueryKind::kRangePublic;
  query.request_id = 31;
  query.cloak = Rect(0.3, 0.3, 0.7, 0.7);
  query.radius = 0.05;
  auto wire = endpoint_->Handle(Encode(query), context);
  ASSERT_TRUE(wire.ok());
  auto wire_answer = DecodeCandidateList(wire.value());
  ASSERT_TRUE(wire_answer.ok());
  auto direct_answer = router_->Execute(query);
  ASSERT_TRUE(direct_answer.ok());
  wire_answer->processor_seconds = 0.0;
  direct_answer->processor_seconds = 0.0;
  EXPECT_EQ(wire_answer->request_id, 31u);
  EXPECT_EQ(Encode(wire_answer.value()), Encode(direct_answer.value()));

  // Snapshots replace fleet state and always ack id 0.
  SnapshotMsg snapshot;
  snapshot.regions.push_back({7001, Rect(0.1, 0.1, 0.2, 0.2)});
  snapshot.regions.push_back({7002, Rect(0.8, 0.8, 0.9, 0.9)});
  auto snapshot_response = endpoint_->Handle(Encode(snapshot), context);
  ASSERT_TRUE(snapshot_response.ok());
  auto snapshot_ack = DecodeAck(snapshot_response.value());
  ASSERT_TRUE(snapshot_ack.ok());
  EXPECT_EQ(snapshot_ack->request_id, 0u);
  EXPECT_TRUE(snapshot_ack->ok());
  EXPECT_EQ(router_->total_regions(), 2u);

  RegionRemoveMsg remove;
  remove.request_id = 78;
  remove.handle = 7001;
  auto remove_response = endpoint_->Handle(Encode(remove), context);
  ASSERT_TRUE(remove_response.ok());
  auto remove_ack = DecodeAck(remove_response.value());
  ASSERT_TRUE(remove_ack.ok());
  EXPECT_EQ(remove_ack->request_id, 78u);
  EXPECT_TRUE(remove_ack->ok());
  EXPECT_EQ(router_->total_regions(), 1u);
}

}  // namespace
}  // namespace casper
