#include "src/transport/channel.h"

#include <gtest/gtest.h>

#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/casper/messages.h"
#include "src/common/rng.h"
#include "src/obs/casper_metrics.h"
#include "src/server/query_server.h"
#include "src/transport/fault_injection.h"
#include "src/transport/server_endpoint.h"

/// The transport seam below the resilience machinery: ServerEndpoint
/// dispatch + DirectChannel (every message kind round-trips, every
/// failure travels as a typed AckMsg), and FaultInjectingChannel (each
/// fault mode does exactly what it claims, deterministically per seed).

namespace casper::transport {
namespace {

CloakedQueryMsg NearestQuery(uint64_t request_id) {
  CloakedQueryMsg query;
  query.kind = QueryKind::kNearestPublic;
  query.request_id = request_id;
  query.cloak = Rect(0.2, 0.2, 0.5, 0.5);
  return query;
}

RegionUpsertMsg Upsert(uint64_t request_id, uint64_t handle) {
  RegionUpsertMsg msg;
  msg.request_id = request_id;
  msg.handle = handle;
  msg.region = Rect(0.1, 0.1, 0.3, 0.3);
  return msg;
}

class EndpointTest : public ::testing::Test {
 protected:
  EndpointTest()
      : metrics_(&registry_),
        server_(ServerOptions()),
        endpoint_(&server_),
        channel_(&endpoint_) {
    Rng rng(99);
    for (uint64_t id = 1; id <= 32; ++id) {
      server_.AddPublicTarget({id, rng.PointIn(Rect(0, 0, 1, 1))});
    }
  }

  server::QueryServerOptions ServerOptions() {
    server::QueryServerOptions options;
    options.metrics = &metrics_;
    return options;
  }

  obs::MetricsRegistry registry_;
  obs::CasperMetrics metrics_;
  server::QueryServer server_;
  ServerEndpoint endpoint_;
  DirectChannel channel_;
};

TEST_F(EndpointTest, QueryRoundTripsAndEchoesRequestId) {
  const CloakedQueryMsg query = NearestQuery(7);
  Result<std::string> bytes = channel_.Call(Encode(query), CallContext{});
  ASSERT_TRUE(bytes.ok());

  Result<CandidateListMsg> answer = DecodeCandidateList(bytes.value());
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->kind, QueryKind::kNearestPublic);
  EXPECT_EQ(answer->request_id, 7u);
  EXPECT_FALSE(answer->degraded);

  // Byte-for-byte the same answer the server gives when called directly.
  Result<CandidateListMsg> direct = server_.Execute(query);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(answer->payload, direct->payload);
}

TEST_F(EndpointTest, MaintenanceAcksEchoRequestId) {
  Result<std::string> bytes =
      channel_.Call(Encode(Upsert(11, 5)), CallContext{});
  ASSERT_TRUE(bytes.ok());
  Result<AckMsg> ack = DecodeAck(bytes.value());
  ASSERT_TRUE(ack.ok());
  EXPECT_TRUE(ack->ok());
  EXPECT_EQ(ack->request_id, 11u);
  EXPECT_EQ(server_.private_store().size(), 1u);

  RegionRemoveMsg remove;
  remove.request_id = 12;
  remove.handle = 5;
  bytes = channel_.Call(Encode(remove), CallContext{});
  ASSERT_TRUE(bytes.ok());
  ack = DecodeAck(bytes.value());
  ASSERT_TRUE(ack.ok());
  EXPECT_TRUE(ack->ok());
  EXPECT_EQ(ack->request_id, 12u);
  EXPECT_EQ(server_.private_store().size(), 0u);
}

TEST_F(EndpointTest, SnapshotAcksWithIdZero) {
  SnapshotMsg snapshot;
  snapshot.regions.push_back({42, Rect(0.1, 0.1, 0.2, 0.2)});
  Result<std::string> bytes =
      channel_.Call(Encode(snapshot), CallContext{});
  ASSERT_TRUE(bytes.ok());
  Result<AckMsg> ack = DecodeAck(bytes.value());
  ASSERT_TRUE(ack.ok());
  EXPECT_TRUE(ack->ok());
  EXPECT_EQ(ack->request_id, 0u);
  EXPECT_EQ(server_.private_store().size(), 1u);
}

TEST_F(EndpointTest, QueryErrorTravelsAsTypedAck) {
  CloakedQueryMsg bad;
  bad.kind = QueryKind::kDensity;
  bad.request_id = 9;
  bad.cols = 0;  // Invalid grid: the server rejects it.
  bad.rows = 0;
  Result<std::string> bytes = channel_.Call(Encode(bad), CallContext{});
  ASSERT_TRUE(bytes.ok());
  Result<AckMsg> ack = DecodeAck(bytes.value());
  ASSERT_TRUE(ack.ok());
  EXPECT_FALSE(ack->ok());
  EXPECT_EQ(ack->request_id, 9u);  // Still answers *this* request.
  EXPECT_FALSE(ack->ToStatus().IsRetryable());
}

TEST_F(EndpointTest, UndecodableRequestAcksDataLossWithIdZero) {
  for (const std::string request :
       {std::string("garbage"), Encode(NearestQuery(3)).substr(0, 5),
        std::string()}) {
    Result<std::string> bytes = channel_.Call(request, CallContext{});
    ASSERT_TRUE(bytes.ok());
    Result<AckMsg> ack = DecodeAck(bytes.value());
    ASSERT_TRUE(ack.ok());
    EXPECT_EQ(ack->request_id, 0u);  // It cannot know the id.
    EXPECT_EQ(ack->code, StatusCode::kDataLoss);
    EXPECT_TRUE(ack->ToStatus().IsRetryable());
  }
}

TEST_F(EndpointTest, ResponseMessagesSentAsRequestsAreRejected) {
  for (const std::string request :
       {Encode(AckMsg::For(1, Status::OK())), Encode(CandidateListMsg{})}) {
    Result<std::string> bytes = channel_.Call(request, CallContext{});
    ASSERT_TRUE(bytes.ok());
    Result<AckMsg> ack = DecodeAck(bytes.value());
    ASSERT_TRUE(ack.ok());
    EXPECT_EQ(ack->code, StatusCode::kInvalidArgument);
  }
}

// --- FaultInjectingChannel over a scripted inner channel -------------------

/// Records every delivered request and answers with a canned response.
class ScriptedChannel : public Channel {
 public:
  Result<std::string> Call(std::string_view request,
                           const CallContext&) override {
    std::lock_guard<std::mutex> lock(mu_);
    requests_.push_back(std::string(request));
    return response_;
  }

  size_t calls() const {
    std::lock_guard<std::mutex> lock(mu_);
    return requests_.size();
  }
  std::vector<std::string> requests() const {
    std::lock_guard<std::mutex> lock(mu_);
    return requests_;
  }
  void set_response(std::string response) {
    std::lock_guard<std::mutex> lock(mu_);
    response_ = std::move(response);
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::string> requests_;
  std::string response_ = "pong";
};

TEST(FaultInjectionTest, DropRequestNeverReachesTheServer) {
  ScriptedChannel inner;
  FaultProfile profile;
  profile.drop_request_rate = 1.0;
  FaultInjectingChannel channel(&inner, profile, 1);
  Result<std::string> result = channel.Call("ping", CallContext{});
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(inner.calls(), 0u);
  EXPECT_EQ(channel.stats().dropped_requests, 1u);
}

TEST(FaultInjectionTest, DropResponseLosesTheReplyAfterDelivery) {
  ScriptedChannel inner;
  FaultProfile profile;
  profile.drop_response_rate = 1.0;
  FaultInjectingChannel channel(&inner, profile, 2);
  Result<std::string> result = channel.Call("ping", CallContext{});
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(inner.calls(), 1u);  // The server *acted*.
  EXPECT_EQ(channel.stats().dropped_responses, 1u);
}

TEST(FaultInjectionTest, DuplicateDeliversTheRequestTwice) {
  ScriptedChannel inner;
  FaultProfile profile;
  profile.duplicate_rate = 1.0;
  FaultInjectingChannel channel(&inner, profile, 3);
  Result<std::string> result = channel.Call("ping", CallContext{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), "pong");
  EXPECT_EQ(inner.calls(), 2u);
  EXPECT_EQ(channel.stats().duplicated, 1u);
}

TEST(FaultInjectionTest, CorruptRequestFlipsOneByteButNeverTheTag) {
  const std::string request = Encode(NearestQuery(1));
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    ScriptedChannel inner;
    FaultProfile profile;
    profile.corrupt_request_rate = 1.0;
    FaultInjectingChannel channel(&inner, profile, seed);
    ASSERT_TRUE(channel.Call(request, CallContext{}).ok());
    ASSERT_EQ(inner.calls(), 1u);
    const std::string delivered = inner.requests()[0];
    ASSERT_EQ(delivered.size(), request.size());
    EXPECT_EQ(delivered[0], request[0]);  // Tag byte untouched.
    EXPECT_NE(delivered, request);        // The flip is never a no-op.
  }
}

TEST(FaultInjectionTest, CorruptResponseFlipsOneByteButNeverTheTag) {
  ScriptedChannel inner;
  inner.set_response("candidate-list-bytes");
  FaultProfile profile;
  profile.corrupt_response_rate = 1.0;
  FaultInjectingChannel channel(&inner, profile, 5);
  Result<std::string> result = channel.Call("ping", CallContext{});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().size(), std::string("candidate-list-bytes").size());
  EXPECT_EQ(result.value()[0], 'c');
  EXPECT_NE(result.value(), "candidate-list-bytes");
  EXPECT_EQ(channel.stats().corrupted_responses, 1u);
}

TEST(FaultInjectionTest, DelayedCallStillSucceeds) {
  ScriptedChannel inner;
  FaultProfile profile;
  profile.delay_rate = 1.0;
  profile.delay_micros = 500;
  FaultInjectingChannel channel(&inner, profile, 6);
  Result<std::string> result = channel.Call("ping", CallContext{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(channel.stats().delayed, 1u);
}

TEST(FaultInjectionTest, LateDeliveryDefersQueriesUntilTheNextCall) {
  ScriptedChannel inner;
  FaultProfile profile;
  profile.late_delivery_rate = 1.0;
  FaultInjectingChannel channel(&inner, profile, 7);

  // A query is deferred: the caller sees a failure, the server nothing.
  const std::string query = Encode(NearestQuery(1));
  Result<std::string> first = channel.Call(query, CallContext{});
  EXPECT_EQ(first.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(inner.calls(), 0u);
  EXPECT_EQ(channel.stats().late_deliveries, 1u);

  // The next call flushes the deferred query first, then delivers its
  // own request. Maintenance messages are never deferred (a mutation
  // flushed from a query thread would race the read-only fan-out).
  const std::string upsert = Encode(Upsert(2, 5));
  Result<std::string> second = channel.Call(upsert, CallContext{});
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(inner.calls(), 2u);
  EXPECT_EQ(inner.requests()[0], query);
  EXPECT_EQ(inner.requests()[1], upsert);
  EXPECT_EQ(channel.stats().late_deliveries, 1u);
}

TEST(FaultInjectionTest, ScriptedWindowFailsExactlyThoseCalls) {
  ScriptedChannel inner;
  FaultInjectingChannel channel(&inner, FaultProfile{}, 8);
  channel.FailRequests(2, 3);
  EXPECT_TRUE(channel.Call("a", CallContext{}).ok());
  EXPECT_EQ(channel.Call("b", CallContext{}).status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(channel.Call("c", CallContext{}).status().code(),
            StatusCode::kUnavailable);
  EXPECT_TRUE(channel.Call("d", CallContext{}).ok());
  EXPECT_EQ(channel.stats().scripted_failures, 2u);
  EXPECT_EQ(channel.calls(), 4u);
}

TEST(FaultInjectionTest, BlackoutFailsUntilTheWindowPasses) {
  ScriptedChannel inner;
  FaultInjectingChannel channel(&inner, FaultProfile{}, 9);
  channel.BlackoutForMillis(30);
  EXPECT_EQ(channel.Call("a", CallContext{}).status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(channel.stats().blackout_failures, 1u);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_TRUE(channel.Call("b", CallContext{}).ok());
}

TEST(FaultInjectionTest, SameSeedSameFaults) {
  FaultProfile profile;
  profile.drop_request_rate = 0.3;
  profile.drop_response_rate = 0.2;
  profile.corrupt_response_rate = 0.2;
  profile.duplicate_rate = 0.2;

  const std::string request = Encode(NearestQuery(1));
  std::vector<bool> outcomes[2];
  FaultStats stats[2];
  for (int run = 0; run < 2; ++run) {
    ScriptedChannel inner;
    FaultInjectingChannel channel(&inner, profile, 0xD5EED);
    for (int i = 0; i < 200; ++i) {
      outcomes[run].push_back(channel.Call(request, CallContext{}).ok());
    }
    stats[run] = channel.stats();
  }
  EXPECT_EQ(outcomes[0], outcomes[1]);
  EXPECT_EQ(stats[0].dropped_requests, stats[1].dropped_requests);
  EXPECT_EQ(stats[0].dropped_responses, stats[1].dropped_responses);
  EXPECT_EQ(stats[0].corrupted_responses, stats[1].corrupted_responses);
  EXPECT_EQ(stats[0].duplicated, stats[1].duplicated);
  EXPECT_GT(stats[0].TotalInjected(), 0u);
}

TEST(FaultInjectionTest, SetProfileEndsTheChaos) {
  ScriptedChannel inner;
  FaultProfile profile;
  profile.drop_request_rate = 1.0;
  FaultInjectingChannel channel(&inner, profile, 10);
  EXPECT_FALSE(channel.Call("a", CallContext{}).ok());
  channel.SetProfile(FaultProfile{});
  EXPECT_TRUE(channel.Call("b", CallContext{}).ok());
}

}  // namespace
}  // namespace casper::transport
