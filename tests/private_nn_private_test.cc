#include "src/processor/private_nn_private.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/rng.h"

namespace casper::processor {
namespace {

std::vector<PrivateTarget> RandomRegions(size_t n, Rng* rng,
                                         const Rect& space,
                                         double max_extent) {
  std::vector<PrivateTarget> targets;
  for (uint64_t i = 0; i < n; ++i) {
    const Point c = rng->PointIn(space);
    targets.push_back(
        {i, Rect(c.x, c.y, std::min(c.x + rng->Uniform(0, max_extent), 1.0),
                 std::min(c.y + rng->Uniform(0, max_extent), 1.0))});
  }
  return targets;
}

TEST(PrivateNNPrivateTest, BasicQuery) {
  Rng rng(1);
  auto targets = RandomRegions(100, &rng, Rect(0, 0, 1, 1), 0.1);
  PrivateTargetStore store(targets);
  auto result =
      PrivateNearestNeighborOverPrivate(store, Rect(0.4, 0.4, 0.6, 0.6));
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->size(), 0u);
  EXPECT_TRUE(result->area.a_ext.Contains(Rect(0.4, 0.4, 0.6, 0.6)));
}

TEST(PrivateNNPrivateTest, ErrorPaths) {
  PrivateTargetStore empty_store;
  EXPECT_EQ(PrivateNearestNeighborOverPrivate(empty_store, Rect(0, 0, 1, 1))
                .status()
                .code(),
            StatusCode::kNotFound);
  PrivateTargetStore store;
  store.Insert({0, Rect(0.4, 0.4, 0.5, 0.5)});
  EXPECT_EQ(PrivateNearestNeighborOverPrivate(store, Rect()).status().code(),
            StatusCode::kInvalidArgument);
  PrivateNNOptions bad;
  bad.min_overlap_fraction = 1.5;
  EXPECT_EQ(PrivateNearestNeighborOverPrivate(store, Rect(0, 0, 1, 1), bad)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

/// Inclusiveness (Theorem 3) sweep: whatever the true position of each
/// target inside its region and of the user inside the cloak, the
/// user's true nearest target must appear in the candidate list.
struct Params {
  size_t targets;
  double region_extent;
  double cloak_size;
  FilterPolicy policy;
  uint64_t seed;
};

class RegionInclusivenessTest : public ::testing::TestWithParam<Params> {};

TEST_P(RegionInclusivenessTest, TrueNearestAlwaysReturned) {
  const Params params = GetParam();
  Rng rng(params.seed);
  const Rect space(0, 0, 1, 1);
  auto targets = RandomRegions(params.targets, &rng, space,
                               params.region_extent);
  PrivateTargetStore store(targets);

  PrivateNNOptions options;
  options.policy = params.policy;

  for (int trial = 0; trial < 25; ++trial) {
    const double s = params.cloak_size;
    const Point c = rng.PointIn(Rect(0, 0, 1 - s, 1 - s));
    const Rect cloak(c.x, c.y, c.x + s, c.y + s);
    auto result = PrivateNearestNeighborOverPrivate(store, cloak, options);
    ASSERT_TRUE(result.ok());
    std::vector<uint64_t> ids;
    for (const auto& t : result->candidates) ids.push_back(t.id);
    std::sort(ids.begin(), ids.end());

    // Sample true target positions within their regions and true user
    // positions within the cloak; the realized NN must be a candidate.
    for (int realization = 0; realization < 10; ++realization) {
      std::vector<Point> actual(targets.size());
      for (size_t i = 0; i < targets.size(); ++i) {
        actual[i] = rng.PointIn(targets[i].region);
      }
      const Point user = rng.PointIn(cloak);
      uint64_t true_nn = 0;
      double best = 1e300;
      for (size_t i = 0; i < actual.size(); ++i) {
        const double d = SquaredDistance(user, actual[i]);
        if (d < best) {
          best = d;
          true_nn = targets[i].id;
        }
      }
      EXPECT_TRUE(std::binary_search(ids.begin(), ids.end(), true_nn))
          << "policy=" << static_cast<int>(params.policy) << " trial="
          << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RegionInclusivenessTest,
    ::testing::Values(Params{50, 0.1, 0.2, FilterPolicy::kOneFilter, 1},
                      Params{50, 0.1, 0.2, FilterPolicy::kTwoFilters, 1},
                      Params{50, 0.1, 0.2, FilterPolicy::kFourFilters, 1},
                      Params{200, 0.05, 0.1, FilterPolicy::kFourFilters, 2},
                      Params{200, 0.3, 0.1, FilterPolicy::kFourFilters, 3},
                      Params{20, 0.4, 0.5, FilterPolicy::kFourFilters, 4},
                      Params{500, 0.02, 0.05, FilterPolicy::kTwoFilters, 5},
                      Params{500, 0.02, 0.05, FilterPolicy::kOneFilter, 6}));

TEST(PrivateNNPrivateTest, OverlapThresholdShrinksList) {
  Rng rng(11);
  auto targets = RandomRegions(300, &rng, Rect(0, 0, 1, 1), 0.2);
  PrivateTargetStore store(targets);
  const Rect cloak(0.4, 0.4, 0.6, 0.6);
  PrivateNNOptions loose;
  PrivateNNOptions strict;
  strict.min_overlap_fraction = 0.8;
  auto a = PrivateNearestNeighborOverPrivate(store, cloak, loose);
  auto b = PrivateNearestNeighborOverPrivate(store, cloak, strict);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LE(b->size(), a->size());
}

TEST(PrivateNNPrivateTest, RefineNearestRegionMetrics) {
  std::vector<PrivateTarget> candidates = {
      {0, Rect(0.0, 0.0, 0.1, 0.1)},   // Far but tiny.
      {1, Rect(0.3, 0.3, 1.4, 1.4)}};  // Overlaps the user but sprawls.
  const Point user{0.5, 0.5};
  // Optimistic metric: candidate 1 contains the user (MinDist 0).
  auto opt = RefineNearestRegion(candidates, user, RefineMetric::kMinDist);
  ASSERT_TRUE(opt.ok());
  EXPECT_EQ(opt->id, 1u);
  // Minimax metric: candidate 0's far corner is closer than 1's.
  auto pes = RefineNearestRegion(candidates, user, RefineMetric::kMaxDist);
  ASSERT_TRUE(pes.ok());
  EXPECT_EQ(pes->id, 0u);
  EXPECT_EQ(RefineNearestRegion({}, user).status().code(),
            StatusCode::kNotFound);
}

TEST(PrivateNNPrivateTest, FourFiltersNeverWorseThanOne) {
  Rng rng(13);
  auto targets = RandomRegions(400, &rng, Rect(0, 0, 1, 1), 0.05);
  PrivateTargetStore store(targets);
  for (int trial = 0; trial < 40; ++trial) {
    const Point c = rng.PointIn(Rect(0.1, 0.1, 0.7, 0.7));
    const Rect cloak(c.x, c.y, c.x + 0.2, c.y + 0.2);
    PrivateNNOptions one;
    one.policy = FilterPolicy::kOneFilter;
    PrivateNNOptions four;
    four.policy = FilterPolicy::kFourFilters;
    auto a = PrivateNearestNeighborOverPrivate(store, cloak, one);
    auto b = PrivateNearestNeighborOverPrivate(store, cloak, four);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_LE(b->area.a_ext.Area(), a->area.a_ext.Area() + 1e-12);
  }
}

}  // namespace
}  // namespace casper::processor
