#include <gtest/gtest.h>

#include "src/anonymizer/adaptive_anonymizer.h"
#include "src/anonymizer/basic_anonymizer.h"
#include "src/casper/transmission.h"
#include "src/casper/workload.h"
#include "src/common/rng.h"
#include "src/common/stopwatch.h"
#include "src/processor/private_nn.h"

/// Regression tests pinning the *qualitative* claims of the paper's
/// evaluation (§6) at test-sized workloads, so a refactor that silently
/// destroys a headline result fails CI rather than only showing up in
/// bench output. Each test mirrors one figure's punchline.

namespace casper {
namespace {

using anonymizer::AdaptiveAnonymizer;
using anonymizer::BasicAnonymizer;
using anonymizer::PyramidConfig;
using anonymizer::UserId;

/// Uniform random population applied identically to both anonymizers.
template <typename Anon>
void Populate(Anon* anon, size_t users, uint32_t k_min, uint32_t k_max,
              uint64_t seed) {
  Rng rng(seed);
  for (UserId uid = 0; uid < users; ++uid) {
    anonymizer::PrivacyProfile profile;
    profile.k = static_cast<uint32_t>(rng.UniformInt(k_min, k_max));
    ASSERT_TRUE(
        anon->RegisterUser(uid, profile, rng.PointIn(anon->config().space))
            .ok());
  }
}

template <typename Anon>
double UpdateCost(Anon* anon, size_t users, int rounds, uint64_t seed) {
  Rng rng(seed);
  anon->ResetStats();
  for (int round = 0; round < rounds; ++round) {
    for (UserId uid = 0; uid < users; ++uid) {
      const Point p{rng.Uniform(0, 1), rng.Uniform(0, 1)};
      EXPECT_TRUE(anon->UpdateLocation(uid, p).ok());
    }
  }
  return anon->stats().UpdatesPerLocationUpdate();
}

TEST(PaperTrendsTest, Fig10bAdaptiveUpdateCostPlateausWithHeight) {
  // Basic pays ~2 more counter updates per extra level; adaptive
  // plateaus once the profiles stop using deeper levels.
  const size_t users = 2000;
  double basic_low = 0, basic_high = 0, adaptive_low = 0, adaptive_high = 0;
  for (int height : {5, 9}) {
    PyramidConfig config;
    config.height = height;
    BasicAnonymizer basic(config);
    AdaptiveAnonymizer adaptive(config);
    Populate(&basic, users, 10, 50, 7);
    Populate(&adaptive, users, 10, 50, 7);
    const double b = UpdateCost(&basic, users, 2, 9);
    const double a = UpdateCost(&adaptive, users, 2, 9);
    if (height == 5) {
      basic_low = b;
      adaptive_low = a;
    } else {
      basic_high = b;
      adaptive_high = a;
    }
  }
  // Basic grows steeply with height; adaptive grows much less.
  EXPECT_GT(basic_high - basic_low, 2.0);
  EXPECT_LT(adaptive_high - adaptive_low, basic_high - basic_low);
  // At height 9 the adaptive structure is clearly cheaper.
  EXPECT_LT(adaptive_high, basic_high * 0.8);
}

TEST(PaperTrendsTest, Fig12bStricterProfilesCheapenAdaptiveOnly) {
  const size_t users = 2000;
  PyramidConfig config;
  config.height = 8;
  double basic_relaxed, basic_strict, adaptive_relaxed, adaptive_strict;
  {
    BasicAnonymizer basic(config);
    AdaptiveAnonymizer adaptive(config);
    Populate(&basic, users, 1, 10, 11);
    Populate(&adaptive, users, 1, 10, 11);
    basic_relaxed = UpdateCost(&basic, users, 2, 13);
    adaptive_relaxed = UpdateCost(&adaptive, users, 2, 13);
  }
  {
    BasicAnonymizer basic(config);
    AdaptiveAnonymizer adaptive(config);
    Populate(&basic, users, 150, 200, 11);
    Populate(&adaptive, users, 150, 200, 11);
    basic_strict = UpdateCost(&basic, users, 2, 13);
    adaptive_strict = UpdateCost(&adaptive, users, 2, 13);
  }
  // The complete pyramid is profile-independent...
  EXPECT_NEAR(basic_relaxed, basic_strict, basic_relaxed * 0.05);
  // ...while the incomplete pyramid gets much cheaper under strictness.
  EXPECT_LT(adaptive_strict, adaptive_relaxed * 0.5);
}

TEST(PaperTrendsTest, Fig13FourFiltersShrinkCandidates) {
  Rng rng(17);
  PyramidConfig config;
  config.height = 8;
  processor::PublicTargetStore store(
      workload::UniformPublicTargets(3000, config.space, &rng));
  double one = 0, four = 0;
  for (int i = 0; i < 200; ++i) {
    const Rect cloak = workload::RandomCellAlignedRegion(config, 16, 16,
                                                         &rng);
    auto a = processor::PrivateNearestNeighbor(
        store, cloak, processor::FilterPolicy::kOneFilter);
    auto b = processor::PrivateNearestNeighbor(
        store, cloak, processor::FilterPolicy::kFourFilters);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    one += static_cast<double>(a->size());
    four += static_cast<double>(b->size());
  }
  EXPECT_LT(four, one * 0.8);  // Clearly smaller, as in Fig 13a.
}

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define CASPER_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define CASPER_SANITIZED 1
#endif
#endif

TEST(PaperTrendsTest, Fig17TransmissionDominatesAtStrictPrivacy) {
  // For strict privacy the candidate list is large enough that the
  // modeled channel dwarfs the server's processing time.
#ifdef CASPER_SANITIZED
  GTEST_SKIP() << "wall-clock trend not meaningful under sanitizers";
#endif
  Rng rng(19);
  PyramidConfig config;
  config.height = 8;
  AdaptiveAnonymizer anon(config);
  Populate(&anon, 3000, 150, 200, 21);
  processor::PublicTargetStore store(
      workload::UniformPublicTargets(3000, config.space, &rng));
  TransmissionModel channel;

  double processor_us = 0.0, transmission_us = 0.0;
  Rng pick(23);
  for (int i = 0; i < 100; ++i) {
    const UserId uid = pick.UniformInt(0, 2999);
    auto cloak = anon.Cloak(uid);
    ASSERT_TRUE(cloak.ok());
    Stopwatch watch;
    auto answer = processor::PrivateNearestNeighbor(store, cloak->region);
    processor_us += watch.ElapsedMicros();
    ASSERT_TRUE(answer.ok());
    transmission_us += channel.SecondsFor(answer->size()) * 1e6;
  }
  EXPECT_GT(transmission_us, processor_us * 3.0);
}

TEST(PaperTrendsTest, Fig11aBasicCloakingImprovesWithPopulation) {
  // More users => profiles satisfied at deeper levels => fewer
  // recursive steps for the basic anonymizer.
  PyramidConfig config;
  config.height = 9;
  double levels_small = 0, levels_large = 0;
  for (size_t users : {500u, 8000u}) {
    BasicAnonymizer anon(config);
    Populate(&anon, users, 10, 50, 29);
    Rng pick(31);
    double total_levels = 0;
    for (int i = 0; i < 300; ++i) {
      auto cloak = anon.Cloak(pick.UniformInt(0, users - 1));
      ASSERT_TRUE(cloak.ok());
      total_levels += cloak->levels_visited;
    }
    (users == 500u ? levels_small : levels_large) = total_levels;
  }
  EXPECT_LT(levels_large, levels_small);
}

}  // namespace
}  // namespace casper
