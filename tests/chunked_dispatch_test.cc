#include "src/common/chunked_dispatch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/common/thread_pool.h"

namespace casper {
namespace {

TEST(ChunkedDispatchTest, EmptyRangeIsANoop) {
  ThreadPool pool(2);
  std::atomic<size_t> calls{0};
  auto stats = ParallelForChunked(
      pool, 0, [&calls](size_t, size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0u);
  EXPECT_EQ(stats.chunks, 0u);
  EXPECT_FALSE(stats.inline_fallback);
}

/// Chunks partition [0, n): every index visited exactly once, by
/// disjoint contiguous ranges, for assorted n / thread / chunk shapes.
TEST(ChunkedDispatchTest, ChunksCoverRangeExactlyOnce) {
  for (size_t threads : {1u, 2u, 4u, 7u}) {
    ThreadPool pool(threads);
    for (size_t n : {1u, 2u, 63u, 64u, 65u, 1000u}) {
      for (size_t chunk : {0u, 1u, 3u, 64u, 1000u}) {
        std::vector<std::atomic<int>> visits(n);
        for (auto& v : visits) v.store(0);
        auto stats = ParallelForChunked(
            pool, n,
            [&visits, n](size_t begin, size_t end) {
              ASSERT_LT(begin, end);
              ASSERT_LE(end, n);
              for (size_t i = begin; i < end; ++i) {
                visits[i].fetch_add(1, std::memory_order_relaxed);
              }
            },
            chunk);
        for (size_t i = 0; i < n; ++i) {
          EXPECT_EQ(visits[i].load(), 1)
              << "i=" << i << " n=" << n << " threads=" << threads
              << " chunk=" << chunk;
        }
        EXPECT_GE(stats.chunks, 1u);
      }
    }
  }
}

/// The caller may read results written by the chunks without any extra
/// synchronization (completion happens-after every body call) — the
/// request-order contract of the batch engine.
TEST(ChunkedDispatchTest, ResultsVisibleToCallerWithoutLocks) {
  ThreadPool pool(4);
  const size_t n = 2048;
  std::vector<size_t> out(n, 0);  // Plain memory, no atomics.
  ParallelForChunked(pool, n, [&out](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) out[i] = i * i;
  });
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(out[i], i * i);
}

/// A straggler chunk pins one worker; the others must steal the rest of
/// its span instead of idling (single-chunk queues make stealing the
/// only way anything else runs while the sleeper holds its worker).
TEST(ChunkedDispatchTest, StealingRescuesAStragglersSpan) {
  ThreadPool pool(4);
  const size_t n = 64;
  std::atomic<size_t> done{0};
  std::atomic<bool> release{false};
  auto stats = ParallelForChunked(
      pool, n,
      [&done, &release](size_t begin, size_t) {
        if (begin == 0) {
          // First chunk stalls until almost everything else finished —
          // someone must have stolen through worker 0's deque.
          while (done.load(std::memory_order_acquire) < 60 &&
                 !release.load(std::memory_order_acquire)) {
            std::this_thread::yield();
          }
        }
        done.fetch_add(1, std::memory_order_acq_rel);
      },
      /*chunk_size=*/1);
  release.store(true);
  EXPECT_EQ(done.load(), n);
  EXPECT_EQ(stats.chunks, n);
  EXPECT_GT(stats.steals, 0u);
}

/// Concurrent stress under TSan: many dispatches, bodies touching
/// shared counters and disjoint slots.
TEST(ChunkedDispatchTest, RepeatedDispatchStress) {
  ThreadPool pool(4);
  std::atomic<size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    const size_t n = 100 + static_cast<size_t>(round);
    std::vector<int> slots(n, -1);
    ParallelForChunked(
        pool, n,
        [&total, &slots](size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) {
            slots[i] = static_cast<int>(i);
            total.fetch_add(1, std::memory_order_relaxed);
          }
        },
        /*chunk_size=*/round % 2 == 0 ? 0 : 7);
    for (size_t i = 0; i < n; ++i) ASSERT_EQ(slots[i], static_cast<int>(i));
  }
  EXPECT_EQ(total.load(), 50u * 100u + (49u * 50u) / 2u);
}

/// When the pool refuses every role task, the range still completes
/// inline on the caller.
TEST(ChunkedDispatchTest, InlineFallbackWhenPoolRejects) {
  auto pool = std::make_unique<ThreadPool>(2);
  pool->Shutdown();
  std::atomic<size_t> calls{0};
  auto stats = ParallelForChunked(
      *pool, 10,
      [&calls](size_t begin, size_t end) {
        calls.fetch_add(end - begin, std::memory_order_relaxed);
      },
      3);
  EXPECT_TRUE(stats.inline_fallback);
  EXPECT_EQ(calls.load(), 10u);
}

}  // namespace
}  // namespace casper
