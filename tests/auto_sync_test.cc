#include <gtest/gtest.h>

#include "src/casper/casper.h"
#include "src/casper/workload.h"
#include "src/common/rng.h"

/// Auto-sync mode: the anonymizer pushes a fresh cloaked region to the
/// server on every user event, so private-data queries never need an
/// explicit SyncPrivateData().

namespace casper {
namespace {

CasperOptions AutoSyncOptions() {
  CasperOptions options;
  options.pyramid.height = 6;
  options.auto_sync_private_data = true;
  return options;
}

TEST(AutoSyncTest, QueriesWorkWithoutExplicitSync) {
  CasperService service(AutoSyncOptions());
  Rng rng(1);
  const Rect space = service.options().pyramid.space;
  for (anonymizer::UserId uid = 0; uid < 50; ++uid) {
    ASSERT_TRUE(service.RegisterUser(uid, {3, 0.0}, rng.PointIn(space)).ok());
  }
  // No SyncPrivateData() call anywhere.
  auto count = service.QueryPublicRange(space);
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(count->possible, 50u);
  EXPECT_NEAR(count->expected, 50.0, 1e-9);

  auto buddy = service.QueryNearestPrivate(7);
  ASSERT_TRUE(buddy.ok());
  auto resolved = service.ResolvePseudonym(buddy->best.id);
  ASSERT_TRUE(resolved.ok());
  EXPECT_NE(*resolved, 7u);
}

TEST(AutoSyncTest, StoreTracksMovementAndDeregistration) {
  CasperService service(AutoSyncOptions());
  Rng rng(2);
  const Rect space = service.options().pyramid.space;
  for (anonymizer::UserId uid = 0; uid < 30; ++uid) {
    ASSERT_TRUE(service.RegisterUser(uid, {2, 0.0}, rng.PointIn(space)).ok());
  }
  EXPECT_EQ(service.private_store().size(), 30u);

  // Movement keeps the region in sync with a fresh cloak of that user.
  ASSERT_TRUE(service.UpdateUserLocation(5, {0.9, 0.9}).ok());
  auto cloak = service.anonymizer().Cloak(5);
  ASSERT_TRUE(cloak.ok());
  auto density = service.QueryDensity(2, 2);
  ASSERT_TRUE(density.ok());
  EXPECT_NEAR(density->Total(), 30.0, 1e-9);

  // Deregistration removes the stored region immediately.
  ASSERT_TRUE(service.DeregisterUser(5).ok());
  EXPECT_EQ(service.private_store().size(), 29u);
  auto count = service.QueryPublicRange(space);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->possible, 29u);
}

TEST(AutoSyncTest, PseudonymsRotateOnEveryEvent) {
  CasperService service(AutoSyncOptions());
  ASSERT_TRUE(service.RegisterUser(1, {1, 0.0}, {0.5, 0.5}).ok());
  ASSERT_TRUE(service.RegisterUser(2, {1, 0.0}, {0.6, 0.5}).ok());

  // Capture the server-visible id of user 2 via a buddy query from 1.
  auto before = service.QueryNearestPrivate(1);
  ASSERT_TRUE(before.ok());
  const anonymizer::Pseudonym p_before = before->best.id;

  // User 2 moves: her pseudonym rotates; the old one stops resolving.
  ASSERT_TRUE(service.UpdateUserLocation(2, {0.7, 0.5}).ok());
  auto after = service.QueryNearestPrivate(1);
  ASSERT_TRUE(after.ok());
  EXPECT_NE(after->best.id, p_before);
  EXPECT_EQ(service.ResolvePseudonym(p_before).status().code(),
            StatusCode::kNotFound);
  auto resolved = service.ResolvePseudonym(after->best.id);
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(*resolved, 2u);
}

TEST(AutoSyncTest, MatchesBatchSyncSemantics) {
  // After identical histories, an auto-sync service and a batch service
  // that syncs at the end hold identical *region sets* (pseudonyms
  // differ — they are supposed to).
  CasperOptions batch_options;
  batch_options.pyramid.height = 6;
  CasperService auto_service(AutoSyncOptions());
  CasperService batch_service(batch_options);

  Rng rng(3);
  const Rect space(0, 0, 1, 1);
  std::vector<Point> pos;
  for (anonymizer::UserId uid = 0; uid < 40; ++uid) {
    pos.push_back(rng.PointIn(space));
    ASSERT_TRUE(auto_service.RegisterUser(uid, {4, 0.0}, pos.back()).ok());
    ASSERT_TRUE(batch_service.RegisterUser(uid, {4, 0.0}, pos.back()).ok());
  }
  // Note: auto-sync regions were minted during registration (population
  // growing), so refresh them to the final population by touching every
  // user once, mirroring what the batch sync sees.
  for (anonymizer::UserId uid = 0; uid < 40; ++uid) {
    ASSERT_TRUE(auto_service.UpdateUserLocation(uid, pos[uid]).ok());
  }
  ASSERT_TRUE(batch_service.SyncPrivateData().ok());

  auto a = auto_service.QueryPublicRange(Rect(0.2, 0.2, 0.8, 0.7));
  auto b = batch_service.QueryPublicRange(Rect(0.2, 0.2, 0.8, 0.7));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->certain, b->certain);
  EXPECT_EQ(a->possible, b->possible);
  EXPECT_NEAR(a->expected, b->expected, 1e-9);
}

TEST(AutoSyncTest, ExplicitSyncStillWorks) {
  CasperService service(AutoSyncOptions());
  Rng rng(4);
  for (anonymizer::UserId uid = 0; uid < 20; ++uid) {
    ASSERT_TRUE(service
                    .RegisterUser(uid, {2, 0.0},
                                  rng.PointIn(Rect(0, 0, 1, 1)))
                    .ok());
  }
  // A full re-sync (refreshing every region at once) remains available.
  ASSERT_TRUE(service.SyncPrivateData().ok());
  EXPECT_EQ(service.private_store().size(), 20u);
  auto count = service.QueryPublicRange(Rect(0, 0, 1, 1));
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->possible, 20u);
}

}  // namespace
}  // namespace casper
