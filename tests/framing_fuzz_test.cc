#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "src/casper/messages.h"
#include "src/common/rng.h"
#include "src/transport/framing.h"

/// Adversarial fuzz of the socket frame decoder (the first thing
/// untrusted network bytes meet): every split point of a valid stream
/// must reassemble byte-identically; every framing violation — bad
/// magic, zero or oversized length (rejected from the 8-byte header,
/// before any allocation), garbage between frames, truncation — must
/// poison the stream with a typed kDataLoss; and no single-byte mutant
/// of a framed message may ever decode successfully (the sealed-payload
/// checksum backs the frame layer). Zero accepted mutants is the bar.

namespace casper {
namespace {

using transport::EncodeFrame;
using transport::FrameDecoder;
using transport::kFrameHeaderBytes;
using transport::kFrameMagic;

std::string SamplePayload(uint64_t request_id) {
  CloakedQueryMsg msg;
  msg.kind = QueryKind::kKNearestPublic;
  msg.request_id = request_id;
  msg.cloak = Rect(0.25, 0.25, 0.5, 0.5);
  msg.k = 3;
  return Encode(msg);
}

/// Pop every complete frame currently buffered; fails the test on a
/// decoder error.
std::vector<std::string> PopAll(FrameDecoder* decoder) {
  std::vector<std::string> out;
  for (;;) {
    auto next = decoder->Next();
    EXPECT_TRUE(next.ok()) << next.status().ToString();
    if (!next.ok() || !next->has_value()) return out;
    out.push_back(**next);
  }
}

TEST(FramingFuzzTest, SplitAtEveryOffsetReassembles) {
  const std::string payload = SamplePayload(7);
  const std::string frame = EncodeFrame(payload);
  for (size_t split = 0; split <= frame.size(); ++split) {
    FrameDecoder decoder;
    decoder.Append(std::string_view(frame).substr(0, split));
    if (split < frame.size()) {
      auto early = decoder.Next();
      ASSERT_TRUE(early.ok()) << "split " << split;
      EXPECT_FALSE(early->has_value()) << "split " << split;
      decoder.Append(std::string_view(frame).substr(split));
    }
    auto full = decoder.Next();
    ASSERT_TRUE(full.ok()) << "split " << split;
    ASSERT_TRUE(full->has_value()) << "split " << split;
    EXPECT_EQ(**full, payload) << "split " << split;
    EXPECT_EQ(decoder.buffered(), 0u);
  }
}

TEST(FramingFuzzTest, CoalescedFramesAllPop) {
  std::string stream;
  std::vector<std::string> payloads;
  for (uint64_t i = 1; i <= 32; ++i) {
    payloads.push_back(SamplePayload(i));
    stream += EncodeFrame(payloads.back());
  }
  FrameDecoder decoder;
  decoder.Append(stream);
  const std::vector<std::string> popped = PopAll(&decoder);
  ASSERT_EQ(popped.size(), payloads.size());
  for (size_t i = 0; i < popped.size(); ++i) {
    EXPECT_EQ(popped[i], payloads[i]) << "frame " << i;
    EXPECT_TRUE(DecodeCloakedQuery(popped[i]).ok());
  }
}

TEST(FramingFuzzTest, RandomChunkingNeverLosesOrReordersFrames) {
  std::string stream;
  std::vector<std::string> payloads;
  for (uint64_t i = 1; i <= 64; ++i) {
    payloads.push_back(SamplePayload(i * 31));
    stream += EncodeFrame(payloads.back());
  }
  Rng rng(0xF8A3E);
  for (int round = 0; round < 50; ++round) {
    FrameDecoder decoder;
    std::vector<std::string> popped;
    size_t at = 0;
    while (at < stream.size()) {
      const size_t n = static_cast<size_t>(
          rng.UniformInt(1, 1 + rng.UniformInt(1, 97)));
      const size_t take = std::min(n, stream.size() - at);
      decoder.Append(std::string_view(stream).substr(at, take));
      at += take;
      for (const std::string& p : PopAll(&decoder)) popped.push_back(p);
    }
    ASSERT_EQ(popped, payloads) << "round " << round;
  }
}

TEST(FramingFuzzTest, TruncatedTailWaitsWithoutPoisoning) {
  const std::string payload = SamplePayload(9);
  const std::string frame = EncodeFrame(payload);
  FrameDecoder decoder;
  decoder.Append(std::string_view(frame).substr(0, frame.size() - 1));
  auto waiting = decoder.Next();
  ASSERT_TRUE(waiting.ok());
  EXPECT_FALSE(waiting->has_value());
  EXPECT_TRUE(decoder.mid_frame());
  EXPECT_FALSE(decoder.poisoned());
  decoder.Append(std::string_view(frame).substr(frame.size() - 1));
  auto done = decoder.Next();
  ASSERT_TRUE(done.ok());
  ASSERT_TRUE(done->has_value());
  EXPECT_EQ(**done, payload);
}

TEST(FramingFuzzTest, OversizedLengthRejectedFromHeaderBeforeBuffering) {
  // A header declaring a 1 GiB body against a 4 KiB bound must fail
  // from the 8 header bytes alone — no body is ever buffered.
  FrameDecoder decoder(/*max_frame_bytes=*/4096);
  std::string header(kFrameHeaderBytes, '\0');
  const uint32_t magic = kFrameMagic;
  const uint32_t huge = 1u << 30;
  std::memcpy(header.data(), &magic, 4);
  std::memcpy(header.data() + 4, &huge, 4);
  decoder.Append(header);
  auto rejected = decoder.Next();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kDataLoss);
  EXPECT_TRUE(decoder.poisoned());
  EXPECT_LT(decoder.buffered(), 64u) << "body bytes must not be buffered";

  // Zero-length frames are equally outside the protocol.
  FrameDecoder zero_decoder;
  std::string zero(kFrameHeaderBytes, '\0');
  std::memcpy(zero.data(), &magic, 4);
  zero_decoder.Append(zero);
  auto zero_rejected = zero_decoder.Next();
  ASSERT_FALSE(zero_rejected.ok());
  EXPECT_EQ(zero_rejected.status().code(), StatusCode::kDataLoss);
}

TEST(FramingFuzzTest, BadMagicPoisonsTheStream) {
  FrameDecoder decoder;
  std::string garbage = EncodeFrame(SamplePayload(3));
  garbage[1] ^= 0x40;
  decoder.Append(garbage);
  auto rejected = decoder.Next();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kDataLoss);
  EXPECT_TRUE(decoder.poisoned());
  // Once lost, sync never silently returns — even for valid bytes.
  decoder.Append(EncodeFrame(SamplePayload(4)));
  auto still = decoder.Next();
  ASSERT_FALSE(still.ok());
  EXPECT_EQ(still.status().code(), StatusCode::kDataLoss);
}

TEST(FramingFuzzTest, GarbageBetweenFramesIsDetected) {
  const std::string payload = SamplePayload(11);
  FrameDecoder decoder;
  decoder.Append(EncodeFrame(payload));
  decoder.Append("not a frame header");
  decoder.Append(EncodeFrame(SamplePayload(12)));
  auto first = decoder.Next();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->has_value());
  EXPECT_EQ(**first, payload);
  auto second = decoder.Next();
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kDataLoss);
}

TEST(FramingFuzzTest, SingleByteMutantsNeverDecode) {
  const std::string payload = SamplePayload(42);
  const std::string frame = EncodeFrame(payload);
  Rng rng(0xBADF00D);
  size_t accepted_mutants = 0;
  size_t popped_mutants = 0;
  const size_t rounds = 2000;
  for (size_t round = 0; round < rounds; ++round) {
    std::string mutant = frame;
    const size_t at = static_cast<size_t>(
        rng.UniformInt(0, mutant.size() - 1));
    const char flip = static_cast<char>(rng.UniformInt(1, 255));
    mutant[at] = static_cast<char>(mutant[at] ^ flip);

    FrameDecoder decoder(/*max_frame_bytes=*/1u << 20);
    decoder.Append(mutant);
    auto next = decoder.Next();
    // A mutant stream may (a) fail framing, (b) stall waiting for bytes
    // that never come, or (c) pop a payload — which must then fail the
    // sealed-message decode. It must never yield a *valid* message.
    if (!next.ok() || !next->has_value()) continue;
    ++popped_mutants;
    if (**next == payload) {
      // Identical payload from a mutated stream would mean a header
      // byte did not matter — every header byte matters.
      ++accepted_mutants;
      continue;
    }
    if (DecodeCloakedQuery(**next).ok()) ++accepted_mutants;
  }
  EXPECT_EQ(accepted_mutants, 0u);
  EXPECT_GT(popped_mutants, 0u)
      << "the corpus should include payload-only mutations";
}

}  // namespace
}  // namespace casper
