#include "src/network/moving_objects.h"

#include <gtest/gtest.h>

#include "src/network/network_generator.h"

namespace casper::network {
namespace {

RoadNetwork TestNetwork(uint64_t seed = 1) {
  NetworkGeneratorOptions opt;
  opt.rows = 10;
  opt.cols = 10;
  auto net = NetworkGenerator(opt).Generate(seed);
  EXPECT_TRUE(net.ok());
  return std::move(net).value();
}

TEST(MovingObjectsTest, EveryObjectReportsEveryTick) {
  RoadNetwork net = TestNetwork();
  SimulatorOptions opt;
  opt.object_count = 50;
  MovingObjectSimulator sim(&net, opt, 42);
  EXPECT_EQ(sim.object_count(), 50u);

  const auto updates = sim.Tick();
  ASSERT_EQ(updates.size(), 50u);
  for (size_t i = 0; i < updates.size(); ++i) {
    EXPECT_EQ(updates[i].uid, i);
    EXPECT_EQ(updates[i].tick, 1u);
  }
  EXPECT_EQ(sim.current_tick(), 1u);
}

TEST(MovingObjectsTest, PositionsStayWithinNetworkBounds) {
  RoadNetwork net = TestNetwork(2);
  const Rect bounds = net.bounds();
  SimulatorOptions opt;
  opt.object_count = 30;
  opt.tick_seconds = 0.5;
  MovingObjectSimulator sim(&net, opt, 7);
  for (int t = 0; t < 50; ++t) {
    for (const auto& u : sim.Tick()) {
      EXPECT_TRUE(bounds.Contains(u.position))
          << u.position.x << "," << u.position.y;
    }
  }
}

TEST(MovingObjectsTest, ObjectsActuallyMove) {
  RoadNetwork net = TestNetwork(3);
  SimulatorOptions opt;
  opt.object_count = 20;
  opt.tick_seconds = 0.05;
  MovingObjectSimulator sim(&net, opt, 9);
  std::vector<Point> before;
  for (size_t i = 0; i < 20; ++i) before.push_back(sim.PositionOf(i));
  sim.Tick();
  int moved = 0;
  for (size_t i = 0; i < 20; ++i) {
    if (!(sim.PositionOf(i) == before[i])) ++moved;
  }
  EXPECT_GT(moved, 15);  // Nearly everyone moves every tick.
}

TEST(MovingObjectsTest, MovementSpeedIsBounded) {
  RoadNetwork net = TestNetwork(4);
  SimulatorOptions opt;
  opt.object_count = 25;
  opt.tick_seconds = 0.01;
  opt.max_speed_factor = 1.5;
  MovingObjectSimulator sim(&net, opt, 11);
  const double max_step =
      SpeedOf(RoadClass::kHighway) * opt.max_speed_factor * opt.tick_seconds;
  std::vector<Point> prev;
  for (size_t i = 0; i < 25; ++i) prev.push_back(sim.PositionOf(i));
  for (int t = 0; t < 30; ++t) {
    sim.Tick();
    for (size_t i = 0; i < 25; ++i) {
      const Point now = sim.PositionOf(i);
      // Straight-line displacement can't exceed path distance traveled.
      EXPECT_LE(Distance(prev[i], now), max_step + 1e-9);
      prev[i] = now;
    }
  }
}

TEST(MovingObjectsTest, DeterministicForSeed) {
  RoadNetwork net = TestNetwork(5);
  SimulatorOptions opt;
  opt.object_count = 10;
  MovingObjectSimulator a(&net, opt, 123);
  MovingObjectSimulator b(&net, opt, 123);
  for (int t = 0; t < 20; ++t) {
    const auto ua = a.Tick();
    const auto ub = b.Tick();
    ASSERT_EQ(ua.size(), ub.size());
    for (size_t i = 0; i < ua.size(); ++i) {
      EXPECT_EQ(ua[i].position, ub[i].position);
    }
  }
}

TEST(MovingObjectsTest, LongTickCrossesManyEdgesSafely) {
  RoadNetwork net = TestNetwork(6);
  SimulatorOptions opt;
  opt.object_count = 5;
  opt.tick_seconds = 100.0;  // Far longer than any single route.
  MovingObjectSimulator sim(&net, opt, 13);
  const Rect bounds = net.bounds();
  for (int t = 0; t < 5; ++t) {
    for (const auto& u : sim.Tick()) {
      EXPECT_TRUE(bounds.Contains(u.position));
    }
  }
}

// Regression: a network whose every edge is zero-length (distinct nodes
// stacked on one point) used to spin Tick() forever — consuming an edge
// never advanced the remaining distance. The bounded-iteration guard
// must park such objects and count the fallback instead of hanging.
TEST(MovingObjectsTest, AllZeroLengthEdgesTerminateAndCountFallbacks) {
  RoadNetwork net;
  const Point spot{0.5, 0.5};
  const NodeId a = net.AddNode(spot);
  const NodeId b = net.AddNode(spot);
  const NodeId c = net.AddNode(spot);
  ASSERT_TRUE(net.AddEdge(a, b, RoadClass::kLocal).ok());
  ASSERT_TRUE(net.AddEdge(b, c, RoadClass::kLocal).ok());
  ASSERT_TRUE(net.AddEdge(a, c, RoadClass::kLocal).ok());
  ASSERT_TRUE(net.IsConnected());

  SimulatorOptions opt;
  opt.object_count = 8;
  MovingObjectSimulator sim(&net, opt, 17);
  for (int t = 0; t < 3; ++t) {
    const auto updates = sim.Tick();  // Pre-fix: never returns.
    ASSERT_EQ(updates.size(), 8u);
    for (const auto& u : updates) {
      EXPECT_EQ(u.position, spot);
    }
  }
  EXPECT_GT(sim.stats().zero_progress_fallbacks, 0u);
}

// A single degenerate edge spliced into an otherwise healthy grid must
// not stall the simulation: objects keep making progress and the
// fallback counter stays bounded by the objects actually trapped.
TEST(MovingObjectsTest, MixedZeroLengthEdgesStillProgress) {
  RoadNetwork net = TestNetwork(8);
  // Stack a twin on top of node 0 and wire a zero-length edge to it.
  const NodeId twin = net.AddNode(net.node(0).position);
  ASSERT_TRUE(net.AddEdge(0, twin, RoadClass::kLocal).ok());

  SimulatorOptions opt;
  opt.object_count = 30;
  opt.tick_seconds = 0.05;
  MovingObjectSimulator sim(&net, opt, 19);
  std::vector<Point> before;
  for (size_t i = 0; i < 30; ++i) before.push_back(sim.PositionOf(i));
  for (int t = 0; t < 10; ++t) sim.Tick();
  int moved = 0;
  for (size_t i = 0; i < 30; ++i) {
    if (!(sim.PositionOf(i) == before[i])) ++moved;
  }
  EXPECT_GT(moved, 20);  // The degenerate edge traps at most a few.
}

TEST(MovingObjectsTest, TickSecondsCanChangeBetweenTicks) {
  RoadNetwork net = TestNetwork(9);
  SimulatorOptions opt;
  opt.object_count = 10;
  opt.tick_seconds = 0.01;
  opt.max_speed_factor = 1.5;
  MovingObjectSimulator sim(&net, opt, 23);
  sim.Tick();

  sim.set_tick_seconds(0.002);
  EXPECT_DOUBLE_EQ(sim.tick_seconds(), 0.002);
  const double max_step =
      SpeedOf(RoadClass::kHighway) * opt.max_speed_factor * 0.002;
  std::vector<Point> prev;
  for (size_t i = 0; i < 10; ++i) prev.push_back(sim.PositionOf(i));
  sim.Tick();
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_LE(Distance(prev[i], sim.PositionOf(i)), max_step + 1e-9);
  }
}

}  // namespace
}  // namespace casper::network
