#include "src/common/geometry.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace casper {
namespace {

TEST(PointTest, Distance) {
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(SquaredDistance({0, 0}, {3, 4}), 25.0);
  EXPECT_DOUBLE_EQ(Distance({1, 1}, {1, 1}), 0.0);
}

TEST(RectTest, EmptyByDefault) {
  Rect r;
  EXPECT_TRUE(r.is_empty());
  EXPECT_DOUBLE_EQ(r.Area(), 0.0);
  EXPECT_FALSE(r.Contains(Point{0, 0}));
}

TEST(RectTest, AreaWidthHeight) {
  Rect r(0, 0, 4, 2);
  EXPECT_FALSE(r.is_empty());
  EXPECT_DOUBLE_EQ(r.width(), 4.0);
  EXPECT_DOUBLE_EQ(r.height(), 2.0);
  EXPECT_DOUBLE_EQ(r.Area(), 8.0);
  EXPECT_DOUBLE_EQ(r.Margin(), 6.0);
}

TEST(RectTest, DegeneratePointRect) {
  Rect r = Rect::FromPoint({2, 3});
  EXPECT_FALSE(r.is_empty());
  EXPECT_DOUBLE_EQ(r.Area(), 0.0);
  EXPECT_TRUE(r.Contains(Point{2, 3}));
  EXPECT_FALSE(r.Contains(Point{2, 3.001}));
}

TEST(RectTest, ContainsPointClosedBoundaries) {
  Rect r(0, 0, 1, 1);
  EXPECT_TRUE(r.Contains(Point{0, 0}));
  EXPECT_TRUE(r.Contains(Point{1, 1}));
  EXPECT_TRUE(r.Contains(Point{0.5, 0.5}));
  EXPECT_FALSE(r.Contains(Point{1.0001, 0.5}));
  EXPECT_FALSE(r.Contains(Point{-0.0001, 0.5}));
}

TEST(RectTest, ContainsRect) {
  Rect outer(0, 0, 10, 10);
  EXPECT_TRUE(outer.Contains(Rect(1, 1, 2, 2)));
  EXPECT_TRUE(outer.Contains(outer));
  EXPECT_FALSE(outer.Contains(Rect(5, 5, 11, 6)));
  // Empty rect is contained everywhere.
  EXPECT_TRUE(outer.Contains(Rect()));
  EXPECT_FALSE(Rect().Contains(outer));
}

TEST(RectTest, Intersects) {
  Rect a(0, 0, 2, 2);
  EXPECT_TRUE(a.Intersects(Rect(1, 1, 3, 3)));
  EXPECT_TRUE(a.Intersects(Rect(2, 0, 4, 2)));  // Touching edge counts.
  EXPECT_FALSE(a.Intersects(Rect(2.001, 0, 4, 2)));
  EXPECT_FALSE(a.Intersects(Rect()));
  EXPECT_FALSE(Rect().Intersects(a));
}

TEST(RectTest, IntersectionArea) {
  Rect a(0, 0, 2, 2);
  EXPECT_DOUBLE_EQ(a.IntersectionArea(Rect(1, 1, 3, 3)), 1.0);
  EXPECT_DOUBLE_EQ(a.IntersectionArea(Rect(5, 5, 6, 6)), 0.0);
  EXPECT_DOUBLE_EQ(a.IntersectionArea(a), 4.0);
  EXPECT_DOUBLE_EQ(a.IntersectionArea(Rect(2, 0, 4, 2)), 0.0);  // Edge touch.
}

TEST(RectTest, UnionBehavesAsIdentityOnEmpty) {
  Rect a(0, 0, 1, 1);
  EXPECT_EQ(a.Union(Rect()), a);
  EXPECT_EQ(Rect().Union(a), a);
  EXPECT_EQ(a.Union(Rect(2, 2, 3, 3)), Rect(0, 0, 3, 3));
}

TEST(RectTest, ExpandedPerSide) {
  Rect r(1, 1, 2, 2);
  const Rect e = r.ExpandedPerSide(0.1, 0.2, 0.3, 0.4);
  EXPECT_DOUBLE_EQ(e.min.x, 0.9);
  EXPECT_DOUBLE_EQ(e.min.y, 0.8);
  EXPECT_DOUBLE_EQ(e.max.x, 2.3);
  EXPECT_DOUBLE_EQ(e.max.y, 2.4);
}

TEST(RectTest, CornersOrder) {
  Rect r(0, 0, 1, 2);
  const auto c = r.Corners();
  EXPECT_EQ(c[0], (Point{0, 0}));
  EXPECT_EQ(c[1], (Point{1, 0}));
  EXPECT_EQ(c[2], (Point{1, 2}));
  EXPECT_EQ(c[3], (Point{0, 2}));
}

TEST(RectTest, Center) {
  EXPECT_EQ(Rect(0, 0, 2, 4).Center(), (Point{1, 2}));
}

TEST(MinMaxDistTest, PointInsideRect) {
  Rect r(0, 0, 2, 2);
  EXPECT_DOUBLE_EQ(MinDist({1, 1}, r), 0.0);
  EXPECT_DOUBLE_EQ(MaxDist({1, 1}, r), Distance({1, 1}, {0, 0}));
}

TEST(MinMaxDistTest, PointOutsideRect) {
  Rect r(0, 0, 1, 1);
  EXPECT_DOUBLE_EQ(MinDist({3, 0.5}, r), 2.0);
  EXPECT_DOUBLE_EQ(MaxDist({3, 0.5}, r), Distance({3, 0.5}, {0, 0}));
  EXPECT_DOUBLE_EQ(MinDist({2, 2}, r), Distance({2, 2}, {1, 1}));
}

TEST(MinMaxDistTest, DegenerateRectEqualsPointDistance) {
  Rect r = Rect::FromPoint({1, 1});
  EXPECT_DOUBLE_EQ(MinDist({4, 5}, r), 5.0);
  EXPECT_DOUBLE_EQ(MaxDist({4, 5}, r), 5.0);
}

TEST(FurthestCornerTest, PicksOppositeCorner) {
  Rect r(0, 0, 1, 1);
  EXPECT_EQ(FurthestCorner({-1, -1}, r), (Point{1, 1}));
  EXPECT_EQ(FurthestCorner({2, -1}, r), (Point{0, 1}));
  EXPECT_EQ(FurthestCorner({2, 2}, r), (Point{0, 0}));
}

TEST(FurthestCornerTest, MatchesMaxDist) {
  Rng rng(7);
  const Rect space(0, 0, 10, 10);
  for (int i = 0; i < 200; ++i) {
    const Point a = rng.PointIn(space);
    const Point b = rng.PointIn(space);
    const Rect r(std::min(a.x, b.x), std::min(a.y, b.y), std::max(a.x, b.x),
                 std::max(a.y, b.y));
    const Point q = rng.PointIn(space);
    EXPECT_NEAR(Distance(q, FurthestCorner(q, r)), MaxDist(q, r), 1e-12);
  }
}

TEST(BisectorTest, VerticalBisectorCrossesHorizontalEdge) {
  // s and t symmetric about x = 1; edge along y = 0 from x=0..2.
  Point out;
  ASSERT_TRUE(BisectorEdgeIntersection({0, 1}, {2, 1},
                                       Segment{{0, 0}, {2, 0}}, &out));
  EXPECT_NEAR(out.x, 1.0, 1e-12);
  EXPECT_NEAR(out.y, 0.0, 1e-12);
}

TEST(BisectorTest, EquidistanceProperty) {
  Rng rng(11);
  const Rect space(0, 0, 1, 1);
  int found = 0;
  for (int i = 0; i < 500; ++i) {
    const Point s = rng.PointIn(space);
    const Point t = rng.PointIn(space);
    const Segment edge{rng.PointIn(space), rng.PointIn(space)};
    Point m;
    if (BisectorEdgeIntersection(s, t, edge, &m)) {
      ++found;
      EXPECT_NEAR(Distance(m, s), Distance(m, t), 1e-9);
      // m must lie on the edge segment.
      EXPECT_GE(m.x, std::min(edge.a.x, edge.b.x) - 1e-9);
      EXPECT_LE(m.x, std::max(edge.a.x, edge.b.x) + 1e-9);
    }
  }
  EXPECT_GT(found, 0);  // The sweep must exercise the positive branch.
}

TEST(BisectorTest, IdenticalPointsHaveNoBisector) {
  Point out;
  EXPECT_FALSE(BisectorEdgeIntersection({1, 1}, {1, 1},
                                        Segment{{0, 0}, {2, 0}}, &out));
}

TEST(BisectorTest, MissesEdgeOutsideSegment) {
  // Bisector is x = 5; edge spans x = 0..1.
  Point out;
  EXPECT_FALSE(BisectorEdgeIntersection({4, 0}, {6, 0},
                                        Segment{{0, 1}, {1, 1}}, &out));
}

TEST(ClampToRectTest, Clamps) {
  Rect r(0, 0, 1, 1);
  EXPECT_EQ(ClampToRect({2, -1}, r), (Point{1, 0}));
  EXPECT_EQ(ClampToRect({0.5, 0.5}, r), (Point{0.5, 0.5}));
}

TEST(SegmentTest, MidpointAndLength) {
  Segment s{{0, 0}, {2, 0}};
  EXPECT_EQ(s.Midpoint(), (Point{1, 0}));
  EXPECT_DOUBLE_EQ(s.Length(), 2.0);
}

}  // namespace
}  // namespace casper
