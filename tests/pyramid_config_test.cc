#include "src/anonymizer/pyramid_config.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace casper::anonymizer {
namespace {

TEST(PyramidConfigTest, CellAreaHalvesTwicePerLevel) {
  PyramidConfig config;
  config.space = Rect(0, 0, 2, 2);
  EXPECT_DOUBLE_EQ(config.CellArea(0), 4.0);
  EXPECT_DOUBLE_EQ(config.CellArea(1), 1.0);
  EXPECT_DOUBLE_EQ(config.CellArea(2), 0.25);
}

TEST(PyramidConfigTest, CellRectTiling) {
  PyramidConfig config;
  config.space = Rect(0, 0, 1, 1);
  EXPECT_EQ(config.CellRect(CellId::Root()), config.space);
  EXPECT_EQ(config.CellRect(CellId{1, 0, 0}), Rect(0, 0, 0.5, 0.5));
  EXPECT_EQ(config.CellRect(CellId{1, 1, 1}), Rect(0.5, 0.5, 1, 1));
  EXPECT_EQ(config.CellRect(CellId{2, 3, 0}), Rect(0.75, 0, 1, 0.25));
}

TEST(PyramidConfigTest, CellAtInverseOfCellRect) {
  PyramidConfig config;
  config.space = Rect(-1, -1, 3, 3);
  config.height = 6;
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const Point p = rng.PointIn(config.space);
    for (int level = 0; level <= config.height; ++level) {
      const CellId cell = config.CellAt(level, p);
      EXPECT_TRUE(config.CellRect(cell).Contains(p))
          << cell.ToString() << " " << p.x << "," << p.y;
    }
  }
}

TEST(PyramidConfigTest, BoundaryPointsLandInLastCell) {
  PyramidConfig config;
  config.space = Rect(0, 0, 1, 1);
  const CellId cell = config.CellAt(3, {1.0, 1.0});
  EXPECT_EQ(cell, (CellId{3, 7, 7}));
  EXPECT_EQ(config.CellAt(3, {0.0, 0.0}), (CellId{3, 0, 0}));
}

TEST(PyramidConfigTest, LeafCellUsesHeight) {
  PyramidConfig config;
  config.height = 4;
  EXPECT_EQ(config.LeafCellAt({0.99, 0.01}).level, 4u);
}

TEST(PyramidConfigTest, DeepestLevelWithArea) {
  PyramidConfig config;  // Unit space, height 9.
  EXPECT_EQ(config.DeepestLevelWithArea(0.0), config.height);
  EXPECT_EQ(config.DeepestLevelWithArea(1.0), 0);
  // Area of level 2 cell = 1/16; requirement of 1/16 is satisfied there.
  EXPECT_EQ(config.DeepestLevelWithArea(1.0 / 16), 2);
  // Slightly more than 1/16 forces level 1.
  EXPECT_EQ(config.DeepestLevelWithArea(1.0 / 16 + 1e-9), 1);
}

TEST(PyramidConfigTest, CellAtParentConsistent) {
  PyramidConfig config;
  config.height = 8;
  Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    const Point p = rng.PointIn(config.space);
    const CellId leaf = config.LeafCellAt(p);
    CellId cell = leaf;
    for (int level = config.height - 1; level >= 0; --level) {
      cell = cell.Parent();
      EXPECT_EQ(cell, config.CellAt(level, p));
    }
  }
}

}  // namespace
}  // namespace casper::anonymizer
