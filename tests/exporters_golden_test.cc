#include "src/obs/exporters.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "src/obs/metrics.h"

/// Golden-file tests of the two exporters: a fixed registry is rendered
/// and compared byte-for-byte against checked-in expectations, so any
/// format drift (spacing, ordering, escaping, float rendering) shows up
/// as a reviewable diff. Regenerate with:
///
///   CASPER_REGEN_GOLDEN=1 ./tests/exporters_golden_test

namespace casper::obs {
namespace {

std::string GoldenPath(const std::string& file) {
  return std::string(CASPER_SOURCE_DIR) + "/tests/golden/" + file;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// A registry with every exporter-visible feature: all three instrument
/// types, labeled series, escaping-sensitive values, and an empty
/// histogram.
MetricsSnapshot FixtureSnapshot() {
  MetricsRegistry registry;
  registry.GetCounter("casper_requests_total", "Requests served.")
      ->Increment(42);
  registry
      .GetCounter("casper_requests_by_kind_total", "Requests by kind.",
                  {{"kind", "nearest_public"}})
      ->Increment(7);
  registry
      .GetCounter("casper_requests_by_kind_total", "Requests by kind.",
                  {{"kind", "density"}})
      ->Increment(3);
  registry.GetGauge("casper_queue_depth", "Tasks in flight.")->Set(2.5);
  registry
      .GetGauge("casper_quoted", "Help with \"quotes\" and a \\ backslash.",
                {{"path", "a\\b\"c"}})
      ->Set(-1.0);
  Histogram* latency = registry.GetHistogram(
      "casper_latency_seconds", "Request latency.", {0.001, 0.01, 0.1});
  latency->Observe(0.0005);
  latency->Observe(0.005);
  latency->Observe(0.005);
  latency->Observe(5.0);
  registry.GetHistogram("casper_unused_seconds", "Never observed.",
                        {1.0, 2.0});
  // The transport resilience instruments (mirrors obs::CasperMetrics):
  // the breaker gauge, the per-target-state transition counters, and
  // the retry counter/histogram the chaos tests scrape.
  registry
      .GetGauge("casper_transport_breaker_state",
                "Circuit-breaker state (0 closed, 1 open, 2 half-open).")
      ->Set(1.0);
  registry
      .GetCounter("casper_transport_breaker_transitions_total",
                  "Breaker transitions by target state.", {{"to", "open"}})
      ->Increment(2);
  registry
      .GetCounter("casper_transport_breaker_transitions_total",
                  "Breaker transitions by target state.",
                  {{"to", "half_open"}})
      ->Increment(2);
  registry
      .GetCounter("casper_transport_breaker_transitions_total",
                  "Breaker transitions by target state.", {{"to", "closed"}})
      ->Increment(1);
  registry
      .GetCounter("casper_transport_retries_total",
                  "Transport attempts re-sent after a retryable failure.")
      ->Increment(5);
  Histogram* retries = registry.GetHistogram(
      "casper_transport_retries_per_request",
      "Retries needed per logical request.", {0.0, 1.0, 2.0});
  retries->Observe(0.0);
  retries->Observe(0.0);
  retries->Observe(2.0);
  // The storage-tier instruments (mirrors obs::CasperMetrics): buffer
  // pool traffic counters, occupancy gauges, and the page I/O counters
  // the corruption tests scrape.
  registry
      .GetCounter("casper_storage_pool_hits_total",
                  "Buffer pool loads served from a cached frame.")
      ->Increment(90);
  registry
      .GetCounter("casper_storage_pool_misses_total",
                  "Buffer pool loads that went to the backing store.")
      ->Increment(10);
  registry
      .GetCounter("casper_storage_pool_evictions_total",
                  "Frames evicted to admit new pages.")
      ->Increment(4);
  registry
      .GetCounter("casper_storage_pool_writebacks_total",
                  "Dirty frames written back to the backing store.")
      ->Increment(2);
  registry
      .GetGauge("casper_storage_pool_resident_pages",
                "Pages currently cached in the buffer pool.")
      ->Set(6.0);
  registry
      .GetCounter("casper_storage_pages_read_total",
                  "Pages read and checksum-verified from disk.")
      ->Increment(12);
  registry
      .GetCounter("casper_storage_checksum_failures_total",
                  "Page reads rejected by checksum (torn/corrupt writes).")
      ->Increment(1);
  return registry.Scrape();
}

void CompareOrRegen(const std::string& rendered, const std::string& file) {
  const std::string path = GoldenPath(file);
  if (std::getenv("CASPER_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    out << rendered;
    ASSERT_TRUE(out.good()) << "failed to write " << path;
    GTEST_SKIP() << "regenerated " << path;
  }
  const std::string expected = ReadFile(path);
  ASSERT_FALSE(expected.empty()) << "missing golden file " << path;
  EXPECT_EQ(rendered, expected) << "exporter output drifted from " << path
                                << " (CASPER_REGEN_GOLDEN=1 to update)";
}

TEST(ExportersGoldenTest, PrometheusText) {
  CompareOrRegen(ExportPrometheus(FixtureSnapshot()), "metrics.prom");
}

TEST(ExportersGoldenTest, JsonSnapshot) {
  CompareOrRegen(ExportJson(FixtureSnapshot()), "metrics.json");
}

}  // namespace
}  // namespace casper::obs
