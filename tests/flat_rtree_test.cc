#include "src/spatial/flat_rtree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/common/rng.h"
#include "src/spatial/rtree.h"

namespace casper::spatial {
namespace {

const Rect kSpace(0.0, 0.0, 1.0, 1.0);

std::vector<RTree::Entry> RandomRectEntries(size_t n, Rng* rng,
                                            double max_extent) {
  std::vector<RTree::Entry> entries;
  for (size_t i = 0; i < n; ++i) {
    const Point c = rng->PointIn(kSpace);
    const double w = rng->Uniform(0.0, max_extent);
    const double h = rng->Uniform(0.0, max_extent);
    entries.push_back({Rect(c.x, c.y, c.x + w, c.y + h), i});
  }
  return entries;
}

std::vector<uint64_t> SortedIds(std::vector<RTree::Entry> entries) {
  std::vector<uint64_t> ids;
  ids.reserve(entries.size());
  for (const auto& e : entries) ids.push_back(e.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

/// Sorted distance multiset of a k-NN answer. Rect entries tie exactly
/// (MinDist is 0 for every rectangle containing the query point), so
/// two correct trees may return different ids at a tie — but the k
/// smallest distances are uniquely determined.
std::vector<double> Distances(const std::vector<RTree::Neighbor>& neighbors) {
  std::vector<double> out;
  out.reserve(neighbors.size());
  for (const auto& n : neighbors) out.push_back(n.distance);
  std::sort(out.begin(), out.end());
  return out;
}

/// (distance, id) pairs in deterministic order — exact comparison for
/// point entries, where distance ties have probability zero.
std::vector<std::pair<double, uint64_t>> Canonical(
    const std::vector<RTree::Neighbor>& neighbors) {
  std::vector<std::pair<double, uint64_t>> out;
  out.reserve(neighbors.size());
  for (const auto& n : neighbors) out.emplace_back(n.distance, n.id);
  std::sort(out.begin(), out.end());
  return out;
}

TEST(FlatRTreeTest, EmptyTree) {
  FlatRTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.size(), 0u);
  std::vector<RTree::Entry> hits;
  tree.RangeQuery(kSpace, &hits);
  EXPECT_TRUE(hits.empty());
  EXPECT_EQ(tree.RangeCount(kSpace), 0u);
  EXPECT_TRUE(tree.KNearest(Point{0.5, 0.5}, 3).empty());
  EXPECT_FALSE(tree.Nearest(Point{0.5, 0.5}).found);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(FlatRTreeTest, SingleEntry) {
  FlatRTree tree = FlatRTree::Build({{Rect(0.2, 0.2, 0.4, 0.4), 7}});
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_TRUE(tree.CheckInvariants());
  auto nn = tree.Nearest(Point{0.0, 0.0});
  ASSERT_TRUE(nn.found);
  EXPECT_EQ(nn.neighbor.id, 7u);
  EXPECT_EQ(tree.RangeCount(Rect(0.0, 0.0, 0.25, 0.25)), 1u);
  EXPECT_EQ(tree.RangeCount(Rect(0.5, 0.5, 0.6, 0.6)), 0u);
}

TEST(FlatRTreeTest, InvariantsAcrossSizesAndFanouts) {
  Rng rng(20260807);
  for (size_t n : {2u, 5u, 16u, 17u, 64u, 257u, 1000u}) {
    for (int fanout : {4, 8, 16}) {
      FlatRTree tree =
          FlatRTree::Build(RandomRectEntries(n, &rng, 0.05), fanout);
      EXPECT_EQ(tree.size(), n);
      EXPECT_TRUE(tree.CheckInvariants()) << "n=" << n << " M=" << fanout;
    }
  }
}

/// The tentpole contract: after randomized inserts (and some removes)
/// into the mutable Guttman tree, a flat rebuild from AllEntries()
/// answers every range and k-NN query — under both metrics — with the
/// identical result set.
TEST(FlatRTreeTest, DifferentialAgainstGuttmanAfterRandomizedMutations) {
  Rng rng(42);
  RTree mutable_tree(8);
  std::vector<RTree::Entry> alive;
  for (size_t i = 0; i < 600; ++i) {
    RTree::Entry e = RandomRectEntries(1, &rng, 0.08)[0];
    e.id = i;
    mutable_tree.Insert(e.box, e.id);
    alive.push_back(e);
  }
  // Remove a random third so the Guttman tree has seen condense-tree.
  for (size_t i = 0; i < 200; ++i) {
    const size_t victim = static_cast<size_t>(
        rng.Uniform(0.0, static_cast<double>(alive.size())));
    ASSERT_TRUE(mutable_tree.Remove(alive[victim].box, alive[victim].id));
    alive.erase(alive.begin() + static_cast<ptrdiff_t>(victim));
  }

  FlatRTree flat = FlatRTree::Build(mutable_tree.AllEntries(), 8);
  ASSERT_EQ(flat.size(), alive.size());
  ASSERT_TRUE(flat.CheckInvariants());

  for (int trial = 0; trial < 50; ++trial) {
    const Point a = rng.PointIn(kSpace);
    const Point b = rng.PointIn(kSpace);
    const Rect window(std::min(a.x, b.x), std::min(a.y, b.y),
                      std::max(a.x, b.x), std::max(a.y, b.y));
    std::vector<RTree::Entry> guttman_hits;
    mutable_tree.RangeQuery(window, &guttman_hits);
    std::vector<RTree::Entry> flat_hits;
    flat.RangeQuery(window, &flat_hits);
    EXPECT_EQ(SortedIds(guttman_hits), SortedIds(flat_hits));
    EXPECT_EQ(mutable_tree.RangeCount(window), flat.RangeCount(window));

    const Point q = rng.PointIn(kSpace);
    for (auto metric : {RTree::Metric::kMinDist, RTree::Metric::kMaxDist}) {
      for (size_t k : {1u, 5u, 23u}) {
        EXPECT_EQ(Distances(mutable_tree.KNearest(q, k, metric)),
                  Distances(flat.KNearest(q, k, metric)))
            << "metric=" << static_cast<int>(metric) << " k=" << k;
      }
      const auto exact = mutable_tree.Nearest(q, metric);
      const auto packed = flat.Nearest(q, metric);
      ASSERT_EQ(exact.found, packed.found);
      EXPECT_DOUBLE_EQ(exact.neighbor.distance, packed.neighbor.distance);
    }
  }
}

/// Point entries never tie, so the k-NN id sequences must match
/// exactly, under both metrics (which coincide for points).
TEST(FlatRTreeTest, DifferentialPointEntriesExactIds) {
  Rng rng(1234);
  std::vector<RTree::Entry> entries;
  RTree mutable_tree(16);
  for (size_t i = 0; i < 500; ++i) {
    const Point p = rng.PointIn(kSpace);
    entries.push_back({Rect::FromPoint(p), i});
    mutable_tree.Insert(entries.back().box, i);
  }
  FlatRTree flat = FlatRTree::Build(entries, 16);
  ASSERT_TRUE(flat.CheckInvariants());
  for (int trial = 0; trial < 40; ++trial) {
    const Point q = rng.PointIn(kSpace);
    for (auto metric : {RTree::Metric::kMinDist, RTree::Metric::kMaxDist}) {
      for (size_t k : {1u, 10u}) {
        EXPECT_EQ(Canonical(mutable_tree.KNearest(q, k, metric)),
                  Canonical(flat.KNearest(q, k, metric)));
      }
    }
  }
}

TEST(FlatRTreeTest, VisitorEarlyStopAndFilteredKnn) {
  Rng rng(7);
  FlatRTree tree = FlatRTree::Build(RandomRectEntries(200, &rng, 0.05), 8);
  size_t seen = 0;
  tree.RangeQuery(kSpace, [&seen](const RTree::Entry&) {
    ++seen;
    return seen < 10;
  });
  EXPECT_EQ(seen, 10u);

  // Filtering away even ids must yield the odd-id k-NN answer.
  const Point q{0.5, 0.5};
  auto odd_only = tree.KNearestFiltered(
      q, 8, RTree::Metric::kMinDist,
      [](const RTree::Entry& e) { return e.id % 2 == 1; });
  ASSERT_EQ(odd_only.size(), 8u);
  for (const auto& n : odd_only) EXPECT_EQ(n.id % 2, 1u);
  // Ascending distance, and no unfiltered entry closer than the last.
  for (size_t i = 1; i < odd_only.size(); ++i) {
    EXPECT_LE(odd_only[i - 1].distance, odd_only[i].distance);
  }
}

TEST(FlatRTreeTest, BatchedKernelsMatchScalar) {
  Rng rng(99);
  std::vector<RTree::Entry> entries = RandomRectEntries(100, &rng, 0.1);
  std::vector<double> xlo, ylo, xhi, yhi;
  for (const auto& e : entries) {
    xlo.push_back(e.box.min.x);
    ylo.push_back(e.box.min.y);
    xhi.push_back(e.box.max.x);
    yhi.push_back(e.box.max.y);
  }
  const RectSoA soa{xlo.data(), ylo.data(), xhi.data(), yhi.data()};
  std::vector<double> batched(entries.size());
  for (int trial = 0; trial < 20; ++trial) {
    const Point q = rng.PointIn(kSpace);
    BatchedMinDist(q, soa, entries.size(), batched.data());
    for (size_t i = 0; i < entries.size(); ++i) {
      EXPECT_EQ(batched[i], MinDist(q, entries[i].box)) << i;
    }
    BatchedMaxDist(q, soa, entries.size(), batched.data());
    for (size_t i = 0; i < entries.size(); ++i) {
      EXPECT_EQ(batched[i], MaxDist(q, entries[i].box)) << i;
    }
  }
}

}  // namespace
}  // namespace casper::spatial
