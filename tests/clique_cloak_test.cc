#include "src/baselines/clique_cloak.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace casper::baselines {
namespace {

CliqueRequest Req(anonymizer::UserId uid, double x, double y, uint32_t k,
                  double tolerance = 0.2) {
  return CliqueRequest{uid, Point{x, y}, k, tolerance};
}

TEST(CliqueCloakTest, SingletonKOneIsImmediate) {
  CliqueCloak cc(Rect(0, 0, 1, 1));
  auto result = cc.Submit(Req(1, 0.5, 0.5, 1));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].uid, 1u);
  EXPECT_EQ(cc.pending_count(), 0u);
}

TEST(CliqueCloakTest, WaitsForCompatiblePartners) {
  CliqueCloak cc(Rect(0, 0, 1, 1));
  auto first = cc.Submit(Req(1, 0.5, 0.5, 2));
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->empty());
  EXPECT_EQ(cc.pending_count(), 1u);

  // A second user nearby completes the 2-clique; both are cloaked with
  // the same MBR.
  auto second = cc.Submit(Req(2, 0.55, 0.5, 2));
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second->size(), 2u);
  EXPECT_EQ((*second)[0].region, (*second)[1].region);
  EXPECT_EQ((*second)[0].group_size, 2u);
  EXPECT_EQ(cc.pending_count(), 0u);
}

TEST(CliqueCloakTest, MbrLeaksMemberPositions) {
  // The paper's §2 criticism: members lie on the MBR boundary.
  CliqueCloak cc(Rect(0, 0, 1, 1));
  ASSERT_TRUE(cc.Submit(Req(1, 0.4, 0.4, 2)).ok());
  auto done = cc.Submit(Req(2, 0.5, 0.5, 2));
  ASSERT_TRUE(done.ok());
  ASSERT_EQ(done->size(), 2u);
  const Rect mbr = (*done)[0].region;
  // Both submitted positions sit exactly on the MBR corners.
  EXPECT_EQ(mbr, Rect(0.4, 0.4, 0.5, 0.5));
}

TEST(CliqueCloakTest, IncompatibleRequestsDoNotGroup) {
  CliqueCloak cc(Rect(0, 0, 1, 1));
  ASSERT_TRUE(cc.Submit(Req(1, 0.1, 0.1, 2, 0.05)).ok());
  // Far away: not within each other's tolerance.
  auto second = cc.Submit(Req(2, 0.9, 0.9, 2, 0.05));
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->empty());
  EXPECT_EQ(cc.pending_count(), 2u);
}

TEST(CliqueCloakTest, AsymmetricToleranceBlocksGrouping) {
  CliqueCloak cc(Rect(0, 0, 1, 1));
  // u1 accepts distant partners, but u2's tiny tolerance excludes u1:
  // compatibility must be mutual.
  ASSERT_TRUE(cc.Submit(Req(1, 0.3, 0.5, 2, 0.5)).ok());
  auto second = cc.Submit(Req(2, 0.7, 0.5, 2, 0.1));
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->empty());
}

TEST(CliqueCloakTest, LargestMemberKGovernsGroupSize) {
  CliqueCloak cc(Rect(0, 0, 1, 1));
  // All pending members demand k=4, so any group that includes one of
  // them must reach four members before it can be released.
  ASSERT_TRUE(cc.Submit(Req(1, 0.50, 0.5, 4)).ok());
  ASSERT_TRUE(cc.Submit(Req(2, 0.52, 0.5, 4)).ok());
  ASSERT_TRUE(cc.Submit(Req(3, 0.54, 0.5, 4)).ok());
  auto done = cc.Submit(Req(4, 0.56, 0.5, 2));
  ASSERT_TRUE(done.ok());
  ASSERT_EQ(done->size(), 4u);
  for (const auto& c : *done) EXPECT_EQ(c.group_size, 4u);
}

TEST(CliqueCloakTest, GreedyServesSmallestSatisfiableGroup) {
  CliqueCloak cc(Rect(0, 0, 1, 1));
  // A k=4 requester parks; two k=2 users pair up around it and leave it
  // starving — the behavior the paper criticizes.
  ASSERT_TRUE(cc.Submit(Req(1, 0.50, 0.5, 4)).ok());
  ASSERT_TRUE(cc.Submit(Req(2, 0.52, 0.5, 2)).ok());
  auto done = cc.Submit(Req(3, 0.54, 0.5, 2));
  ASSERT_TRUE(done.ok());
  ASSERT_EQ(done->size(), 2u);
  for (const auto& c : *done) EXPECT_NE(c.uid, 1u);
  EXPECT_EQ(cc.pending_count(), 1u);  // The k=4 user still waits.
}

TEST(CliqueCloakTest, Validation) {
  CliqueCloak cc(Rect(0, 0, 1, 1));
  EXPECT_EQ(cc.Submit(Req(1, 0.5, 0.5, 0)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(cc.Submit(Req(1, 1.5, 0.5, 1)).status().code(),
            StatusCode::kOutOfRange);
  ASSERT_TRUE(cc.Submit(Req(1, 0.5, 0.5, 3)).ok());
  EXPECT_EQ(cc.Submit(Req(1, 0.6, 0.5, 3)).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(CliqueCloakTest, Cancel) {
  CliqueCloak cc(Rect(0, 0, 1, 1));
  ASSERT_TRUE(cc.Submit(Req(1, 0.5, 0.5, 5)).ok());
  EXPECT_EQ(cc.pending_count(), 1u);
  ASSERT_TRUE(cc.Cancel(1).ok());
  EXPECT_EQ(cc.pending_count(), 0u);
  EXPECT_EQ(cc.Cancel(1).code(), StatusCode::kNotFound);
}

TEST(CliqueCloakTest, StarvationWithLargeK) {
  // The paper's scalability criticism: requests with large k in a
  // sparse pool never complete.
  CliqueCloak cc(Rect(0, 0, 1, 1));
  Rng rng(1);
  size_t fulfilled = 0;
  for (anonymizer::UserId uid = 0; uid < 30; ++uid) {
    auto r = cc.Submit(Req(uid, rng.Uniform(0, 1), rng.Uniform(0, 1), 50,
                           0.05));
    ASSERT_TRUE(r.ok());
    fulfilled += r->size();
  }
  EXPECT_EQ(fulfilled, 0u);
  EXPECT_EQ(cc.pending_count(), 30u);
}

TEST(CliqueCloakTest, DenseSmallKFulfillsMost) {
  CliqueCloak cc(Rect(0, 0, 1, 1));
  Rng rng(2);
  size_t fulfilled = 0;
  for (anonymizer::UserId uid = 0; uid < 200; ++uid) {
    auto r = cc.Submit(
        Req(uid, rng.Uniform(0.4, 0.6), rng.Uniform(0.4, 0.6), 5, 0.3));
    ASSERT_TRUE(r.ok());
    fulfilled += r->size();
  }
  EXPECT_GT(fulfilled, 150u);
}

}  // namespace
}  // namespace casper::baselines
