#include "src/processor/query_cache.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/rng.h"

namespace casper::processor {
namespace {

PublicTargetStore MakeStore(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<PublicTarget> targets;
  for (uint64_t i = 0; i < n; ++i) {
    targets.push_back({i, rng.PointIn(Rect(0, 0, 1, 1))});
  }
  return PublicTargetStore(targets);
}

std::vector<uint64_t> Ids(const PublicCandidateList& list) {
  std::vector<uint64_t> ids;
  for (const auto& t : list.candidates) ids.push_back(t.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST(QueryCacheTest, HitReturnsIdenticalAnswer) {
  PublicTargetStore store = MakeStore(300, 1);
  CachingQueryProcessor cache(&store, 16);
  const Rect cloak(0.4, 0.4, 0.6, 0.6);

  auto first = cache.Query(cloak);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(cache.stats().misses, 1u);
  auto second = cache.Query(cloak);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(Ids(*first), Ids(*second));
  EXPECT_EQ(first->area.a_ext, second->area.a_ext);

  // The cached answer equals a direct evaluation.
  auto direct = PrivateNearestNeighbor(store, cloak);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(Ids(*second), Ids(*direct));
}

TEST(QueryCacheTest, LruEviction) {
  PublicTargetStore store = MakeStore(100, 2);
  CachingQueryProcessor cache(&store, 2);
  const Rect a(0.0, 0.0, 0.1, 0.1);
  const Rect b(0.2, 0.2, 0.3, 0.3);
  const Rect c(0.4, 0.4, 0.5, 0.5);
  ASSERT_TRUE(cache.Query(a).ok());  // miss {a}
  ASSERT_TRUE(cache.Query(b).ok());  // miss {a, b}
  ASSERT_TRUE(cache.Query(a).ok());  // hit, a is MRU
  ASSERT_TRUE(cache.Query(c).ok());  // miss, evicts b -> {a, c}
  EXPECT_EQ(cache.size(), 2u);
  ASSERT_TRUE(cache.Query(b).ok());  // miss again (was evicted)
  EXPECT_EQ(cache.stats().misses, 4u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(QueryCacheTest, InvalidationForcesReevaluation) {
  PublicTargetStore store = MakeStore(200, 3);
  CachingQueryProcessor cache(&store, 8);
  const Rect cloak(0.45, 0.45, 0.55, 0.55);
  auto before = cache.Query(cloak);
  ASSERT_TRUE(before.ok());

  // Mutate the store; the stale answer must not be served. The epoch
  // bump is lazy: the entry stays resident but is refilled on lookup.
  store.Insert({9999, {0.5, 0.5}});
  cache.InvalidateAll();
  EXPECT_EQ(cache.size(), 1u);
  auto after = cache.Query(cloak);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->size(), before->size() + 1);
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(QueryCacheTest, EpochBumpIsLazyAndO1) {
  PublicTargetStore store = MakeStore(200, 8);
  CachingQueryProcessor cache(&store, 8);
  std::vector<Rect> cloaks;
  for (int i = 0; i < 4; ++i) {
    cloaks.push_back(Rect(i * 0.2, i * 0.2, i * 0.2 + 0.1, i * 0.2 + 0.1));
  }
  for (const Rect& c : cloaks) ASSERT_TRUE(cache.Query(c).ok());
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.epoch(), 0u);

  cache.InvalidateAll();
  // Nothing is eagerly dropped; only the epoch moved.
  EXPECT_EQ(cache.epoch(), 1u);
  EXPECT_EQ(cache.size(), 4u);

  // A stale entry counts as a miss and is refilled at the new epoch...
  ASSERT_TRUE(cache.Query(cloaks[0]).ok());
  EXPECT_EQ(cache.stats().misses, 5u);
  EXPECT_EQ(cache.size(), 4u);  // Refilled in place, not duplicated.
  // ...after which it hits again.
  ASSERT_TRUE(cache.Query(cloaks[0]).ok());
  EXPECT_EQ(cache.stats().hits, 1u);

  // The cached answer after invalidation matches direct evaluation.
  auto cached = cache.Query(cloaks[1]);
  auto direct = PrivateNearestNeighbor(store, cloaks[1]);
  ASSERT_TRUE(cached.ok());
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(Ids(*cached), Ids(*direct));
}

TEST(QueryCacheTest, CellAlignedWorkloadGetsHighHitRate) {
  // Co-located users share cell-aligned cloaks: with 16 distinct cloak
  // rectangles and hundreds of queries the hit rate approaches 1.
  PublicTargetStore store = MakeStore(500, 4);
  CachingQueryProcessor cache(&store, 32);
  Rng rng(5);
  std::vector<Rect> cloaks;
  for (int i = 0; i < 16; ++i) {
    const double x = (i % 4) * 0.25;
    const double y = (i / 4) * 0.25;
    cloaks.push_back(Rect(x, y, x + 0.25, y + 0.25));
  }
  for (int q = 0; q < 500; ++q) {
    ASSERT_TRUE(cache.Query(cloaks[rng.UniformInt(0, 15)]).ok());
  }
  EXPECT_EQ(cache.stats().misses, 16u);
  EXPECT_GT(cache.stats().HitRate(), 0.95);
}

TEST(QueryCacheTest, CapacityOneStillCorrect) {
  PublicTargetStore store = MakeStore(100, 6);
  CachingQueryProcessor cache(&store, 1);
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const Point c = rng.PointIn(Rect(0, 0, 0.8, 0.8));
    const Rect cloak(c.x, c.y, c.x + 0.1, c.y + 0.1);
    auto cached = cache.Query(cloak);
    auto direct = PrivateNearestNeighbor(store, cloak);
    ASSERT_TRUE(cached.ok());
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(Ids(*cached), Ids(*direct));
  }
}

}  // namespace
}  // namespace casper::processor
