#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "src/casper/messages.h"
#include "src/obs/metrics.h"
#include "src/server/query_server.h"
#include "src/sharding/shard_router.h"
#include "src/transport/fault_injection.h"

/// Kill-one-shard chaos tests. The acceptance contract: with one shard
/// dead, only answers whose probe or fan-out set touches the dead shard
/// are affected, every affected answer is either `degraded=true` or a
/// typed kUnavailable, and no answer — degraded or not — ever violates
/// inclusiveness against a brute-force oracle.
///
/// The key exactness property exercised here: a degraded answer is
/// byte-identical to what a single un-sharded server holding only the
/// *live* shards' objects would return, because the merge runs over
/// exactly the live shards' data. Non-degraded answers are
/// byte-identical to the full-store single server.

namespace casper::sharding {
namespace {

constexpr size_t kShards = 4;

class ShardChaosTest : public ::testing::Test {
 protected:
  ShardChaosTest() : full_({}), live_({}) {}

  /// Builds the router with every shard channel wrapped in a
  /// FaultInjectingChannel (healthy profile until a test kills one).
  void BuildRouter() {
    ShardRouterOptions options;
    options.num_shards = kShards;
    options.partition_level = 2;
    options.space = Rect(0.0, 0.0, 1.0, 1.0);
    options.registry = &registry_;
    // Fast-fail resilience: no real sleeping, two attempts, a breaker
    // that trips quickly and stays open for the whole test (a killed
    // shard stays killed).
    options.resilience.retry.max_attempts = 2;
    options.resilience.retry.deadline_seconds = 0.0;  // disabled
    options.resilience.breaker.failure_threshold = 2;
    options.resilience.breaker.open_seconds = 1000.0;
    options.resilience.sleep = [](double) {};
    faults_.assign(kShards, nullptr);
    options.channel_decorator = [this](transport::Channel* inner,
                                       size_t shard) {
      auto fault = std::make_unique<transport::FaultInjectingChannel>(
          inner, transport::FaultProfile{}, /*seed=*/7000 + shard);
      faults_[shard] = fault.get();
      return std::unique_ptr<transport::Channel>(std::move(fault));
    };
    router_ = std::make_unique<ShardRouter>(options);
  }

  /// Seeds identical stores into the router, the full oracle, and (for
  /// everything not owned by `victim`) the live oracle.
  void SeedStores(size_t victim) {
    std::mt19937_64 rng(991);
    std::uniform_real_distribution<double> coord(0.02, 0.98);
    std::vector<processor::PublicTarget> targets;
    for (uint64_t i = 1; i <= 120; ++i) {
      targets.push_back({i, {coord(rng), coord(rng)}});
    }
    router_->SetPublicTargets(targets);
    full_.SetPublicTargets(targets);
    std::vector<processor::PublicTarget> live_targets;
    for (const auto& t : targets) {
      if (router_->partition().HomeShard(t.position) != victim) {
        live_targets.push_back(t);
      }
    }
    live_.SetPublicTargets(live_targets);
    live_targets_ = live_targets;
    targets_ = targets;

    std::vector<processor::PrivateTarget> regions;
    for (uint64_t i = 0; i < 48; ++i) {
      const double cx = coord(rng), cy = coord(rng);
      const double hw = 0.01 + 0.04 * coord(rng);
      regions.push_back(
          {5000 + i, Rect(cx - hw, cy - hw, cx + hw, cy + hw)});
    }
    SnapshotMsg snapshot;
    snapshot.regions = regions;
    ASSERT_TRUE(router_->Load(snapshot).ok());
    ASSERT_TRUE(full_.Load(snapshot).ok());
    SnapshotMsg live_snapshot;
    for (const auto& r : regions) {
      if (router_->partition().HomeShard(r.region.Center()) != victim) {
        live_snapshot.regions.push_back(r);
      }
    }
    ASSERT_TRUE(live_.Load(live_snapshot).ok());
  }

  static void Normalize(CandidateListMsg* msg) {
    msg->processor_seconds = 0.0;
    msg->request_id = 0;
    msg->degraded = false;
  }

  /// Byte-compares a routed answer against the given oracle server.
  void ExpectMatchesOracle(const CloakedQueryMsg& query,
                           CandidateListMsg routed,
                           server::QueryServer* oracle) {
    auto expected = oracle->Execute(query, nullptr);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    Normalize(&routed);
    Normalize(&*expected);
    EXPECT_EQ(Encode(routed), Encode(*expected))
        << "kind " << static_cast<int>(query.kind);
  }

  /// Brute-force inclusiveness for nearest-target answers: for sample
  /// points in the cloak, the nearest target in `universe` must appear
  /// in the candidate list.
  void ExpectInclusive(const Rect& cloak,
                       const std::vector<processor::PublicTarget>& universe,
                       const processor::PublicCandidateList& list) {
    const std::vector<Point> samples = {
        cloak.min,
        cloak.max,
        {cloak.min.x, cloak.max.y},
        {cloak.max.x, cloak.min.y},
        cloak.Center()};
    for (const Point& p : samples) {
      const processor::PublicTarget* best = nullptr;
      double best_d = 0.0;
      for (const auto& t : universe) {
        const double d = Distance(p, t.position);
        if (best == nullptr || d < best_d) {
          best = &t;
          best_d = d;
        }
      }
      ASSERT_NE(best, nullptr);
      bool found = false;
      for (const auto& c : list.candidates) found |= c.id == best->id;
      EXPECT_TRUE(found) << "nearest target " << best->id
                         << " missing from candidate list";
    }
  }

  obs::MetricsRegistry registry_;
  std::vector<transport::FaultInjectingChannel*> faults_;
  std::unique_ptr<ShardRouter> router_;
  server::QueryServer full_;  ///< Oracle over the full store.
  server::QueryServer live_;  ///< Oracle over the surviving shards only.
  std::vector<processor::PublicTarget> targets_;
  std::vector<processor::PublicTarget> live_targets_;
};

TEST_F(ShardChaosTest, KillOneShardDegradesOnlyAffectedAnswers) {
  BuildRouter();
  const size_t victim = router_->partition().HomeShard({0.1, 0.1});
  SeedStores(victim);
  // Kill the victim: every call from now on fails at the wire.
  faults_[victim]->FailRequests(1, 1u << 30);

  std::mt19937_64 rng(17);
  std::uniform_real_distribution<double> coord(0.02, 0.98);
  size_t clean = 0, degraded = 0, unavailable = 0;
  for (int trial = 0; trial < 120; ++trial) {
    CloakedQueryMsg q;
    q.request_id = 100 + static_cast<uint64_t>(trial);
    const double x = coord(rng), y = coord(rng);
    const Rect cloak(x, y, std::min(1.0, x + 0.08), std::min(1.0, y + 0.08));
    switch (trial % 5) {
      case 0:
        q.kind = QueryKind::kNearestPublic;
        q.cloak = cloak;
        break;
      case 1:
        q.kind = QueryKind::kKNearestPublic;
        q.cloak = cloak;
        q.k = 1 + static_cast<uint64_t>(trial % 7);
        break;
      case 2:
        q.kind = QueryKind::kRangePublic;
        q.cloak = cloak;
        q.radius = 0.05;
        break;
      case 3:
        q.kind = QueryKind::kNearestPrivate;
        q.cloak = cloak;
        break;
      case 4:
        q.kind = QueryKind::kPublicRange;
        q.region = cloak;
        break;
    }
    auto routed = router_->Execute(q);
    if (!routed.ok()) {
      // The only acceptable failure with a dead shard: the region the
      // query needs is entirely on that shard.
      EXPECT_EQ(routed.status().code(), StatusCode::kUnavailable)
          << routed.status().ToString();
      ++unavailable;
      continue;
    }
    if (routed->degraded) {
      ++degraded;
      // Degraded answers are exact over the surviving shards' store.
      ExpectMatchesOracle(q, *routed, &live_);
      if (q.kind == QueryKind::kNearestPublic) {
        ExpectInclusive(
            q.cloak, live_targets_,
            std::get<processor::PublicCandidateList>(routed->payload));
      }
    } else {
      ++clean;
      // Untouched answers are exact over the full store.
      ExpectMatchesOracle(q, *routed, &full_);
      if (q.kind == QueryKind::kNearestPublic) {
        ExpectInclusive(
            q.cloak, targets_,
            std::get<processor::PublicCandidateList>(routed->payload));
      }
    }
  }
  // The workload must actually exercise all three outcomes.
  EXPECT_GT(clean, 0u);
  EXPECT_GT(degraded, 0u);
  EXPECT_GT(router_->metrics().degraded_answers_total->Value(), 0u);
  EXPECT_GT(router_->metrics().errors_total[victim]->Value(), 0u);
  EXPECT_EQ(router_->metrics().unavailable_total->Value(), unavailable);
  // The breaker for the dead shard tripped; the others stayed closed.
  EXPECT_EQ(router_->breaker_state(victim), transport::BreakerState::kOpen);
  for (size_t s = 0; s < kShards; ++s) {
    if (s != victim) {
      EXPECT_EQ(router_->breaker_state(s), transport::BreakerState::kClosed);
    }
  }
}

TEST_F(ShardChaosTest, ShardRecoveryRestoresExactUnDegradedAnswers) {
  BuildRouter();
  // Re-build with a breaker that recovers immediately after cool-down.
  ShardRouterOptions options;
  options.num_shards = kShards;
  options.partition_level = 2;
  options.space = Rect(0.0, 0.0, 1.0, 1.0);
  options.registry = &registry_;
  options.resilience.retry.max_attempts = 2;
  options.resilience.retry.deadline_seconds = 0.0;
  options.resilience.breaker.failure_threshold = 2;
  options.resilience.breaker.open_seconds = 0.0;  // instant half-open
  options.resilience.breaker.half_open_successes = 1;
  options.resilience.sleep = [](double) {};
  faults_.assign(kShards, nullptr);
  options.channel_decorator = [this](transport::Channel* inner, size_t shard) {
    auto fault = std::make_unique<transport::FaultInjectingChannel>(
        inner, transport::FaultProfile{}, /*seed=*/8000 + shard);
    faults_[shard] = fault.get();
    return std::unique_ptr<transport::Channel>(std::move(fault));
  };
  router_ = std::make_unique<ShardRouter>(options);
  const size_t victim = router_->partition().HomeShard({0.9, 0.9});
  SeedStores(victim);

  // A window inside the victim's quadrant.
  CloakedQueryMsg q;
  q.kind = QueryKind::kRangePublic;
  q.cloak = Rect(0.8, 0.8, 0.95, 0.95);
  q.radius = 0.02;

  // Fail a bounded window of calls, then heal.
  const uint64_t already = faults_[victim]->calls();
  faults_[victim]->FailRequests(already + 1, already + 6);
  bool saw_affected = false;
  bool recovered = false;
  for (int i = 0; i < 50 && !recovered; ++i) {
    q.request_id = 500 + static_cast<uint64_t>(i);
    auto routed = router_->Execute(q);
    if (!routed.ok() || routed->degraded) {
      saw_affected = true;
      continue;
    }
    // Healthy again: the answer must be exact and un-degraded.
    ExpectMatchesOracle(q, *routed, &full_);
    recovered = true;
  }
  EXPECT_TRUE(saw_affected);
  EXPECT_TRUE(recovered);
  EXPECT_EQ(router_->breaker_state(victim), transport::BreakerState::kClosed);
}

TEST_F(ShardChaosTest, ConcurrentQueriesWithDeadShardAreConsistent) {
  // TSan coverage for the fan-out path: many threads query through the
  // router while one shard is dead. Every thread checks the same
  // invariants (exactness per oracle, typed errors only).
  BuildRouter();
  const size_t victim = router_->partition().HomeShard({0.1, 0.9});
  SeedStores(victim);
  faults_[victim]->FailRequests(1, 1u << 30);

  constexpr int kThreads = 4;
  constexpr int kQueriesPerThread = 40;
  std::atomic<size_t> violations{0};
  std::atomic<size_t> answered{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      std::mt19937_64 rng(1234 + static_cast<uint64_t>(t));
      std::uniform_real_distribution<double> coord(0.02, 0.9);
      for (int i = 0; i < kQueriesPerThread; ++i) {
        CloakedQueryMsg q;
        q.request_id =
            static_cast<uint64_t>(t) * 1000 + static_cast<uint64_t>(i) + 1;
        const double x = coord(rng), y = coord(rng);
        q.cloak = Rect(x, y, x + 0.08, y + 0.08);
        switch (i % 3) {
          case 0:
            q.kind = QueryKind::kNearestPublic;
            break;
          case 1:
            q.kind = QueryKind::kRangePublic;
            q.radius = 0.03;
            break;
          case 2:
            q.kind = QueryKind::kNearestPrivate;
            break;
        }
        auto routed = router_->Execute(q);
        if (!routed.ok()) {
          if (routed.status().code() != StatusCode::kUnavailable) {
            violations.fetch_add(1);
          }
          continue;
        }
        ++answered;
        server::QueryServer* oracle = routed->degraded ? &live_ : &full_;
        auto expected = oracle->Execute(q, nullptr);
        if (!expected.ok()) {
          violations.fetch_add(1);
          continue;
        }
        CandidateListMsg got = *routed;
        Normalize(&got);
        Normalize(&*expected);
        if (Encode(got) != Encode(*expected)) violations.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(violations.load(), 0u);
  EXPECT_GT(answered.load(), 0u);
}

}  // namespace
}  // namespace casper::sharding
