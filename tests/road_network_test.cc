#include "src/network/road_network.h"

#include <gtest/gtest.h>

namespace casper::network {
namespace {

RoadNetwork Triangle() {
  RoadNetwork net;
  const NodeId a = net.AddNode({0, 0});
  const NodeId b = net.AddNode({1, 0});
  const NodeId c = net.AddNode({0, 1});
  EXPECT_TRUE(net.AddEdge(a, b, RoadClass::kHighway).ok());
  EXPECT_TRUE(net.AddEdge(b, c, RoadClass::kArterial).ok());
  EXPECT_TRUE(net.AddEdge(c, a, RoadClass::kLocal).ok());
  return net;
}

TEST(RoadNetworkTest, AddNodesAndEdges) {
  RoadNetwork net = Triangle();
  EXPECT_EQ(net.node_count(), 3u);
  EXPECT_EQ(net.edge_count(), 3u);
  EXPECT_EQ(net.node(0).position, (Point{0, 0}));
  EXPECT_DOUBLE_EQ(net.edge(0).length, 1.0);
  EXPECT_EQ(net.IncidentEdges(0).size(), 2u);
}

TEST(RoadNetworkTest, EdgeValidation) {
  RoadNetwork net;
  const NodeId a = net.AddNode({0, 0});
  const NodeId b = net.AddNode({1, 0});
  EXPECT_EQ(net.AddEdge(a, 99, RoadClass::kLocal).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(net.AddEdge(a, a, RoadClass::kLocal).status().code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(net.AddEdge(a, b, RoadClass::kLocal).ok());
  EXPECT_EQ(net.AddEdge(b, a, RoadClass::kLocal).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(RoadNetworkTest, HasEdgeIsSymmetric) {
  RoadNetwork net = Triangle();
  EXPECT_TRUE(net.HasEdge(0, 1));
  EXPECT_TRUE(net.HasEdge(1, 0));
  RoadNetwork net2;
  net2.AddNode({0, 0});
  net2.AddNode({1, 1});
  EXPECT_FALSE(net2.HasEdge(0, 1));
}

TEST(RoadNetworkTest, SpeedOrdering) {
  EXPECT_GT(SpeedOf(RoadClass::kHighway), SpeedOf(RoadClass::kArterial));
  EXPECT_GT(SpeedOf(RoadClass::kArterial), SpeedOf(RoadClass::kLocal));
}

TEST(RoadNetworkTest, TravelTimeUsesClassSpeed) {
  RoadNetwork net = Triangle();
  const RoadEdge& highway = net.edge(0);
  EXPECT_DOUBLE_EQ(highway.TravelTime(),
                   highway.length / SpeedOf(RoadClass::kHighway));
}

TEST(RoadNetworkTest, EdgeOther) {
  RoadNetwork net = Triangle();
  const RoadEdge& e = net.edge(0);
  EXPECT_EQ(e.Other(e.from), e.to);
  EXPECT_EQ(e.Other(e.to), e.from);
}

TEST(RoadNetworkTest, Bounds) {
  RoadNetwork net = Triangle();
  EXPECT_EQ(net.bounds(), Rect(0, 0, 1, 1));
  EXPECT_TRUE(RoadNetwork().bounds().is_empty());
}

TEST(RoadNetworkTest, NearestNode) {
  RoadNetwork net = Triangle();
  EXPECT_EQ(net.NearestNode({0.1, 0.05}), 0u);
  EXPECT_EQ(net.NearestNode({0.9, 0.1}), 1u);
  EXPECT_EQ(RoadNetwork().NearestNode({0, 0}), kInvalidNode);
}

TEST(RoadNetworkTest, Connectivity) {
  RoadNetwork net = Triangle();
  EXPECT_TRUE(net.IsConnected());
  net.AddNode({5, 5});  // Isolated node.
  EXPECT_FALSE(net.IsConnected());
  EXPECT_EQ(net.ConnectedComponents().size(), 2u);
  EXPECT_TRUE(RoadNetwork().IsConnected());
}

}  // namespace
}  // namespace casper::network
