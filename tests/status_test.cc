#include "src/common/status.h"

#include <gtest/gtest.h>

#include "src/common/result.h"

namespace casper {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("user 7");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "user 7");
  EXPECT_EQ(s.ToString(), "NotFound: user 7");
}

TEST(StatusTest, EqualityComparesCodesOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  EXPECT_EQ(Status::InvalidArgument("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::DeadlineExceeded("").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Unavailable("").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::DataLoss("").code(), StatusCode::kDataLoss);
}

TEST(StatusTest, TransportCodesFormatAndCarryMessages) {
  EXPECT_EQ(Status::DeadlineExceeded("50ms budget spent").ToString(),
            "DeadlineExceeded: 50ms budget spent");
  EXPECT_EQ(Status::Unavailable("breaker open").ToString(),
            "Unavailable: breaker open");
  EXPECT_EQ(Status::DataLoss("corrupt frame").ToString(),
            "DataLoss: corrupt frame");
}

TEST(StatusTest, RetryabilityPartitionsTheCodes) {
  // Exactly kUnavailable and kDataLoss are retryable: the request never
  // took effect, or re-applying is safe under request-id idempotency.
  EXPECT_TRUE(Status::Unavailable("").IsRetryable());
  EXPECT_TRUE(Status::DataLoss("").IsRetryable());
  EXPECT_TRUE(IsRetryable(StatusCode::kUnavailable));
  EXPECT_TRUE(IsRetryable(StatusCode::kDataLoss));

  // kDeadlineExceeded is deliberately terminal — the budget is spent.
  EXPECT_FALSE(Status::DeadlineExceeded("").IsRetryable());

  EXPECT_FALSE(Status().IsRetryable());
  EXPECT_FALSE(Status::InvalidArgument("").IsRetryable());
  EXPECT_FALSE(Status::NotFound("").IsRetryable());
  EXPECT_FALSE(Status::AlreadyExists("").IsRetryable());
  EXPECT_FALSE(Status::FailedPrecondition("").IsRetryable());
  EXPECT_FALSE(Status::OutOfRange("").IsRetryable());
  EXPECT_FALSE(Status::Internal("").IsRetryable());
}

Status FailsWhenNegative(int v) {
  if (v < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chained(int v) {
  CASPER_RETURN_IF_ERROR(FailsWhenNegative(v));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_EQ(Chained(-1).code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.status().message(), "nope");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Result<int> HalfOf(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd");
  return v / 2;
}

Result<int> QuarterOf(int v) {
  CASPER_ASSIGN_OR_RETURN(half, HalfOf(v));
  return HalfOf(half);
}

TEST(ResultTest, AssignOrReturnChains) {
  auto ok = QuarterOf(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);

  EXPECT_FALSE(QuarterOf(7).ok());   // Fails at the first stage.
  EXPECT_FALSE(QuarterOf(10).ok());  // Fails at the second stage.
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

TEST(ResultTest, HoldsTransportErrorCodes) {
  Result<int> unavailable(Status::Unavailable("request dropped"));
  EXPECT_FALSE(unavailable.ok());
  EXPECT_EQ(unavailable.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(unavailable.status().IsRetryable());

  Result<int> deadline(Status::DeadlineExceeded("too slow"));
  EXPECT_EQ(deadline.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(deadline.status().IsRetryable());

  Result<int> loss(Status::DataLoss("bad frame"));
  EXPECT_EQ(loss.status().code(), StatusCode::kDataLoss);
  EXPECT_TRUE(loss.status().IsRetryable());
}

Result<int> FailsWith(StatusCode code, int depth) {
  if (depth == 0) {
    switch (code) {
      case StatusCode::kUnavailable: return Status::Unavailable("leaf");
      case StatusCode::kDataLoss: return Status::DataLoss("leaf");
      default: return Status::DeadlineExceeded("leaf");
    }
  }
  CASPER_ASSIGN_OR_RETURN(inner, FailsWith(code, depth - 1));
  return inner + 1;
}

TEST(ResultTest, TransportCodesPropagateThroughAssignOrReturn) {
  // The new codes must survive N levels of CASPER_ASSIGN_OR_RETURN
  // unchanged — the same path a status takes from a Channel through
  // ResilientClient, EvaluateTraced, and Execute.
  for (const StatusCode code :
       {StatusCode::kUnavailable, StatusCode::kDataLoss,
        StatusCode::kDeadlineExceeded}) {
    auto propagated = FailsWith(code, 3);
    ASSERT_FALSE(propagated.ok());
    EXPECT_EQ(propagated.status().code(), code);
    EXPECT_EQ(propagated.status().message(), "leaf");
  }
}

}  // namespace
}  // namespace casper
