#include <gtest/gtest.h>

#include "src/common/geometry.h"
#include "src/common/rng.h"

/// Randomized property sweeps over the geometry kernels that every
/// correctness proof in the query processor leans on.

namespace casper {
namespace {

Rect RandomRect(Rng* rng, const Rect& space) {
  const Point a = rng->PointIn(space);
  const Point b = rng->PointIn(space);
  return Rect(std::min(a.x, b.x), std::min(a.y, b.y), std::max(a.x, b.x),
              std::max(a.y, b.y));
}

class GeometryPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeometryPropertyTest, MinMaxDistBracketEveryInteriorPoint) {
  Rng rng(GetParam());
  const Rect space(-2, -2, 2, 2);
  for (int i = 0; i < 300; ++i) {
    const Rect r = RandomRect(&rng, space);
    const Point q = rng.PointIn(space);
    const double lo = MinDist(q, r);
    const double hi = MaxDist(q, r);
    EXPECT_LE(lo, hi + 1e-12);
    for (int s = 0; s < 10; ++s) {
      const Point p = rng.PointIn(r);
      const double d = Distance(q, p);
      EXPECT_GE(d, lo - 1e-12);
      EXPECT_LE(d, hi + 1e-12);
    }
  }
}

TEST_P(GeometryPropertyTest, UnionContainsBothAndIsMinimal) {
  Rng rng(GetParam() + 100);
  const Rect space(0, 0, 1, 1);
  for (int i = 0; i < 300; ++i) {
    const Rect a = RandomRect(&rng, space);
    const Rect b = RandomRect(&rng, space);
    const Rect u = a.Union(b);
    EXPECT_TRUE(u.Contains(a));
    EXPECT_TRUE(u.Contains(b));
    // Minimality: each side of the union touches a or b.
    EXPECT_TRUE(u.min.x == a.min.x || u.min.x == b.min.x);
    EXPECT_TRUE(u.max.x == a.max.x || u.max.x == b.max.x);
    EXPECT_TRUE(u.min.y == a.min.y || u.min.y == b.min.y);
    EXPECT_TRUE(u.max.y == a.max.y || u.max.y == b.max.y);
  }
}

TEST_P(GeometryPropertyTest, IntersectionAreaSymmetricAndBounded) {
  Rng rng(GetParam() + 200);
  const Rect space(0, 0, 1, 1);
  for (int i = 0; i < 300; ++i) {
    const Rect a = RandomRect(&rng, space);
    const Rect b = RandomRect(&rng, space);
    const double ab = a.IntersectionArea(b);
    EXPECT_DOUBLE_EQ(ab, b.IntersectionArea(a));
    EXPECT_GE(ab, 0.0);
    EXPECT_LE(ab, std::min(a.Area(), b.Area()) + 1e-15);
    // Positive overlap implies intersection (the converse fails only
    // for boundary touches, where the area is 0 by construction).
    if (ab > 0.0) {
      EXPECT_TRUE(a.Intersects(b));
    }
    // Containment implies overlap equals the contained area.
    if (a.Contains(b)) {
      EXPECT_NEAR(ab, b.Area(), 1e-15);
    }
  }
}

TEST_P(GeometryPropertyTest, IntersectsConsistentWithMinDist) {
  Rng rng(GetParam() + 300);
  const Rect space(0, 0, 1, 1);
  for (int i = 0; i < 500; ++i) {
    const Rect a = RandomRect(&rng, space);
    const Point q = rng.PointIn(space);
    EXPECT_EQ(a.Contains(q), MinDist(q, a) == 0.0);
  }
}

TEST_P(GeometryPropertyTest, ExpandedContainsOriginalAndGrowsMonotonic) {
  Rng rng(GetParam() + 400);
  const Rect space(0, 0, 1, 1);
  for (int i = 0; i < 200; ++i) {
    const Rect r = RandomRect(&rng, space);
    const double d1 = rng.Uniform(0, 0.5);
    const double d2 = d1 + rng.Uniform(0, 0.5);
    EXPECT_TRUE(r.Expanded(d1).Contains(r));
    EXPECT_TRUE(r.Expanded(d2).Contains(r.Expanded(d1)));
    // Every point within distance d of r lies inside r.Expanded(d).
    const Point q = rng.PointIn(space);
    if (MinDist(q, r) <= d1) {
      EXPECT_TRUE(r.Expanded(d1).Contains(q));
    }
  }
}

TEST_P(GeometryPropertyTest, FurthestCornerRealizesMaxDist) {
  Rng rng(GetParam() + 500);
  const Rect space(-1, -1, 2, 2);
  for (int i = 0; i < 400; ++i) {
    const Rect r = RandomRect(&rng, space);
    const Point q = rng.PointIn(space);
    const Point c = FurthestCorner(q, r);
    EXPECT_TRUE(r.Contains(c));
    EXPECT_NEAR(Distance(q, c), MaxDist(q, r), 1e-12);
  }
}

TEST_P(GeometryPropertyTest, BisectorSplitsEdgeByNearerAnchor) {
  Rng rng(GetParam() + 600);
  const Rect space(0, 0, 1, 1);
  for (int i = 0; i < 300; ++i) {
    const Point s = rng.PointIn(space);
    const Point t = rng.PointIn(space);
    const Segment edge{rng.PointIn(space), rng.PointIn(space)};
    Point m;
    if (!BisectorEdgeIntersection(s, t, edge, &m)) continue;
    // Points on the edge on either side of m prefer the corresponding
    // anchor. Sample along the edge.
    for (int k = 0; k <= 10; ++k) {
      const double u = k / 10.0;
      const Point p{edge.a.x + u * (edge.b.x - edge.a.x),
                    edge.a.y + u * (edge.b.y - edge.a.y)};
      const double towards_m = Distance(p, m);
      const double via_s = Distance(p, s);
      const double via_t = Distance(p, t);
      // Equidistance at m itself.
      if (towards_m < 1e-12) {
        EXPECT_NEAR(via_s, via_t, 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeometryPropertyTest,
                         ::testing::Values(11ull, 22ull, 33ull, 44ull));

}  // namespace
}  // namespace casper
