#include "src/processor/concurrent_query_cache.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/common/rng.h"

namespace casper::processor {
namespace {

PublicTargetStore MakeStore(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<PublicTarget> targets;
  for (uint64_t i = 0; i < n; ++i) {
    targets.push_back({i, rng.PointIn(Rect(0, 0, 1, 1))});
  }
  return PublicTargetStore(targets);
}

std::vector<uint64_t> Ids(const PublicCandidateList& list) {
  std::vector<uint64_t> ids;
  for (const auto& t : list.candidates) ids.push_back(t.id);
  return ids;
}

std::vector<Rect> CellAlignedCloaks(int per_side) {
  std::vector<Rect> cloaks;
  const double step = 1.0 / per_side;
  for (int i = 0; i < per_side; ++i) {
    for (int j = 0; j < per_side; ++j) {
      cloaks.push_back(
          Rect(i * step, j * step, (i + 1) * step, (j + 1) * step));
    }
  }
  return cloaks;
}

TEST(ConcurrentQueryCacheTest, AnswersMatchDirectEvaluation) {
  PublicTargetStore store = MakeStore(400, 1);
  ConcurrentQueryCache cache(&store, 64);
  for (const Rect& cloak : CellAlignedCloaks(4)) {
    auto cached = cache.Query(cloak);
    auto again = cache.Query(cloak);
    auto direct = PrivateNearestNeighbor(store, cloak);
    ASSERT_TRUE(cached.ok());
    ASSERT_TRUE(again.ok());
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(Ids(*cached), Ids(*direct));
    EXPECT_EQ(Ids(*again), Ids(*direct));
  }
  const QueryCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 16u);
  EXPECT_EQ(stats.hits, 16u);
}

TEST(ConcurrentQueryCacheTest, SharedAcrossThreads) {
  PublicTargetStore store = MakeStore(500, 2);
  ConcurrentQueryCache cache(&store, 64, FilterPolicy::kFourFilters, 8);
  const std::vector<Rect> cloaks = CellAlignedCloaks(4);

  // Precompute reference answers single-threaded.
  std::vector<std::vector<uint64_t>> expected;
  for (const Rect& cloak : cloaks) {
    auto direct = PrivateNearestNeighbor(store, cloak);
    ASSERT_TRUE(direct.ok());
    expected.push_back(Ids(*direct));
  }

  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 200;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(100 + t);
      for (int q = 0; q < kQueriesPerThread; ++q) {
        const size_t i = rng.UniformInt(0, cloaks.size() - 1);
        auto answer = cache.Query(cloaks[i]);
        if (!answer.ok() || Ids(*answer) != expected[i]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(mismatches.load(), 0);
  const QueryCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads * kQueriesPerThread));
  // 16 distinct cloaks, capacity 64: at most one miss per cloak.
  EXPECT_LE(stats.misses, cloaks.size());
  EXPECT_GT(stats.HitRate(), 0.95);
}

TEST(ConcurrentQueryCacheTest, InvalidateAllDropsStaleAnswers) {
  PublicTargetStore store = MakeStore(200, 3);
  ConcurrentQueryCache cache(&store, 32);
  const Rect cloak(0.45, 0.45, 0.55, 0.55);
  auto before = cache.Query(cloak);
  ASSERT_TRUE(before.ok());

  store.Insert({9999, {0.5, 0.5}});
  cache.InvalidateAll();
  auto after = cache.Query(cloak);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->size(), before->size() + 1);
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(ConcurrentQueryCacheTest, ConcurrentQueriesWithInvalidation) {
  // Readers race with periodic invalidations on a store that never
  // changes — every answer must still match the direct evaluation.
  PublicTargetStore store = MakeStore(300, 4);
  ConcurrentQueryCache cache(&store, 32, FilterPolicy::kFourFilters, 4);
  const std::vector<Rect> cloaks = CellAlignedCloaks(3);
  std::vector<std::vector<uint64_t>> expected;
  for (const Rect& cloak : cloaks) {
    auto direct = PrivateNearestNeighbor(store, cloak);
    ASSERT_TRUE(direct.ok());
    expected.push_back(Ids(*direct));
  }

  std::atomic<int> mismatches{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(200 + t);
      for (int q = 0; q < 300; ++q) {
        const size_t i = rng.UniformInt(0, cloaks.size() - 1);
        auto answer = cache.Query(cloaks[i]);
        if (!answer.ok() || Ids(*answer) != expected[i]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::thread invalidator([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      cache.InvalidateAll();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  for (auto& th : readers) th.join();
  stop.store(true, std::memory_order_relaxed);
  invalidator.join();

  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ConcurrentQueryCacheTest, CapacitySplitsAcrossShards) {
  PublicTargetStore store = MakeStore(100, 5);
  ConcurrentQueryCache cache(&store, 16, FilterPolicy::kFourFilters, 4);
  EXPECT_EQ(cache.shard_count(), 4u);
  // Far more distinct cloaks than capacity: resident entries stay
  // bounded by capacity (+ rounding slack per shard).
  Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    const Point c = rng.PointIn(Rect(0, 0, 0.9, 0.9));
    ASSERT_TRUE(cache.Query(Rect(c.x, c.y, c.x + 0.05, c.y + 0.05)).ok());
  }
  EXPECT_LE(cache.size(), 16u + 4u);
}

}  // namespace
}  // namespace casper::processor
