#include <gtest/gtest.h>

#include <algorithm>

#include "src/casper/casper.h"
#include "src/casper/workload.h"
#include "src/common/rng.h"

/// Service-level coverage of the extended query types: private k-NN,
/// public NN over private data, and the expected-density aggregate.

namespace casper {
namespace {

CasperService MakeService(size_t users, size_t targets, uint64_t seed) {
  CasperOptions options;
  options.pyramid.height = 6;
  CasperService service(options);
  Rng rng(seed);
  const Rect space = service.options().pyramid.space;
  for (anonymizer::UserId uid = 0; uid < users; ++uid) {
    anonymizer::PrivacyProfile profile;
    profile.k = static_cast<uint32_t>(rng.UniformInt(1, 10));
    EXPECT_TRUE(service.RegisterUser(uid, profile, rng.PointIn(space)).ok());
  }
  service.SetPublicTargets(
      workload::UniformPublicTargets(targets, space, &rng));
  return service;
}

TEST(CasperServiceExtendedTest, KNearestMatchesGroundTruth) {
  CasperService service = MakeService(200, 500, 1);
  for (anonymizer::UserId uid = 0; uid < 200; uid += 23) {
    auto response = service.QueryKNearestPublic(uid, 5);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_EQ(response->exact.size(), 5u);
    auto pos = service.ClientPosition(uid);
    ASSERT_TRUE(pos.ok());
    const auto truth = service.public_store().KNearest(*pos, 5);
    for (size_t i = 0; i < 5; ++i) {
      EXPECT_NEAR(Distance(*pos, response->exact[i].position),
                  Distance(*pos, truth[i].position), 1e-12);
    }
    EXPECT_TRUE(response->cloak.region.Contains(*pos));
    EXPECT_GE(response->server_answer.size(), 5u);
  }
}

TEST(CasperServiceExtendedTest, KnnErrorPaths) {
  CasperService service = MakeService(20, 3, 2);
  EXPECT_EQ(service.QueryKNearestPublic(0, 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service.QueryKNearestPublic(0, 4).status().code(),
            StatusCode::kNotFound);  // Only 3 targets.
  EXPECT_EQ(service.QueryKNearestPublic(999, 1).status().code(),
            StatusCode::kNotFound);
}

TEST(CasperServiceExtendedTest, PublicNearestRequiresSyncAndIsInclusive) {
  CasperService service = MakeService(100, 10, 3);
  EXPECT_EQ(service.QueryPublicNearest({0.5, 0.5}).status().code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(service.SyncPrivateData().ok());

  const Point q{0.5, 0.5};
  auto result = service.QueryPublicNearest(q);
  ASSERT_TRUE(result.ok());
  ASSERT_GT(result->candidates.size(), 0u);

  // The true nearest user (by exact position, which only the harness
  // knows) must own one of the candidate regions.
  anonymizer::UserId best = 0;
  double best_d = 1e300;
  for (anonymizer::UserId uid = 0; uid < 100; ++uid) {
    auto pos = service.ClientPosition(uid);
    ASSERT_TRUE(pos.ok());
    const double d = SquaredDistance(q, *pos);
    if (d < best_d) {
      best_d = d;
      best = uid;
    }
  }
  bool found = false;
  for (const auto& c : result->candidates) {
    auto resolved = service.ResolvePseudonym(c.target.id);
    ASSERT_TRUE(resolved.ok());
    if (*resolved == best) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(CasperServiceExtendedTest, DensityTracksPopulation) {
  CasperService service = MakeService(400, 10, 4);
  ASSERT_TRUE(service.SyncPrivateData().ok());
  auto map = service.QueryDensity(4, 4);
  ASSERT_TRUE(map.ok());
  // Everyone's cloak is inside the space, so the mass sums to 400.
  EXPECT_NEAR(map->Total(), 400.0, 1e-6);

  // Per-quadrant expected counts track the true per-quadrant counts
  // within the cloak-induced uncertainty.
  double expected_sw = 0.0;
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 2; ++c) expected_sw += map->At(c, r);
  }
  size_t true_sw = 0;
  for (anonymizer::UserId uid = 0; uid < 400; ++uid) {
    auto pos = service.ClientPosition(uid);
    ASSERT_TRUE(pos.ok());
    if (pos->x <= 0.5 && pos->y <= 0.5) ++true_sw;
  }
  EXPECT_NEAR(expected_sw, static_cast<double>(true_sw), 40.0);
}

TEST(CasperServiceExtendedTest, DensityRequiresSync) {
  CasperService service = MakeService(10, 5, 5);
  EXPECT_EQ(service.QueryDensity(2, 2).status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace casper
