#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/casper/messages.h"
#include "src/common/rng.h"
#include "src/processor/continuous.h"
#include "src/processor/private_nn.h"

namespace casper::processor {
namespace {

/// Differential soak for the ContinuousQueryManager: a long randomized
/// interleaving of cloak moves, cloak shrinks (the containment
/// shortcut), target inserts, and target removals, where after EVERY
/// event each live query's stored answer is checked against a fresh
/// Algorithm 2 evaluation — byte-equal on the wire whenever the stored
/// list must be minimal, inclusiveness + refinement-equivalence on the
/// shortcut paths where the stored list may be a superset.

std::string WireBytes(const PublicCandidateList& list) {
  CandidateListMsg msg;
  msg.kind = QueryKind::kNearestPublic;
  msg.payload = list;
  return Encode(msg);
}

Rect RandomCloak(Rng* rng) {
  const Point c = rng->PointIn(Rect(0.05, 0.05, 0.85, 0.85));
  const double w = rng->Uniform(0.01, 0.12);
  const double h = rng->Uniform(0.01, 0.12);
  return Rect(c.x, c.y, std::min(c.x + w, 1.0), std::min(c.y + h, 1.0));
}

/// A cloak strictly inside `outer` (triggers the containment reuse).
Rect ShrunkCloak(const Rect& outer, Rng* rng) {
  const double w = outer.width() * rng->Uniform(0.3, 0.8);
  const double h = outer.height() * rng->Uniform(0.3, 0.8);
  const Point o = rng->PointIn(Rect(outer.min.x, outer.min.y,
                                    outer.max.x - w, outer.max.y - h));
  return Rect(o.x, o.y, o.x + w, o.y + h);
}

TEST(ContinuousSoakTest, RandomizedInterleavingMatchesFreshEvaluation) {
  Rng rng(20260807);
  std::vector<PublicTarget> initial;
  for (uint64_t i = 0; i < 120; ++i) {
    initial.push_back(PublicTarget{i, rng.PointIn(Rect(0, 0, 1, 1))});
  }
  PublicTargetStore store(initial);
  ContinuousQueryManager manager(&store);

  struct Tracked {
    QueryId qid;
    bool recomputed;  ///< Last event for this query ran Algorithm 2.
  };
  std::vector<Tracked> queries;
  for (int i = 0; i < 24; ++i) {
    auto qid = manager.Register(RandomCloak(&rng));
    ASSERT_TRUE(qid.ok());
    queries.push_back({*qid, true});
  }
  uint64_t next_target_id = 1000;
  std::vector<PublicTarget> inserted;

  const auto check_all = [&] {
    for (const Tracked& t : queries) {
      auto cloak = manager.CloakOf(t.qid);
      auto stored = manager.Answer(t.qid);
      ASSERT_TRUE(cloak.ok() && stored.ok());
      auto fresh = PrivateNearestNeighbor(store, *cloak, stored->policy);
      ASSERT_TRUE(fresh.ok());
      if (t.recomputed) {
        // Full evaluations must be bit-identical to an independent one.
        ASSERT_EQ(WireBytes(*stored), WireBytes(*fresh));
        continue;
      }
      // Shortcut paths: stored may be a superset, never may it miss a
      // fresh candidate, and both must refine identically everywhere in
      // the cloak (corners + center cover the extreme positions).
      for (const PublicTarget& f : fresh->candidates) {
        ASSERT_TRUE(std::any_of(
            stored->candidates.begin(), stored->candidates.end(),
            [&f](const PublicTarget& s) { return s == f; }))
            << "fresh candidate " << f.id << " missing from stored list";
      }
      const Point probes[] = {cloak->Center(), cloak->min, cloak->max,
                              Point{cloak->min.x, cloak->max.y},
                              Point{cloak->max.x, cloak->min.y}};
      for (const Point& p : probes) {
        auto rs = RefineNearest(stored->candidates, p);
        auto rf = RefineNearest(fresh->candidates, p);
        ASSERT_TRUE(rs.ok() && rf.ok());
        ASSERT_NEAR(SquaredDistance(rs->position, p),
                    SquaredDistance(rf->position, p), 1e-12);
      }
    }
  };

  const ContinuousStats& stats = manager.stats();
  for (int event = 0; event < 400; ++event) {
    const uint64_t dice = rng.UniformInt(0, 9);
    if (dice < 4) {
      // Move: fresh random cloak (usually a recompute).
      Tracked& t = queries[rng.UniformInt(0, queries.size() - 1)];
      const uint64_t before = stats.evaluations;
      auto answer = manager.OnCloakChanged(t.qid, RandomCloak(&rng));
      ASSERT_TRUE(answer.ok());
      t.recomputed = stats.evaluations > before;
    } else if (dice < 6) {
      // Shrink: contained cloak, must take the reuse shortcut.
      Tracked& t = queries[rng.UniformInt(0, queries.size() - 1)];
      auto cloak = manager.CloakOf(t.qid);
      ASSERT_TRUE(cloak.ok());
      const uint64_t before = stats.reuses;
      auto answer = manager.OnCloakChanged(t.qid, ShrunkCloak(*cloak, &rng));
      ASSERT_TRUE(answer.ok());
      ASSERT_EQ(stats.reuses, before + 1)
          << "contained cloak did not take the containment shortcut";
      t.recomputed = false;
    } else if (dice < 8) {
      // Insert a target; store first, then notify (the contract).
      const PublicTarget target{next_target_id++,
                                rng.PointIn(Rect(0, 0, 1, 1))};
      store.Insert(target);
      ASSERT_TRUE(manager.OnTargetInserted(target).ok());
      inserted.push_back(target);
      for (Tracked& t : queries) t.recomputed = false;
    } else if (!inserted.empty()) {
      // Remove one of ours; no-op for queries it never answered,
      // recompute where it was a candidate.
      const size_t pick = rng.UniformInt(0, inserted.size() - 1);
      const PublicTarget target = inserted[pick];
      inserted.erase(inserted.begin() + static_cast<ptrdiff_t>(pick));
      ASSERT_TRUE(store.Remove(target));
      ASSERT_TRUE(manager.OnTargetRemoved(target).ok());
      for (Tracked& t : queries) t.recomputed = false;
    }
    check_all();
  }

  // The soak must actually have exercised every shortcut class, or the
  // differential check proved nothing.
  EXPECT_GT(stats.evaluations, 0u);
  EXPECT_GT(stats.reuses, 0u);
  EXPECT_GT(stats.insert_patches + stats.removal_no_ops, 0u);

  // Counter consistency: every counted outcome maps to an event class,
  // and re-registering all queries still leaves the books balanced.
  const uint64_t outcomes = stats.evaluations + stats.reuses +
                            stats.insert_patches + stats.removal_no_ops +
                            stats.removal_recomputes;
  EXPECT_GT(outcomes, 400u);  // At least one outcome per event.

  for (const Tracked& t : queries) {
    EXPECT_TRUE(manager.Unregister(t.qid).ok());
  }
  EXPECT_EQ(manager.query_count(), 0u);
}

}  // namespace
}  // namespace casper::processor
