#include "src/common/stats.h"

#include <gtest/gtest.h>

namespace casper {
namespace {

TEST(SummaryStatsTest, EmptyIsZero) {
  SummaryStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.StdDev(), 0.0);
}

TEST(SummaryStatsTest, BasicMoments) {
  SummaryStats s;
  for (double v : {2.0, 4.0, 6.0, 8.0}) s.Add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.sum(), 20.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 8.0);
}

TEST(SummaryStatsTest, QuantilesOnUnsortedInput) {
  SummaryStats s;
  for (double v : {9.0, 1.0, 5.0, 3.0, 7.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 9.0);
}

TEST(SummaryStatsTest, AddAfterQuantileStillCorrect) {
  SummaryStats s;
  s.Add(10.0);
  s.Add(0.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 10.0);
  s.Add(20.0);
  s.Add(-5.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), -5.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 20.0);
}

TEST(SummaryStatsTest, StdDevOfConstantIsZero) {
  SummaryStats s;
  for (int i = 0; i < 10; ++i) s.Add(4.2);
  EXPECT_NEAR(s.StdDev(), 0.0, 1e-12);
}

TEST(SummaryStatsTest, StdDevSample) {
  SummaryStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  // Sample standard deviation of the classic example set.
  EXPECT_NEAR(s.StdDev(), 2.138089935299395, 1e-12);
}

TEST(SummaryStatsTest, Merge) {
  SummaryStats a;
  SummaryStats b;
  a.Add(1.0);
  a.Add(2.0);
  b.Add(3.0);
  b.Add(4.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.5);
  EXPECT_DOUBLE_EQ(a.max(), 4.0);
}

}  // namespace
}  // namespace casper
