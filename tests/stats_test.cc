#include "src/common/stats.h"

#include <gtest/gtest.h>

namespace casper {
namespace {

TEST(SummaryStatsTest, EmptyIsZero) {
  SummaryStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.StdDev(), 0.0);
}

TEST(SummaryStatsTest, BasicMoments) {
  SummaryStats s;
  for (double v : {2.0, 4.0, 6.0, 8.0}) s.Add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.sum(), 20.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 8.0);
}

TEST(SummaryStatsTest, QuantilesOnUnsortedInput) {
  SummaryStats s;
  for (double v : {9.0, 1.0, 5.0, 3.0, 7.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 9.0);
}

TEST(SummaryStatsTest, AddAfterQuantileStillCorrect) {
  SummaryStats s;
  s.Add(10.0);
  s.Add(0.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 10.0);
  s.Add(20.0);
  s.Add(-5.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), -5.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 20.0);
}

// Regression: Quantile is nearest-rank — sorted[max(1, ceil(q*n)) - 1].
// The old implementation truncated (q * n) toward zero, which returned
// the element *below* the requested rank for most q (e.g. p95 of five
// samples returned sorted[4*0.95=3] instead of sorted[4]).
TEST(SummaryStatsTest, QuantileUsesNearestRank) {
  SummaryStats s;
  for (double v : {10.0, 20.0, 30.0, 40.0, 50.0}) s.Add(v);
  // ceil(0.2*5)=1 -> first element; the old floor code agreed here.
  EXPECT_DOUBLE_EQ(s.Quantile(0.2), 10.0);
  // ceil(0.5*5)=3 -> the true median of an odd-sized sample.
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 30.0);
  // ceil(0.95*5)=5 -> the maximum, not sorted[3]=40.
  EXPECT_DOUBLE_EQ(s.Quantile(0.95), 50.0);
  // q=0 clamps the rank to 1 instead of indexing sorted[-1].
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 10.0);

  // Even-sized sample: ceil(0.5*4)=2.
  SummaryStats even;
  for (double v : {1.0, 2.0, 3.0, 4.0}) even.Add(v);
  EXPECT_DOUBLE_EQ(even.Quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(even.Quantile(0.75), 3.0);
  EXPECT_DOUBLE_EQ(even.Quantile(0.76), 4.0);
}

TEST(SummaryStatsTest, MergePreservesQuantilesAndMoments) {
  SummaryStats a;
  SummaryStats b;
  for (double v : {5.0, 1.0, 9.0}) a.Add(v);
  for (double v : {3.0, 7.0}) b.Add(v);
  a.Merge(b);
  EXPECT_EQ(a.count(), 5u);
  EXPECT_DOUBLE_EQ(a.sum(), 25.0);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  // Merged samples re-sort: the median sees both sides.
  EXPECT_DOUBLE_EQ(a.Quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(a.Quantile(1.0), 9.0);
  // Merging an empty accumulator is a no-op.
  SummaryStats empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 5u);
}

TEST(SummaryStatsTest, StdDevOfConstantIsZero) {
  SummaryStats s;
  for (int i = 0; i < 10; ++i) s.Add(4.2);
  EXPECT_NEAR(s.StdDev(), 0.0, 1e-12);
}

TEST(SummaryStatsTest, StdDevSample) {
  SummaryStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  // Sample standard deviation of the classic example set.
  EXPECT_NEAR(s.StdDev(), 2.138089935299395, 1e-12);
}

TEST(SummaryStatsTest, Merge) {
  SummaryStats a;
  SummaryStats b;
  a.Add(1.0);
  a.Add(2.0);
  b.Add(3.0);
  b.Add(4.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.5);
  EXPECT_DOUBLE_EQ(a.max(), 4.0);
}

}  // namespace
}  // namespace casper
