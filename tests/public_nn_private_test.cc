#include "src/processor/public_nn_private.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/rng.h"

namespace casper::processor {
namespace {

std::vector<PrivateTarget> RandomRegions(size_t n, Rng* rng,
                                         double max_extent) {
  std::vector<PrivateTarget> targets;
  for (uint64_t i = 0; i < n; ++i) {
    const Point c = rng->PointIn(Rect(0, 0, 1, 1));
    targets.push_back(
        {i, Rect(c.x, c.y, std::min(c.x + rng->Uniform(0, max_extent), 1.0),
                 std::min(c.y + rng->Uniform(0, max_extent), 1.0))});
  }
  return targets;
}

TEST(PublicNNPrivateTest, EmptyStore) {
  PrivateTargetStore store;
  EXPECT_EQ(PublicNearestNeighborOverPrivate(store, {0.5, 0.5})
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(PublicNNPrivateTest, SingleRegionIsTheAnswer) {
  PrivateTargetStore store;
  store.Insert({7, Rect(0.4, 0.4, 0.6, 0.6)});
  auto result = PublicNearestNeighborOverPrivate(store, {0.1, 0.1});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->candidates.size(), 1u);
  EXPECT_EQ(result->candidates[0].target.id, 7u);
  EXPECT_NEAR(result->minimax_bound, Distance({0.1, 0.1}, {0.6, 0.6}),
              1e-12);
}

TEST(PublicNNPrivateTest, BoundsAndOrdering) {
  Rng rng(1);
  PrivateTargetStore store(RandomRegions(200, &rng, 0.1));
  auto result = PublicNearestNeighborOverPrivate(store, {0.5, 0.5});
  ASSERT_TRUE(result.ok());
  ASSERT_GT(result->candidates.size(), 0u);
  for (size_t i = 0; i < result->candidates.size(); ++i) {
    const auto& c = result->candidates[i];
    EXPECT_LE(c.min_dist, result->minimax_bound + 1e-12);
    EXPECT_LE(c.min_dist, c.max_dist);
    if (i > 0) {
      EXPECT_GE(c.min_dist, result->candidates[i - 1].min_dist);
    }
  }
}

TEST(PublicNNPrivateTest, InclusivenessUnderRealization) {
  // Whatever the true user positions inside their regions, the user
  // nearest to the query must own a candidate region.
  Rng rng(2);
  auto regions = RandomRegions(150, &rng, 0.15);
  PrivateTargetStore store(regions);

  for (int trial = 0; trial < 50; ++trial) {
    const Point q = rng.PointIn(Rect(0, 0, 1, 1));
    auto result = PublicNearestNeighborOverPrivate(store, q);
    ASSERT_TRUE(result.ok());
    std::vector<uint64_t> ids;
    for (const auto& c : result->candidates) ids.push_back(c.target.id);
    std::sort(ids.begin(), ids.end());

    for (int realization = 0; realization < 20; ++realization) {
      uint64_t best = 0;
      double best_d = 1e300;
      for (const auto& r : regions) {
        const Point actual = rng.PointIn(r.region);
        const double d = SquaredDistance(q, actual);
        if (d < best_d) {
          best_d = d;
          best = r.id;
        }
      }
      EXPECT_TRUE(std::binary_search(ids.begin(), ids.end(), best));
    }
  }
}

TEST(PublicNNPrivateTest, CandidateSetIsExactMinimaxSet) {
  Rng rng(3);
  auto regions = RandomRegions(300, &rng, 0.1);
  PrivateTargetStore store(regions);
  const Point q{0.3, 0.7};
  auto result = PublicNearestNeighborOverPrivate(store, q);
  ASSERT_TRUE(result.ok());

  double bound = 1e300;
  for (const auto& r : regions) bound = std::min(bound, MaxDist(q, r.region));
  EXPECT_NEAR(result->minimax_bound, bound, 1e-12);

  std::vector<uint64_t> expect;
  for (const auto& r : regions) {
    if (MinDist(q, r.region) <= bound) expect.push_back(r.id);
  }
  std::sort(expect.begin(), expect.end());
  std::vector<uint64_t> got;
  for (const auto& c : result->candidates) got.push_back(c.target.id);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expect);
}

}  // namespace
}  // namespace casper::processor
