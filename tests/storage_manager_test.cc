#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>

#include "src/obs/casper_metrics.h"
#include "src/obs/metrics.h"
#include "src/storage/disk_storage.h"
#include "src/storage/memory_storage.h"
#include "src/storage/storage_manager.h"

/// IStorageManager contract tests, run against both backends, plus the
/// disk backend's durability semantics: only Flush()ed state survives a
/// reopen, and an overwrite that never committed leaves the previous
/// committed payload intact (copy-on-write slots).

namespace casper::storage {
namespace {

std::string TestPath(const char* name) {
  std::string safe = name;
  std::replace(safe.begin(), safe.end(), '/', '_');
  return testing::TempDir() + "casper_storage_" + safe + "_" +
         std::to_string(::getpid());
}

/// Both backends behind one fixture: the disk variant gets a private
/// metrics bundle so counter asserts elsewhere never race the global
/// registry.
class StorageManagerTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    if (GetParam()) {
      registry_ = std::make_unique<obs::MetricsRegistry>();
      metrics_ = std::make_unique<obs::CasperMetrics>(registry_.get());
      DiskStorageOptions options;
      options.metrics = metrics_.get();
      path_ = TestPath(
          ::testing::UnitTest::GetInstance()->current_test_info()->name());
      auto created = DiskStorageManager::Create(path_, options);
      ASSERT_TRUE(created.ok()) << created.status().ToString();
      disk_ = std::move(created).value();
      sm_ = disk_.get();
    } else {
      memory_ = std::make_unique<MemoryStorageManager>();
      sm_ = memory_.get();
    }
  }

  void TearDown() override {
    disk_.reset();
    if (!path_.empty()) {
      std::remove((path_ + ".dat").c_str());
      std::remove((path_ + ".idx").c_str());
    }
  }

  IStorageManager* sm_ = nullptr;
  std::string path_;
  std::unique_ptr<obs::MetricsRegistry> registry_;
  std::unique_ptr<obs::CasperMetrics> metrics_;
  std::unique_ptr<MemoryStorageManager> memory_;
  std::unique_ptr<DiskStorageManager> disk_;
};

TEST_P(StorageManagerTest, StoreLoadRoundTrip) {
  auto id = sm_->Store(kNoPage, "hello pages");
  ASSERT_TRUE(id.ok());
  std::string out;
  ASSERT_TRUE(sm_->Load(*id, &out).ok());
  EXPECT_EQ(out, "hello pages");
}

TEST_P(StorageManagerTest, EmptyPageRoundTrip) {
  auto id = sm_->Store(kNoPage, "");
  ASSERT_TRUE(id.ok());
  std::string out = "stale";
  ASSERT_TRUE(sm_->Load(*id, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST_P(StorageManagerTest, LargePageRoundTrip) {
  // Spans many physical slots on the disk backend.
  std::string big;
  for (int i = 0; i < 50000; ++i) big.push_back(static_cast<char>(i * 31));
  auto id = sm_->Store(kNoPage, big);
  ASSERT_TRUE(id.ok());
  std::string out;
  ASSERT_TRUE(sm_->Load(*id, &out).ok());
  EXPECT_EQ(out, big);
}

TEST_P(StorageManagerTest, AllocatedIdsAreDistinct) {
  auto a = sm_->Store(kNoPage, "a");
  auto b = sm_->Store(kNoPage, "b");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(*a, *b);
  std::string out;
  ASSERT_TRUE(sm_->Load(*a, &out).ok());
  EXPECT_EQ(out, "a");
}

TEST_P(StorageManagerTest, OverwriteReplacesAndCanShrinkOrGrow) {
  auto id = sm_->Store(kNoPage, std::string(9000, 'x'));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(sm_->Store(*id, "small now").ok());
  std::string out;
  ASSERT_TRUE(sm_->Load(*id, &out).ok());
  EXPECT_EQ(out, "small now");
  ASSERT_TRUE(sm_->Store(*id, std::string(20000, 'y')).ok());
  ASSERT_TRUE(sm_->Load(*id, &out).ok());
  EXPECT_EQ(out, std::string(20000, 'y'));
}

TEST_P(StorageManagerTest, MissingPageIsNotFound) {
  std::string out;
  EXPECT_EQ(sm_->Load(999, &out).code(), StatusCode::kNotFound);
  EXPECT_EQ(sm_->Store(999, "x").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(sm_->Delete(999).code(), StatusCode::kNotFound);
}

TEST_P(StorageManagerTest, DeleteThenLoadIsNotFound) {
  auto id = sm_->Store(kNoPage, "doomed");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(sm_->Delete(*id).ok());
  std::string out;
  EXPECT_EQ(sm_->Load(*id, &out).code(), StatusCode::kNotFound);
}

TEST_P(StorageManagerTest, DeletedIdsAreReused) {
  auto a = sm_->Store(kNoPage, "a");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(sm_->Delete(*a).ok());
  auto b = sm_->Store(kNoPage, "b");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST_P(StorageManagerTest, RootSlots) {
  for (size_t slot = 0; slot < kRootSlots; ++slot) {
    auto unset = sm_->Root(slot);
    ASSERT_TRUE(unset.ok());
    EXPECT_EQ(*unset, kNoPage);
  }
  ASSERT_TRUE(sm_->SetRoot(1, 42).ok());
  auto root = sm_->Root(1);
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(*root, 42u);
  EXPECT_EQ(sm_->SetRoot(kRootSlots, 1).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(sm_->Root(kRootSlots).status().code(), StatusCode::kOutOfRange);
}

INSTANTIATE_TEST_SUITE_P(Backends, StorageManagerTest,
                         ::testing::Values(false, true),
                         [](const auto& info) {
                           return info.param ? "Disk" : "Memory";
                         });

class DiskReopenTest : public ::testing::Test {
 protected:
  void TearDown() override {
    std::remove((path_ + ".dat").c_str());
    std::remove((path_ + ".idx").c_str());
  }
  std::string path_;
};

TEST_F(DiskReopenTest, FlushedStateSurvivesReopen) {
  path_ = TestPath("reopen");
  PageId id_a, id_b;
  {
    auto created = DiskStorageManager::Create(path_);
    ASSERT_TRUE(created.ok());
    auto& sm = **created;
    auto a = sm.Store(kNoPage, "alpha");
    auto b = sm.Store(kNoPage, std::string(10000, 'b'));
    ASSERT_TRUE(a.ok() && b.ok());
    id_a = *a;
    id_b = *b;
    ASSERT_TRUE(sm.SetRoot(0, id_a).ok());
    ASSERT_TRUE(sm.Flush().ok());
  }
  auto opened = DiskStorageManager::Open(path_);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  auto& sm = **opened;
  std::string out;
  ASSERT_TRUE(sm.Load(id_a, &out).ok());
  EXPECT_EQ(out, "alpha");
  ASSERT_TRUE(sm.Load(id_b, &out).ok());
  EXPECT_EQ(out, std::string(10000, 'b'));
  auto root = sm.Root(0);
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(*root, id_a);
}

TEST_F(DiskReopenTest, UncommittedOverwriteDoesNotReachDisk) {
  path_ = TestPath("cow");
  PageId id;
  {
    auto created = DiskStorageManager::Create(path_);
    ASSERT_TRUE(created.ok());
    auto& sm = **created;
    auto stored = sm.Store(kNoPage, "committed payload");
    ASSERT_TRUE(stored.ok());
    id = *stored;
    ASSERT_TRUE(sm.Flush().ok());
    // Overwrite WITHOUT flushing — simulates a crash mid-update. The
    // copy-on-write slot policy must leave the committed bytes intact.
    ASSERT_TRUE(sm.Store(id, "torn uncommitted overwrite").ok());
  }
  auto opened = DiskStorageManager::Open(path_);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::string out;
  ASSERT_TRUE((*opened)->Load(id, &out).ok());
  EXPECT_EQ(out, "committed payload");
}

TEST_F(DiskReopenTest, QuarantinedSlotsAreReusableAfterCommit) {
  path_ = TestPath("quarantine");
  auto created = DiskStorageManager::Create(path_);
  ASSERT_TRUE(created.ok());
  auto& sm = **created;
  auto id = sm.Store(kNoPage, std::string(5000, 'x'));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(sm.Store(*id, std::string(5000, 'y')).ok());
  EXPECT_GT(sm.stats().quarantined, 0u);
  ASSERT_TRUE(sm.Flush().ok());
  EXPECT_EQ(sm.stats().quarantined, 0u);
  EXPECT_GT(sm.stats().free_slots, 0u);
  const size_t slots_before = sm.stats().slots;
  ASSERT_TRUE(sm.Store(*id, std::string(5000, 'z')).ok());
  // The rewrite reuses freed slots instead of growing the file.
  EXPECT_EQ(sm.stats().slots, slots_before);
}

TEST_F(DiskReopenTest, MissingFilesAreNotFound) {
  const auto opened = DiskStorageManager::Open(TestPath("missing"));
  EXPECT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kNotFound);
}

TEST_F(DiskReopenTest, CreateUnderMissingParentDirIsTypedNotFound) {
  // Shard handoff writes per-shard checkpoint files under caller-chosen
  // directories; a typo'd directory must surface as a typed error, not
  // an opaque fopen failure.
  const std::string base =
      TestPath("no_such_dir") + "/deeper/checkpoint";
  const auto created = DiskStorageManager::Create(base);
  ASSERT_FALSE(created.ok());
  EXPECT_EQ(created.status().code(), StatusCode::kNotFound);
  EXPECT_NE(created.status().message().find("parent directory"),
            std::string::npos)
      << created.status().ToString();
  // Nothing may have been created on disk.
  EXPECT_FALSE(DiskStorageManager::Open(base).ok());
}

TEST_F(DiskReopenTest, CreateInExistingDirectoryStillWorks) {
  path_ = TestPath("plain_name_in_cwd");
  // A bare file name (parent == ".") and an absolute temp path must both
  // pass the parent check.
  auto created = DiskStorageManager::Create(path_);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  ASSERT_TRUE((*created)->Flush().ok());
}

}  // namespace
}  // namespace casper::storage
