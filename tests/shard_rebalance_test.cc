#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "src/casper/messages.h"
#include "src/obs/metrics.h"
#include "src/sharding/shard_router.h"

/// Hotspot rebalancing: a skewed query load drives the density
/// counters, Rebalance() computes a load-balanced partition, hands
/// cell ranges off through storage-tier checkpoints, and the fleet
/// keeps returning byte-identical answers. A checkpoint directory
/// whose parent does not exist fails with the storage tier's typed
/// kNotFound *before* any state changes.

namespace casper::sharding {
namespace {

constexpr size_t kShards = 4;
constexpr uint32_t kLevel = 3;

class ShardRebalanceTest : public ::testing::Test {
 protected:
  ShardRebalanceTest() {
    ShardRouterOptions options;
    options.num_shards = kShards;
    options.partition_level = kLevel;
    options.space = Rect(0.0, 0.0, 1.0, 1.0);
    options.registry = &registry_;
    router_ = std::make_unique<ShardRouter>(options);

    std::mt19937_64 rng(5150);
    std::uniform_real_distribution<double> coord(0.02, 0.98);
    std::vector<processor::PublicTarget> targets;
    for (uint64_t i = 1; i <= 150; ++i) {
      targets.push_back({i, {coord(rng), coord(rng)}});
    }
    router_->SetPublicTargets(targets);
    SnapshotMsg snapshot;
    for (uint64_t i = 0; i < 48; ++i) {
      const double cx = coord(rng), cy = coord(rng);
      snapshot.regions.push_back(
          {6000 + i, Rect(cx - 0.02, cy - 0.02, cx + 0.02, cy + 0.02)});
    }
    EXPECT_TRUE(router_->Load(snapshot).ok());
  }

  /// A fixed probe workload covering every query kind; answers are
  /// normalized so runs before and after a rebalance compare bytewise.
  std::vector<std::string> ProbeAnswers() {
    std::vector<std::string> answers;
    std::mt19937_64 rng(31337);
    std::uniform_real_distribution<double> coord(0.05, 0.85);
    for (int i = 0; i < 30; ++i) {
      CloakedQueryMsg q;
      q.request_id = 0;  // unkeyed; answers must not depend on load
      const double x = coord(rng), y = coord(rng);
      q.cloak = Rect(x, y, x + 0.1, y + 0.1);
      switch (i % 7) {
        case 0: q.kind = QueryKind::kNearestPublic; break;
        case 1: q.kind = QueryKind::kKNearestPublic; q.k = 4; break;
        case 2: q.kind = QueryKind::kRangePublic; q.radius = 0.05; break;
        case 3: q.kind = QueryKind::kNearestPrivate; break;
        case 4: q.kind = QueryKind::kPublicNearest; q.point = {x, y}; break;
        case 5: q.kind = QueryKind::kPublicRange; q.region = q.cloak; break;
        case 6: q.kind = QueryKind::kDensity; q.cols = 4; q.rows = 4; break;
      }
      auto answer = router_->Execute(q);
      EXPECT_TRUE(answer.ok()) << answer.status().ToString();
      if (!answer.ok()) {
        answers.push_back("error");
        continue;
      }
      EXPECT_FALSE(answer->degraded);
      answer->processor_seconds = 0.0;
      answers.push_back(Encode(*answer));
    }
    return answers;
  }

  /// Hammers one corner of the space so its cells dominate the load.
  void DriveSkewedLoad() {
    for (int i = 0; i < 200; ++i) {
      CloakedQueryMsg q;
      q.kind = QueryKind::kRangePublic;
      q.cloak = Rect(0.05, 0.05, 0.15, 0.15);
      q.radius = 0.01;
      EXPECT_TRUE(router_->Execute(q).ok());
    }
  }

  std::string FreshCheckpointDir(const std::string& leaf) {
    const std::string dir =
        (std::filesystem::path(::testing::TempDir()) / leaf).string();
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
  }

  obs::MetricsRegistry registry_;
  std::unique_ptr<ShardRouter> router_;
};

TEST_F(ShardRebalanceTest, SkewedLoadMovesCellsAndPreservesAnswers) {
  const auto before = ProbeAnswers();
  const ShardPartition old_partition = router_->partition();
  const size_t total_public = router_->total_public();
  const size_t total_regions = router_->total_regions();

  DriveSkewedLoad();
  const Status status =
      router_->Rebalance(FreshCheckpointDir("casper_rebalance_ok"));
  ASSERT_TRUE(status.ok()) << status.ToString();

  // The hot corner's shard shrank: the partition actually changed and
  // objects moved between shards through the checkpoint handoff.
  EXPECT_FALSE(router_->partition() == old_partition);
  EXPECT_EQ(router_->metrics().rebalances_total->Value(), 1u);
  EXPECT_GT(router_->metrics().handoff_objects_total->Value(), 0u);

  // Nothing was lost or duplicated in the handoff.
  EXPECT_EQ(router_->total_public(), total_public);
  EXPECT_EQ(router_->total_regions(), total_regions);
  size_t sum_public = 0, sum_regions = 0;
  for (size_t s = 0; s < router_->num_shards(); ++s) {
    sum_public += router_->public_count(s);
    sum_regions += router_->region_count(s);
  }
  EXPECT_EQ(sum_public, total_public);
  EXPECT_EQ(sum_regions, total_regions);

  // Every probe answer is byte-identical across the rebalance.
  EXPECT_EQ(ProbeAnswers(), before);
}

TEST_F(ShardRebalanceTest, MaintenanceKeepsWorkingAfterRebalance) {
  DriveSkewedLoad();
  ASSERT_TRUE(
      router_->Rebalance(FreshCheckpointDir("casper_rebalance_maint")).ok());

  // Upserts, replaces, and removes route correctly under the new map.
  RegionUpsertMsg up;
  up.request_id = 1;
  up.handle = 9000;
  up.region = Rect(0.1, 0.1, 0.14, 0.14);
  ASSERT_TRUE(router_->Apply(up).ok());
  RegionUpsertMsg move = up;
  move.request_id = 2;
  move.handle = 9001;
  move.has_replaces = true;
  move.replaces = 9000;
  move.region = Rect(0.9, 0.9, 0.94, 0.94);  // across the new map
  ASSERT_TRUE(router_->Apply(move).ok());
  RegionRemoveMsg remove;
  remove.request_id = 3;
  remove.handle = 9001;
  ASSERT_TRUE(router_->Apply(remove).ok());

  CloakedQueryMsg q;
  q.kind = QueryKind::kPublicRange;
  q.region = Rect(0.0, 0.0, 1.0, 1.0);
  auto answer = router_->Execute(q);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(std::get<processor::RangeCountResult>(answer->payload).possible,
            48u);
}

TEST_F(ShardRebalanceTest, MissingCheckpointParentFailsTypedAndChangesNothing) {
  const auto before = ProbeAnswers();
  const ShardPartition old_partition = router_->partition();
  DriveSkewedLoad();

  const std::string bad =
      (std::filesystem::path(::testing::TempDir()) /
       "casper_missing_parent_zzz" / "checkpoints").string();
  std::filesystem::remove_all(
      (std::filesystem::path(::testing::TempDir()) /
       "casper_missing_parent_zzz").string());
  const Status status = router_->Rebalance(bad);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_NE(status.message().find("parent directory"), std::string::npos)
      << status.ToString();

  // The checkpoint phase runs before any handoff: the partition, the
  // fleet, and every answer are untouched.
  EXPECT_TRUE(router_->partition() == old_partition);
  EXPECT_EQ(router_->metrics().rebalances_total->Value(), 0u);
  EXPECT_EQ(ProbeAnswers(), before);
}

TEST_F(ShardRebalanceTest, SecondRebalanceWithFreshLoadKeepsAnswers) {
  DriveSkewedLoad();
  ASSERT_TRUE(
      router_->Rebalance(FreshCheckpointDir("casper_rebalance_a")).ok());
  const auto mid = ProbeAnswers();
  // New skew on the opposite corner, then rebalance again.
  for (int i = 0; i < 200; ++i) {
    CloakedQueryMsg q;
    q.kind = QueryKind::kRangePublic;
    q.cloak = Rect(0.85, 0.85, 0.95, 0.95);
    q.radius = 0.01;
    ASSERT_TRUE(router_->Execute(q).ok());
  }
  ASSERT_TRUE(
      router_->Rebalance(FreshCheckpointDir("casper_rebalance_b")).ok());
  EXPECT_EQ(router_->metrics().rebalances_total->Value(), 2u);
  EXPECT_EQ(ProbeAnswers(), mid);
}

}  // namespace
}  // namespace casper::sharding
