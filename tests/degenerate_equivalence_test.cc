#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/rng.h"
#include "src/processor/private_nn.h"
#include "src/processor/private_nn_private.h"

/// Differential check between the two halves of the query processor:
/// private data that happens to be *degenerate* (zero-area regions) is
/// semantically identical to public point data — for point targets
/// MaxDist equals the ordinary distance and region overlap equals
/// containment. The public-data path (Algorithm 2) and the
/// private-data path (§5.2) must therefore return identical candidate
/// sets for identical inputs. Any divergence pinpoints a bug in one of
/// the two implementations.

namespace casper::processor {
namespace {

struct Params {
  size_t targets;
  double cloak_size;
  FilterPolicy policy;
  uint64_t seed;
};

class DegenerateEquivalenceTest : public ::testing::TestWithParam<Params> {};

TEST_P(DegenerateEquivalenceTest, PublicAndDegeneratePrivateAgree) {
  const Params params = GetParam();
  Rng rng(params.seed);
  const Rect space(0, 0, 1, 1);

  std::vector<PublicTarget> points;
  std::vector<PrivateTarget> regions;
  for (uint64_t i = 0; i < params.targets; ++i) {
    const Point p = rng.PointIn(space);
    points.push_back({i, p});
    regions.push_back({i, Rect::FromPoint(p)});
  }
  PublicTargetStore public_store(points);
  PrivateTargetStore private_store(regions);

  for (int trial = 0; trial < 60; ++trial) {
    const double s = params.cloak_size;
    const Point c = rng.PointIn(Rect(0, 0, 1 - s, 1 - s));
    const Rect cloak(c.x, c.y, c.x + s, c.y + s);

    auto pub = PrivateNearestNeighbor(public_store, cloak, params.policy);
    PrivateNNOptions options;
    options.policy = params.policy;
    auto prv =
        PrivateNearestNeighborOverPrivate(private_store, cloak, options);
    ASSERT_TRUE(pub.ok());
    ASSERT_TRUE(prv.ok());

    // Identical extended areas...
    EXPECT_NEAR(pub->area.a_ext.min.x, prv->area.a_ext.min.x, 1e-12);
    EXPECT_NEAR(pub->area.a_ext.min.y, prv->area.a_ext.min.y, 1e-12);
    EXPECT_NEAR(pub->area.a_ext.max.x, prv->area.a_ext.max.x, 1e-12);
    EXPECT_NEAR(pub->area.a_ext.max.y, prv->area.a_ext.max.y, 1e-12);

    // ...and identical candidate id sets.
    std::vector<uint64_t> pub_ids, prv_ids;
    for (const auto& t : pub->candidates) pub_ids.push_back(t.id);
    for (const auto& t : prv->candidates) prv_ids.push_back(t.id);
    std::sort(pub_ids.begin(), pub_ids.end());
    std::sort(prv_ids.begin(), prv_ids.end());
    EXPECT_EQ(pub_ids, prv_ids) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DegenerateEquivalenceTest,
    ::testing::Values(Params{100, 0.1, FilterPolicy::kFourFilters, 1},
                      Params{100, 0.1, FilterPolicy::kOneFilter, 2},
                      Params{100, 0.1, FilterPolicy::kTwoFilters, 3},
                      Params{500, 0.05, FilterPolicy::kFourFilters, 4},
                      Params{30, 0.4, FilterPolicy::kFourFilters, 5},
                      Params{1000, 0.02, FilterPolicy::kTwoFilters, 6}));

}  // namespace
}  // namespace casper::processor
