#include "src/network/network_generator.h"

#include <gtest/gtest.h>

namespace casper::network {
namespace {

TEST(NetworkGeneratorTest, GeneratesConnectedNetwork) {
  NetworkGeneratorOptions opt;
  opt.rows = 12;
  opt.cols = 12;
  NetworkGenerator gen(opt);
  auto net = gen.Generate(1);
  ASSERT_TRUE(net.ok());
  EXPECT_EQ(net->node_count(), 144u);
  EXPECT_TRUE(net->IsConnected());
  EXPECT_GT(net->edge_count(), 144u);  // Grid has ~2x edges as nodes.
}

TEST(NetworkGeneratorTest, DeterministicForSeed) {
  NetworkGenerator gen(NetworkGeneratorOptions{});
  auto a = gen.Generate(7);
  auto b = gen.Generate(7);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->node_count(), b->node_count());
  ASSERT_EQ(a->edge_count(), b->edge_count());
  for (NodeId i = 0; i < a->node_count(); ++i) {
    EXPECT_EQ(a->node(i).position, b->node(i).position);
  }
}

TEST(NetworkGeneratorTest, DifferentSeedsDiffer) {
  NetworkGenerator gen(NetworkGeneratorOptions{});
  auto a = gen.Generate(1);
  auto b = gen.Generate(2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  bool any_diff = a->edge_count() != b->edge_count();
  for (NodeId i = 0; !any_diff && i < a->node_count(); ++i) {
    any_diff = !(a->node(i).position == b->node(i).position);
  }
  EXPECT_TRUE(any_diff);
}

TEST(NetworkGeneratorTest, NodesStayInsideSpace) {
  NetworkGeneratorOptions opt;
  opt.space = Rect(10, 20, 30, 40);
  opt.jitter = 0.45;
  NetworkGenerator gen(opt);
  auto net = gen.Generate(3);
  ASSERT_TRUE(net.ok());
  for (NodeId i = 0; i < net->node_count(); ++i) {
    EXPECT_TRUE(opt.space.Contains(net->node(i).position));
  }
}

TEST(NetworkGeneratorTest, ContainsAllRoadClasses) {
  NetworkGeneratorOptions opt;
  opt.rows = 17;
  opt.cols = 17;
  NetworkGenerator gen(opt);
  auto net = gen.Generate(5);
  ASSERT_TRUE(net.ok());
  bool has_highway = false, has_arterial = false, has_local = false;
  for (EdgeId e = 0; e < net->edge_count(); ++e) {
    switch (net->edge(e).cls) {
      case RoadClass::kHighway: has_highway = true; break;
      case RoadClass::kArterial: has_arterial = true; break;
      case RoadClass::kLocal: has_local = true; break;
    }
  }
  EXPECT_TRUE(has_highway);
  EXPECT_TRUE(has_arterial);
  EXPECT_TRUE(has_local);
}

TEST(NetworkGeneratorTest, HeavyDropoutStillConnected) {
  NetworkGeneratorOptions opt;
  opt.rows = 10;
  opt.cols = 10;
  opt.dropout_prob = 0.6;
  NetworkGenerator gen(opt);
  for (uint64_t seed = 0; seed < 5; ++seed) {
    auto net = gen.Generate(seed);
    ASSERT_TRUE(net.ok());
    EXPECT_TRUE(net->IsConnected()) << "seed " << seed;
  }
}

TEST(NetworkGeneratorTest, RejectsDegenerateOptions) {
  {
    NetworkGeneratorOptions opt;
    opt.rows = 1;
    EXPECT_EQ(NetworkGenerator(opt).Generate(1).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    NetworkGeneratorOptions opt;
    opt.jitter = 0.5;
    EXPECT_EQ(NetworkGenerator(opt).Generate(1).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    NetworkGeneratorOptions opt;
    opt.dropout_prob = 1.0;
    EXPECT_EQ(NetworkGenerator(opt).Generate(1).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    NetworkGeneratorOptions opt;
    opt.space = Rect();
    EXPECT_EQ(NetworkGenerator(opt).Generate(1).status().code(),
              StatusCode::kInvalidArgument);
  }
}

TEST(NetworkGeneratorTest, NoDropoutNoDiagonalsGivesFullGrid) {
  NetworkGeneratorOptions opt;
  opt.rows = 5;
  opt.cols = 7;
  opt.dropout_prob = 0.0;
  opt.diagonal_prob = 0.0;
  NetworkGenerator gen(opt);
  auto net = gen.Generate(11);
  ASSERT_TRUE(net.ok());
  // Full grid: rows*(cols-1) horizontal + cols*(rows-1) vertical edges.
  EXPECT_EQ(net->edge_count(), 5u * 6 + 7u * 4);
}

}  // namespace
}  // namespace casper::network
