#include "src/spatial/rtree.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/rng.h"

namespace casper::spatial {
namespace {

std::vector<RTree::Entry> RandomPointEntries(size_t n, Rng* rng,
                                             const Rect& space) {
  std::vector<RTree::Entry> entries;
  for (size_t i = 0; i < n; ++i) {
    entries.push_back({Rect::FromPoint(rng->PointIn(space)), i});
  }
  return entries;
}

std::vector<RTree::Entry> RandomRectEntries(size_t n, Rng* rng,
                                            const Rect& space,
                                            double max_extent) {
  std::vector<RTree::Entry> entries;
  for (size_t i = 0; i < n; ++i) {
    const Point c = rng->PointIn(space);
    const double w = rng->Uniform(0.0, max_extent);
    const double h = rng->Uniform(0.0, max_extent);
    entries.push_back({Rect(c.x, c.y, c.x + w, c.y + h), i});
  }
  return entries;
}

/// Brute-force oracle for range queries.
std::vector<uint64_t> BruteRange(const std::vector<RTree::Entry>& entries,
                                 const Rect& window) {
  std::vector<uint64_t> ids;
  for (const auto& e : entries) {
    if (e.box.Intersects(window)) ids.push_back(e.id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

/// Brute-force oracle for NN under a metric.
uint64_t BruteNearest(const std::vector<RTree::Entry>& entries, const Point& q,
                      RTree::Metric metric) {
  uint64_t best = 0;
  double best_d = 1e300;
  for (const auto& e : entries) {
    const double d = metric == RTree::Metric::kMinDist ? MinDist(q, e.box)
                                                       : MaxDist(q, e.box);
    if (d < best_d) {
      best_d = d;
      best = e.id;
    }
  }
  return best;
}

TEST(RTreeTest, EmptyTree) {
  RTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_FALSE(tree.Nearest({0, 0}).found);
  std::vector<RTree::Entry> out;
  tree.RangeQuery(Rect(0, 0, 1, 1), &out);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(RTreeTest, SingleEntry) {
  RTree tree;
  tree.Insert(Rect::FromPoint({0.5, 0.5}), 42);
  EXPECT_EQ(tree.size(), 1u);
  const auto nn = tree.Nearest({0, 0});
  ASSERT_TRUE(nn.found);
  EXPECT_EQ(nn.neighbor.id, 42u);
  EXPECT_NEAR(nn.neighbor.distance, Distance({0, 0}, {0.5, 0.5}), 1e-12);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(RTreeTest, InsertManyMaintainsInvariants) {
  Rng rng(3);
  const Rect space(0, 0, 1, 1);
  RTree tree(8);
  for (size_t i = 0; i < 500; ++i) {
    tree.Insert(Rect::FromPoint(rng.PointIn(space)), i);
    if (i % 50 == 0) {
      ASSERT_TRUE(tree.CheckInvariants()) << "at " << i;
    }
  }
  EXPECT_EQ(tree.size(), 500u);
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_GT(tree.height(), 1);
}

TEST(RTreeTest, RangeQueryMatchesBruteForce) {
  Rng rng(5);
  const Rect space(0, 0, 1, 1);
  auto entries = RandomRectEntries(300, &rng, space, 0.05);
  RTree tree(8);
  for (const auto& e : entries) tree.Insert(e.box, e.id);

  for (int i = 0; i < 50; ++i) {
    const Point c = rng.PointIn(space);
    const Rect window(c.x, c.y, c.x + rng.Uniform(0, 0.3),
                      c.y + rng.Uniform(0, 0.3));
    std::vector<RTree::Entry> out;
    tree.RangeQuery(window, &out);
    std::vector<uint64_t> got;
    for (const auto& e : out) got.push_back(e.id);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, BruteRange(entries, window));
  }
}

TEST(RTreeTest, RangeCountMatchesQuery) {
  Rng rng(6);
  const Rect space(0, 0, 1, 1);
  auto entries = RandomPointEntries(200, &rng, space);
  RTree tree = RTree::BulkLoad(entries);
  const Rect window(0.2, 0.2, 0.7, 0.6);
  std::vector<RTree::Entry> out;
  tree.RangeQuery(window, &out);
  EXPECT_EQ(tree.RangeCount(window), out.size());
}

TEST(RTreeTest, NearestMatchesBruteForceMinDist) {
  Rng rng(7);
  const Rect space(0, 0, 1, 1);
  auto entries = RandomPointEntries(400, &rng, space);
  RTree tree = RTree::BulkLoad(entries);
  for (int i = 0; i < 100; ++i) {
    const Point q = rng.PointIn(space);
    const auto nn = tree.Nearest(q, RTree::Metric::kMinDist);
    ASSERT_TRUE(nn.found);
    const uint64_t expect = BruteNearest(entries, q, RTree::Metric::kMinDist);
    // Compare by distance (ties possible).
    EXPECT_NEAR(nn.neighbor.distance,
                MinDist(q, entries[expect].box), 1e-12);
  }
}

TEST(RTreeTest, NearestMatchesBruteForceMaxDist) {
  Rng rng(8);
  const Rect space(0, 0, 1, 1);
  auto entries = RandomRectEntries(300, &rng, space, 0.1);
  RTree tree = RTree::BulkLoad(entries);
  for (int i = 0; i < 100; ++i) {
    const Point q = rng.PointIn(space);
    const auto nn = tree.Nearest(q, RTree::Metric::kMaxDist);
    ASSERT_TRUE(nn.found);
    const uint64_t expect = BruteNearest(entries, q, RTree::Metric::kMaxDist);
    EXPECT_NEAR(nn.neighbor.distance, MaxDist(q, entries[expect].box), 1e-12);
  }
}

TEST(RTreeTest, KNearestSortedAndComplete) {
  Rng rng(9);
  const Rect space(0, 0, 1, 1);
  auto entries = RandomPointEntries(100, &rng, space);
  RTree tree = RTree::BulkLoad(entries);

  const Point q{0.4, 0.6};
  const auto knn = tree.KNearest(q, 10);
  ASSERT_EQ(knn.size(), 10u);
  for (size_t i = 1; i < knn.size(); ++i) {
    EXPECT_LE(knn[i - 1].distance, knn[i].distance);
  }
  // Compare distances against a sorted brute-force list.
  std::vector<double> brute;
  for (const auto& e : entries) brute.push_back(MinDist(q, e.box));
  std::sort(brute.begin(), brute.end());
  for (size_t i = 0; i < knn.size(); ++i) {
    EXPECT_NEAR(knn[i].distance, brute[i], 1e-12);
  }
}

TEST(RTreeTest, KNearestMoreThanSizeReturnsAll) {
  Rng rng(10);
  auto entries = RandomPointEntries(7, &rng, Rect(0, 0, 1, 1));
  RTree tree = RTree::BulkLoad(entries);
  EXPECT_EQ(tree.KNearest({0.5, 0.5}, 100).size(), 7u);
}

TEST(RTreeTest, RemoveExistingAndMissing) {
  Rng rng(11);
  const Rect space(0, 0, 1, 1);
  auto entries = RandomPointEntries(200, &rng, space);
  RTree tree(8);
  for (const auto& e : entries) tree.Insert(e.box, e.id);

  // Remove half, verifying size and invariants.
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_TRUE(tree.Remove(entries[i].box, entries[i].id));
  }
  EXPECT_EQ(tree.size(), 100u);
  EXPECT_TRUE(tree.CheckInvariants());

  // Removing again fails.
  EXPECT_FALSE(tree.Remove(entries[0].box, entries[0].id));
  // Wrong box fails.
  EXPECT_FALSE(tree.Remove(Rect(0.999, 0.999, 0.9999, 0.9999), entries[150].id));

  // Remaining entries still query correctly.
  std::vector<RTree::Entry> rest(entries.begin() + 100, entries.end());
  for (int i = 0; i < 20; ++i) {
    const Point q = rng.PointIn(space);
    const auto nn = tree.Nearest(q);
    ASSERT_TRUE(nn.found);
    const uint64_t expect = BruteNearest(rest, q, RTree::Metric::kMinDist);
    EXPECT_NEAR(nn.neighbor.distance, MinDist(q, rest[expect - 100].box),
                1e-12);
  }
}

TEST(RTreeTest, RemoveAllLeavesEmptyUsableTree) {
  Rng rng(12);
  auto entries = RandomPointEntries(64, &rng, Rect(0, 0, 1, 1));
  RTree tree(4);
  for (const auto& e : entries) tree.Insert(e.box, e.id);
  for (const auto& e : entries) ASSERT_TRUE(tree.Remove(e.box, e.id));
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.CheckInvariants());
  tree.Insert(Rect::FromPoint({0.5, 0.5}), 1);
  EXPECT_EQ(tree.size(), 1u);
}

TEST(RTreeTest, BulkLoadInvariantsAndQueries) {
  Rng rng(13);
  const Rect space(0, 0, 1, 1);
  for (size_t n : {1u, 5u, 16u, 17u, 100u, 1000u}) {
    auto entries = RandomPointEntries(n, &rng, space);
    RTree tree = RTree::BulkLoad(entries, 16);
    EXPECT_EQ(tree.size(), n);
    EXPECT_TRUE(tree.CheckInvariants()) << "n=" << n;
    const Rect window(0.25, 0.25, 0.75, 0.75);
    std::vector<RTree::Entry> out;
    tree.RangeQuery(window, &out);
    std::vector<uint64_t> got;
    for (const auto& e : out) got.push_back(e.id);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, BruteRange(entries, window));
  }
}

TEST(RTreeTest, BulkLoadHeightIsLogarithmic) {
  Rng rng(14);
  auto entries = RandomPointEntries(4096, &rng, Rect(0, 0, 1, 1));
  RTree tree = RTree::BulkLoad(entries, 16);
  // 4096 entries at fan-out 16: leaves 256, level2 16, level3 1 => height 3.
  EXPECT_LE(tree.height(), 4);
}

TEST(RTreeTest, VisitorEarlyStop) {
  Rng rng(15);
  auto entries = RandomPointEntries(100, &rng, Rect(0, 0, 1, 1));
  RTree tree = RTree::BulkLoad(entries);
  int visited = 0;
  tree.RangeQuery(Rect(0, 0, 1, 1), [&visited](const RTree::Entry&) {
    ++visited;
    return visited < 5;
  });
  EXPECT_EQ(visited, 5);
}

TEST(RTreeTest, BoundsCoverAllEntries) {
  Rng rng(16);
  auto entries = RandomRectEntries(50, &rng, Rect(0, 0, 1, 1), 0.2);
  RTree tree = RTree::BulkLoad(entries);
  const Rect b = tree.bounds();
  for (const auto& e : entries) EXPECT_TRUE(b.Contains(e.box));
}

TEST(RTreeTest, MoveSemantics) {
  RTree a;
  a.Insert(Rect::FromPoint({0.1, 0.1}), 1);
  RTree b = std::move(a);
  EXPECT_EQ(b.size(), 1u);
  RTree c;
  c = std::move(b);
  EXPECT_EQ(c.size(), 1u);
  EXPECT_TRUE(c.Nearest({0, 0}).found);
}

TEST(RTreeTest, DuplicatePositionsAllowed) {
  RTree tree(4);
  for (uint64_t i = 0; i < 20; ++i) {
    tree.Insert(Rect::FromPoint({0.5, 0.5}), i);
  }
  EXPECT_EQ(tree.size(), 20u);
  EXPECT_TRUE(tree.CheckInvariants());
  std::vector<RTree::Entry> out;
  tree.RangeQuery(Rect(0.5, 0.5, 0.5, 0.5), &out);
  EXPECT_EQ(out.size(), 20u);
  // Remove a specific duplicate by id.
  EXPECT_TRUE(tree.Remove(Rect::FromPoint({0.5, 0.5}), 7));
  EXPECT_EQ(tree.size(), 19u);
}

TEST(RTreeTest, MixedInsertRemoveChurn) {
  Rng rng(17);
  const Rect space(0, 0, 1, 1);
  RTree tree(6);
  std::vector<RTree::Entry> live;
  uint64_t next_id = 0;
  for (int round = 0; round < 1000; ++round) {
    if (live.empty() || rng.Bernoulli(0.6)) {
      RTree::Entry e{Rect::FromPoint(rng.PointIn(space)), next_id++};
      tree.Insert(e.box, e.id);
      live.push_back(e);
    } else {
      const size_t idx = rng.UniformInt(0, live.size() - 1);
      ASSERT_TRUE(tree.Remove(live[idx].box, live[idx].id));
      live.erase(live.begin() + static_cast<ptrdiff_t>(idx));
    }
  }
  EXPECT_EQ(tree.size(), live.size());
  EXPECT_TRUE(tree.CheckInvariants());
  const Rect window(0.1, 0.1, 0.9, 0.4);
  std::vector<RTree::Entry> out;
  tree.RangeQuery(window, &out);
  std::vector<uint64_t> got;
  for (const auto& e : out) got.push_back(e.id);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, BruteRange(live, window));
}

}  // namespace
}  // namespace casper::spatial
