#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/span.h"

/// Concurrency tests of the metrics path, written to run under
/// ThreadSanitizer (ctest label `concurrency`): many writer threads
/// hammer the relaxed-atomic instruments while a reader scrapes
/// mid-flight, then a final quiescent scrape must be exact.

namespace casper::obs {
namespace {

TEST(MetricsConcurrencyTest, ParallelIncrementsWithConcurrentScrape) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("events_total", "h");
  Gauge* gauge = registry.GetGauge("depth", "h");
  Histogram* hist = registry.GetHistogram("latency", "h", {0.25, 0.5, 0.75});

  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 20000;

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        counter->Increment();
        gauge->Set(static_cast<double>(t));
        hist->Observe(static_cast<double>(i % 100) / 100.0);
      }
    });
  }

  // Concurrent scrapes observe some consistent prefix of the updates;
  // the merged values must only ever move forward.
  uint64_t last_count = 0;
  for (int i = 0; i < 50; ++i) {
    const MetricsSnapshot snapshot = registry.Scrape();
    for (const MetricFamily& family : snapshot.families) {
      if (family.name != "events_total") continue;
      const auto scraped = static_cast<uint64_t>(family.samples[0].value);
      EXPECT_GE(scraped, last_count);
      EXPECT_LE(scraped, kThreads * kPerThread);
      last_count = scraped;
    }
  }
  for (std::thread& w : writers) w.join();

  // Quiescent: the merge across shards is exact.
  EXPECT_EQ(counter->Value(), kThreads * kPerThread);
  const HistogramData data = hist->Snapshot();
  EXPECT_EQ(data.count, kThreads * kPerThread);
  uint64_t bucket_total = 0;
  for (uint64_t bucket : data.buckets) bucket_total += bucket;
  EXPECT_EQ(bucket_total, data.count);
}

TEST(MetricsConcurrencyTest, ConcurrentRegistrationReturnsOneInstrument) {
  MetricsRegistry registry;
  constexpr size_t kThreads = 8;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 1000; ++i) {
        seen[t] = registry.GetCounter("shared_total", "h", {{"k", "v"}});
        seen[t]->Increment();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (size_t t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
  EXPECT_EQ(seen[0]->Value(), kThreads * 1000u);
}

TEST(MetricsConcurrencyTest, TracerFinishFromManyThreads) {
  MetricsRegistry registry;
  QueryTracer tracer(&registry, /*ring_capacity=*/32);
  constexpr size_t kThreads = 4;
  constexpr size_t kPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (size_t i = 0; i < kPerThread; ++i) {
        QuerySpan span = tracer.Start("nearest_public");
        {
          ScopedPhase phase(&span, Phase::kEvaluate);
        }
        tracer.Finish(span);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(tracer.finished_count(), kThreads * kPerThread);
  EXPECT_EQ(tracer.Recent().size(), 32u);  // Ring stays bounded.
}

}  // namespace
}  // namespace casper::obs
