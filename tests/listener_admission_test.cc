#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/casper/messages.h"
#include "src/obs/exporters.h"
#include "src/transport/framing.h"
#include "src/transport/listener.h"
#include "src/transport/net_util.h"
#include "src/transport/resilient_client.h"
#include "src/transport/socket_channel.h"

/// Admission control and connection supervision of the SocketListener,
/// each policy exercised by a hostile raw-socket peer: watermark load
/// shedding (with a concurrent well-behaved client that must keep
/// succeeding — the acceptance criterion), per-peer rate limits
/// escalating to a temporary ban, ban rejection at accept until expiry,
/// the max-connection cap, idle and slow-loris timeouts, framing-
/// violation closes, graceful drain, and the casper_net_* series
/// showing up in both exporters.

namespace casper {
namespace {

using transport::CallContext;
using transport::EncodeFrame;
using transport::FrameDecoder;
using transport::ListenerOptions;
using transport::SocketChannel;
using transport::SocketChannelOptions;
using transport::SocketListener;

std::string TempSocketPath(const char* tag) {
  return "unix:/tmp/casper_" + std::string(tag) + "_" +
         std::to_string(getpid()) + ".sock";
}

std::string QueryBytes(uint64_t request_id) {
  CloakedQueryMsg msg;
  msg.kind = QueryKind::kNearestPublic;
  msg.request_id = request_id;
  msg.cloak = Rect(0.1, 0.1, 0.2, 0.2);
  return Encode(msg);
}

/// A raw-socket peer driven byte by byte — the adversary the admission
/// layer exists for.
class RawPeer {
 public:
  explicit RawPeer(const std::string& address) {
    auto parsed = transport::net::ParseAddress(address);
    EXPECT_TRUE(parsed.ok());
    auto fd = transport::net::Dial(parsed.value(), 1.0);
    if (fd.ok()) fd_ = fd.value();
  }
  ~RawPeer() {
    if (fd_ >= 0) close(fd_);
  }

  bool connected() const { return fd_ >= 0; }

  bool Send(std::string_view bytes) {
    return fd_ >= 0 &&
           transport::net::WriteAll(fd_, bytes, 2.0).ok();
  }

  /// Read framed payloads until `count` arrived, EOF, or timeout.
  std::vector<std::string> ReadPayloads(size_t count,
                                        double timeout_seconds = 5.0) {
    std::vector<std::string> out;
    FrameDecoder decoder;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(timeout_seconds);
    while (out.size() < count &&
           std::chrono::steady_clock::now() < deadline) {
      auto next = decoder.Next();
      if (!next.ok()) break;
      if (next->has_value()) {
        out.push_back(**next);
        continue;
      }
      std::string chunk;
      const Status read =
          transport::net::ReadSome(fd_, &chunk, 1 << 16, 0.25);
      if (!read.ok()) {
        // Keep waiting through timeouts; EOF/reset ends the stream.
        if (read.message().find("timed out") == std::string_view::npos) {
          break;
        }
        continue;
      }
      decoder.Append(chunk);
    }
    return out;
  }

  /// True when the peer observes EOF (the server closed us).
  bool WaitForClose(double timeout_seconds = 5.0) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(timeout_seconds);
    std::string chunk;
    while (std::chrono::steady_clock::now() < deadline) {
      chunk.clear();
      const Status read =
          transport::net::ReadSome(fd_, &chunk, 4096, 0.25);
      if (!read.ok() &&
          read.message().find("timed out") == std::string_view::npos) {
        return true;  // EOF or reset.
      }
    }
    return false;
  }

 private:
  int fd_ = -1;
};

TEST(ListenerAdmissionTest, ShedsAboveWatermarkWhileGoodPeerSucceeds) {
  obs::MetricsRegistry registry;
  obs::CasperMetrics metrics(&registry);

  ListenerOptions options;
  options.worker_threads = 2;
  options.inbound_queue_watermark = 4;
  options.metrics = &metrics;
  std::atomic<int> handled{0};
  const std::string address = TempSocketPath("shed");
  auto listener = SocketListener::Start(
      address,
      [&handled](std::string_view request, const CallContext&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        ++handled;
        return Result<std::string>(std::string(request));
      },
      options);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();

  // The well-behaved peer: sequential resilient calls that must all
  // succeed while the flooder is being shed on its own connection.
  std::atomic<int> good_ok{0};
  std::atomic<int> good_failed{0};
  std::thread good_peer([&] {
    SocketChannel channel(address);
    for (int i = 0; i < 30; ++i) {
      const std::string request = "good-" + std::to_string(i);
      auto response = channel.Call(request, CallContext{});
      if (response.ok() && response.value() == request) {
        ++good_ok;
      } else {
        ++good_failed;
      }
    }
  });

  // The flooder: pipeline far more frames than the watermark without
  // reading a single response.
  constexpr size_t kFlood = 200;
  RawPeer flooder(address);
  ASSERT_TRUE(flooder.connected());
  std::string burst;
  for (size_t i = 0; i < kFlood; ++i) {
    burst += EncodeFrame(QueryBytes(1000 + i));
  }
  ASSERT_TRUE(flooder.Send(burst));

  // Every flooded frame is answered — echoed when admitted, or shed
  // with a *typed* kUnavailable ack addressed to its request id.
  const std::vector<std::string> responses =
      flooder.ReadPayloads(kFlood, 10.0);
  good_peer.join();

  EXPECT_EQ(responses.size(), kFlood);
  size_t shed_acks = 0;
  for (const std::string& payload : responses) {
    auto ack = DecodeAck(payload);
    if (!ack.ok()) continue;  // An admitted frame, echoed back.
    EXPECT_EQ(ack->code, StatusCode::kUnavailable);
    EXPECT_NE(ack->message.find("shed"), std::string::npos);
    EXPECT_GE(ack->request_id, 1000u) << "shed ack echoes the request id";
    ++shed_acks;
  }
  EXPECT_GT(shed_acks, 0u) << "the flood never overflowed the watermark";

  EXPECT_EQ(good_failed.load(), 0)
      << "load shedding leaked onto the well-behaved peer";
  EXPECT_EQ(good_ok.load(), 30);

  const transport::ListenerStats stats = (*listener)->stats();
  EXPECT_EQ(stats.shed, shed_acks);
  (*listener)->Shutdown();

  // The shed shows up in both exporters, not just the stats struct.
  const obs::MetricsSnapshot snapshot = registry.Scrape();
  const std::string prom = obs::ExportPrometheus(snapshot);
  const std::string json = obs::ExportJson(snapshot);
  EXPECT_NE(prom.find("casper_net_shed_total"), std::string::npos);
  EXPECT_NE(json.find("casper_net_shed_total"), std::string::npos);
  EXPECT_NE(prom.find("casper_net_frames_read_total"), std::string::npos);
  EXPECT_NE(json.find("casper_net_connections_accepted_total"),
            std::string::npos);
}

TEST(ListenerAdmissionTest, RateLimitStrikesEscalateToBan) {
  obs::MetricsRegistry registry;
  obs::CasperMetrics metrics(&registry);

  ListenerOptions options;
  options.rate_window_seconds = 10.0;  // One window spans the test.
  options.max_requests_per_window = 5;
  options.strike_threshold = 3;
  options.ban_seconds = 0.4;
  options.metrics = &metrics;
  const std::string address = "127.0.0.1:0";
  auto listener = SocketListener::Start(
      address,
      [](std::string_view request, const CallContext&) {
        return Result<std::string>(std::string(request));
      },
      options);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  const std::string bound = (*listener)->bound_address();

  {
    RawPeer flooder(bound);
    ASSERT_TRUE(flooder.connected());
    // 5 admitted + (threshold) violations -> strikes -> ban -> close.
    std::string burst;
    for (size_t i = 0; i < 16; ++i) burst += EncodeFrame(QueryBytes(i + 1));
    ASSERT_TRUE(flooder.Send(burst));
    EXPECT_TRUE(flooder.WaitForClose())
        << "the struck-out peer was never banned away";
  }

  // While the ban lasts, reconnects from the same address are refused
  // at accept.
  bool saw_ban_reject = false;
  for (int i = 0; i < 10 && !saw_ban_reject; ++i) {
    RawPeer retry(bound);
    if (!retry.connected()) break;
    saw_ban_reject = retry.WaitForClose(0.5);
  }
  EXPECT_TRUE(saw_ban_reject);
  {
    const transport::ListenerStats stats = (*listener)->stats();
    EXPECT_GE(stats.rate_limited, 3u);
    EXPECT_GE(stats.bans, 1u);
    EXPECT_GE(stats.ban_rejects, 1u);
  }

  // After expiry the same peer is clean again.
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  bool recovered = false;
  for (int i = 0; i < 20 && !recovered; ++i) {
    RawPeer again(bound);
    if (again.connected() && again.Send(EncodeFrame(QueryBytes(99)))) {
      recovered = !again.ReadPayloads(1, 1.0).empty();
    }
    if (!recovered) std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_TRUE(recovered) << "the ban never expired";
  (*listener)->Shutdown();

  const std::string prom = obs::ExportPrometheus(registry.Scrape());
  EXPECT_NE(prom.find("casper_net_rate_limited_total"), std::string::npos);
  EXPECT_NE(prom.find("casper_net_bans_total"), std::string::npos);
}

TEST(ListenerAdmissionTest, ConnectionCapRejectsTheOverflow) {
  ListenerOptions options;
  options.max_connections = 2;
  const std::string address = TempSocketPath("cap");
  auto listener = SocketListener::Start(
      address,
      [](std::string_view request, const CallContext&) {
        return Result<std::string>(std::string(request));
      },
      options);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();

  RawPeer first(address), second(address);
  ASSERT_TRUE(first.connected());
  ASSERT_TRUE(second.connected());
  // Round trips pin both connections as registered before the third
  // arrives.
  ASSERT_TRUE(first.Send(EncodeFrame(QueryBytes(1))));
  ASSERT_TRUE(second.Send(EncodeFrame(QueryBytes(2))));
  ASSERT_EQ(first.ReadPayloads(1).size(), 1u);
  ASSERT_EQ(second.ReadPayloads(1).size(), 1u);

  RawPeer third(address);
  ASSERT_TRUE(third.connected());  // The kernel accepts; the loop closes.
  EXPECT_TRUE(third.WaitForClose());
  EXPECT_GE((*listener)->stats().cap_rejects, 1u);
  (*listener)->Shutdown();
}

TEST(ListenerAdmissionTest, IdleConnectionsAreReaped) {
  ListenerOptions options;
  options.idle_timeout_seconds = 0.2;
  const std::string address = TempSocketPath("idle");
  auto listener = SocketListener::Start(
      address,
      [](std::string_view request, const CallContext&) {
        return Result<std::string>(std::string(request));
      },
      options);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();

  RawPeer idler(address);
  ASSERT_TRUE(idler.connected());
  ASSERT_TRUE(idler.Send(EncodeFrame(QueryBytes(1))));
  ASSERT_EQ(idler.ReadPayloads(1).size(), 1u);
  EXPECT_TRUE(idler.WaitForClose()) << "idle conn outlived its timeout";
  EXPECT_GE((*listener)->stats().idle_closed, 1u);
  (*listener)->Shutdown();
}

TEST(ListenerAdmissionTest, SlowLorisIsCutOffMidFrame) {
  ListenerOptions options;
  options.idle_timeout_seconds = 60.0;
  options.partial_frame_timeout_seconds = 0.2;
  const std::string address = TempSocketPath("loris");
  auto listener = SocketListener::Start(
      address,
      [](std::string_view request, const CallContext&) {
        return Result<std::string>(std::string(request));
      },
      options);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();

  RawPeer loris(address);
  ASSERT_TRUE(loris.connected());
  const std::string frame = EncodeFrame(QueryBytes(1));
  // Half a frame, then silence: the partial-frame clock, not the idle
  // clock, must cut this off.
  ASSERT_TRUE(loris.Send(std::string_view(frame).substr(0, 6)));
  EXPECT_TRUE(loris.WaitForClose(5.0));
  EXPECT_GE((*listener)->stats().slowloris_closed, 1u);
  (*listener)->Shutdown();
}

TEST(ListenerAdmissionTest, FramingViolationClosesTheConnection) {
  const std::string address = TempSocketPath("frame_err");
  auto listener = SocketListener::Start(
      address,
      [](std::string_view request, const CallContext&) {
        return Result<std::string>(std::string(request));
      },
      ListenerOptions{});
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();

  RawPeer garbler(address);
  ASSERT_TRUE(garbler.connected());
  ASSERT_TRUE(garbler.Send("GET / HTTP/1.1\r\nHost: casper\r\n\r\n"));
  EXPECT_TRUE(garbler.WaitForClose());
  EXPECT_GE((*listener)->stats().frame_errors, 1u);

  // A framing violation is one peer's problem: the listener still
  // serves the next connection.
  RawPeer clean(address);
  ASSERT_TRUE(clean.connected());
  ASSERT_TRUE(clean.Send(EncodeFrame(QueryBytes(5))));
  EXPECT_EQ(clean.ReadPayloads(1).size(), 1u);
  (*listener)->Shutdown();
}

TEST(ListenerAdmissionTest, GracefulDrainFinishesInFlightWork) {
  ListenerOptions options;
  options.drain_timeout_seconds = 5.0;
  const std::string address = TempSocketPath("drain");
  auto listener = SocketListener::Start(
      address,
      [](std::string_view request, const CallContext&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        return Result<std::string>(std::string(request));
      },
      options);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();

  std::atomic<bool> call_ok{false};
  std::string echoed;
  std::thread in_flight([&] {
    SocketChannel channel(address);
    auto response = channel.Call("survives the drain", CallContext{});
    call_ok = response.ok();
    if (response.ok()) echoed = response.value();
  });
  // Let the request land in a worker, then shut down around it.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  (*listener)->Shutdown();
  in_flight.join();
  EXPECT_TRUE(call_ok.load())
      << "shutdown dropped a response that was already in flight";
  EXPECT_EQ(echoed, "survives the drain");
}

}  // namespace
}  // namespace casper
