#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/rng.h"
#include "src/spatial/grid_index.h"
#include "src/spatial/rtree.h"

/// Differential testing of the two spatial indexes: driven through the
/// same randomized point workload, the R-tree and the grid index must
/// agree on every range query and (by distance) every NN probe. Each is
/// the other's oracle — a disagreement pinpoints a bug in one of them.

namespace casper::spatial {
namespace {

struct WorkloadParams {
  size_t initial;
  int rounds;
  int grid_cells;
  int rtree_fanout;
  uint64_t seed;
};

class DifferentialSpatialTest
    : public ::testing::TestWithParam<WorkloadParams> {};

TEST_P(DifferentialSpatialTest, IndexesAgreeUnderChurn) {
  const WorkloadParams params = GetParam();
  Rng rng(params.seed);
  const Rect space(0, 0, 1, 1);

  RTree tree(params.rtree_fanout);
  GridIndex grid(space, params.grid_cells);
  std::unordered_map<uint64_t, Point> live;
  uint64_t next_id = 0;

  auto insert = [&]() {
    const Point p = rng.PointIn(space);
    const uint64_t id = next_id++;
    tree.Insert(Rect::FromPoint(p), id);
    ASSERT_TRUE(grid.Insert(p, id).ok());
    live[id] = p;
  };
  for (size_t i = 0; i < params.initial; ++i) insert();

  for (int round = 0; round < params.rounds; ++round) {
    const double action = rng.NextDouble();
    if (action < 0.4 || live.size() < 5) {
      insert();
    } else if (action < 0.6) {
      // Remove a random live id.
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.UniformInt(0, live.size() - 1)));
      ASSERT_TRUE(tree.Remove(Rect::FromPoint(it->second), it->first));
      ASSERT_TRUE(grid.Remove(it->first).ok());
      live.erase(it);
    } else if (action < 0.8) {
      // Move a random live id.
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.UniformInt(0, live.size() - 1)));
      const Point p = rng.PointIn(space);
      ASSERT_TRUE(tree.Remove(Rect::FromPoint(it->second), it->first));
      tree.Insert(Rect::FromPoint(p), it->first);
      ASSERT_TRUE(grid.Update(p, it->first).ok());
      it->second = p;
    } else {
      // Cross-check queries.
      const Point c = rng.PointIn(space);
      const Rect window(c.x, c.y, std::min(c.x + rng.Uniform(0, 0.3), 1.0),
                        std::min(c.y + rng.Uniform(0, 0.3), 1.0));
      std::vector<uint64_t> from_tree;
      tree.RangeQuery(window, [&](const RTree::Entry& e) {
        from_tree.push_back(e.id);
        return true;
      });
      std::vector<uint64_t> from_grid;
      grid.RangeQuery(window, &from_grid);
      std::sort(from_tree.begin(), from_tree.end());
      std::sort(from_grid.begin(), from_grid.end());
      ASSERT_EQ(from_tree, from_grid) << "round " << round;

      const Point q = rng.PointIn(space);
      const auto tree_nn = tree.Nearest(q);
      const auto grid_nn = grid.Nearest(q);
      ASSERT_EQ(tree_nn.found, grid_nn.found);
      if (tree_nn.found) {
        ASSERT_NEAR(tree_nn.neighbor.distance, grid_nn.distance, 1e-12)
            << "round " << round;
      }
    }
  }
  EXPECT_EQ(tree.size(), live.size());
  EXPECT_EQ(grid.size(), live.size());
  EXPECT_TRUE(tree.CheckInvariants());
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, DifferentialSpatialTest,
    ::testing::Values(WorkloadParams{50, 400, 8, 4, 1},
                      WorkloadParams{200, 400, 16, 8, 2},
                      WorkloadParams{500, 300, 32, 16, 3},
                      WorkloadParams{5, 500, 4, 4, 4},
                      WorkloadParams{1000, 200, 64, 12, 5}));

}  // namespace
}  // namespace casper::spatial
