#include "src/casper/trace.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "src/anonymizer/basic_anonymizer.h"
#include "src/network/network_generator.h"

namespace casper::workload {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

Trace SmallTrace() {
  Trace trace;
  trace.registrations.push_back(
      TraceRegistration{0, {5, 0.001}, {0.25, 0.75}});
  trace.registrations.push_back(
      TraceRegistration{1, {10, 0.0}, {0.5, 0.5}});
  trace.updates.push_back({0, {0.3, 0.7}, 1});
  trace.updates.push_back({1, {0.55, 0.5}, 1});
  trace.updates.push_back({0, {0.35, 0.65}, 2});
  return trace;
}

TEST(TraceTest, RoundTrip) {
  const std::string path = TempPath("roundtrip.trace");
  const Trace original = SmallTrace();
  ASSERT_TRUE(WriteTrace(original, path).ok());

  auto loaded = ReadTrace(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->registrations.size(), 2u);
  ASSERT_EQ(loaded->updates.size(), 3u);
  EXPECT_EQ(loaded->registrations[0].uid, 0u);
  EXPECT_EQ(loaded->registrations[0].profile.k, 5u);
  EXPECT_DOUBLE_EQ(loaded->registrations[0].profile.a_min, 0.001);
  EXPECT_EQ(loaded->registrations[0].position, (Point{0.25, 0.75}));
  EXPECT_EQ(loaded->updates[2].tick, 2u);
  EXPECT_EQ(loaded->updates[2].uid, 0u);
  std::remove(path.c_str());
}

TEST(TraceTest, DoublesSurviveExactly) {
  const std::string path = TempPath("exact.trace");
  Trace trace;
  trace.registrations.push_back(
      TraceRegistration{7, {3, 1.0 / 3.0}, {0.1 + 1e-17, 2.0 / 3.0}});
  ASSERT_TRUE(WriteTrace(trace, path).ok());
  auto loaded = ReadTrace(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->registrations[0].profile.a_min, 1.0 / 3.0);
  EXPECT_EQ(loaded->registrations[0].position.y, 2.0 / 3.0);
  std::remove(path.c_str());
}

TEST(TraceTest, MissingFile) {
  EXPECT_EQ(ReadTrace("/nonexistent/path/x.trace").status().code(),
            StatusCode::kNotFound);
}

TEST(TraceTest, MalformedRecords) {
  const std::string path = TempPath("bad.trace");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fprintf(f, "U,1,5\n");  // Too few fields.
    std::fclose(f);
  }
  EXPECT_EQ(ReadTrace(path).status().code(), StatusCode::kInvalidArgument);
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fprintf(f, "X,1,2,3\n");  // Unknown type.
    std::fclose(f);
  }
  EXPECT_EQ(ReadTrace(path).status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(TraceTest, CommentsAndBlankLinesIgnored) {
  const std::string path = TempPath("comments.trace");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fprintf(f, "# header\n\nU,3,2,0.5,0.1,0.2\n# trailing\n");
    std::fclose(f);
  }
  auto loaded = ReadTrace(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->registrations.size(), 1u);
  std::remove(path.c_str());
}

TEST(TraceTest, UpdatesByTickGroups) {
  const Trace trace = SmallTrace();
  const auto ticks = trace.UpdatesByTick();
  ASSERT_EQ(ticks.size(), 2u);
  EXPECT_EQ(ticks[0].size(), 2u);
  EXPECT_EQ(ticks[1].size(), 1u);
}

TEST(TraceTest, RecordAndReplayThroughAnonymizer) {
  network::NetworkGeneratorOptions opt;
  opt.rows = 8;
  opt.cols = 8;
  auto net = network::NetworkGenerator(opt).Generate(5);
  ASSERT_TRUE(net.ok());
  network::SimulatorOptions sopt;
  sopt.object_count = 40;
  network::MovingObjectSimulator sim(&*net, sopt, 6);

  Rng rng(7);
  ProfileDistribution dist;
  dist.k_min = 1;
  dist.k_max = 5;
  const Trace trace = RecordTrace(&sim, 40, dist, 4, &rng);
  EXPECT_EQ(trace.registrations.size(), 40u);
  EXPECT_EQ(trace.updates.size(), 160u);

  // Replaying the same trace into two anonymizers yields identical
  // cloaks (determinism / replayability guarantee).
  anonymizer::PyramidConfig config;
  config.space = net->bounds();
  config.height = 5;
  anonymizer::BasicAnonymizer a(config);
  anonymizer::BasicAnonymizer b(config);
  for (const auto& anon : {&a, &b}) {
    for (const auto& r : trace.registrations) {
      ASSERT_TRUE(anon->RegisterUser(r.uid, r.profile,
                                     ClampToRect(r.position, config.space))
                      .ok());
    }
    for (const auto& batch : trace.UpdatesByTick()) {
      ASSERT_TRUE(ApplyTick(batch, anon).ok());
    }
  }
  for (anonymizer::UserId uid = 0; uid < 40; ++uid) {
    auto ca = a.Cloak(uid);
    auto cb = b.Cloak(uid);
    ASSERT_TRUE(ca.ok());
    ASSERT_TRUE(cb.ok());
    EXPECT_EQ(ca->region, cb->region);
  }
}

}  // namespace
}  // namespace casper::workload
