#include "src/anonymizer/cloaking.h"

#include <gtest/gtest.h>

#include <unordered_map>

#include "src/common/rng.h"

namespace casper::anonymizer {
namespace {

/// A synthetic pyramid backed by explicit user points: counts computed
/// on the fly, serving as a simple oracle for Algorithm 1.
class PointPyramid {
 public:
  PointPyramid(PyramidConfig config, std::vector<Point> points)
      : config_(config), points_(std::move(points)) {}

  uint64_t Count(const CellId& cell) const {
    const Rect r = config_.CellRect(cell);
    uint64_t n = 0;
    // Count cell membership the way the pyramid does (by leaf cell), not
    // by geometric containment, so shared boundaries are unambiguous.
    for (const Point& p : points_) {
      CellId pc = config_.CellAt(static_cast<int>(cell.level), p);
      if (pc == cell) ++n;
    }
    (void)r;
    return n;
  }

  CellCountFn CountFn() const {
    return [this](const CellId& cell) { return Count(cell); };
  }

  const PyramidConfig& config() const { return config_; }
  uint64_t total() const { return points_.size(); }

 private:
  PyramidConfig config_;
  std::vector<Point> points_;
};

PointPyramid UniformPyramid(size_t n, int height, uint64_t seed) {
  PyramidConfig config;
  config.height = height;
  Rng rng(seed);
  std::vector<Point> points;
  for (size_t i = 0; i < n; ++i) points.push_back(rng.PointIn(config.space));
  return PointPyramid(config, std::move(points));
}

TEST(CloakingTest, SatisfiedAtStartCellReturnsIt) {
  PointPyramid pyramid = UniformPyramid(4096, 4, 1);
  // k=1, no area requirement: the start cell itself qualifies whenever
  // the user is inside it (count >= 1).
  PrivacyProfile profile{1, 0.0};
  const CellId start = pyramid.config().CellAt(4, {0.3, 0.3});
  auto result = BottomUpCloak(pyramid.config(), pyramid.CountFn(),
                              pyramid.total(), profile, start);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->region, pyramid.config().CellRect(start));
  EXPECT_EQ(result->levels_visited, 1);
  EXPECT_FALSE(result->merged_with_neighbor);
}

TEST(CloakingTest, SatisfiesKRequirement) {
  PointPyramid pyramid = UniformPyramid(2000, 6, 2);
  Rng rng(3);
  for (uint32_t k : {1u, 5u, 20u, 100u, 500u}) {
    for (int i = 0; i < 20; ++i) {
      const Point p = rng.PointIn(pyramid.config().space);
      const CellId start = pyramid.config().LeafCellAt(p);
      auto result = BottomUpCloak(pyramid.config(), pyramid.CountFn(),
                                  pyramid.total(), PrivacyProfile{k, 0.0},
                                  start);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_GE(result->users_in_region, k);
      EXPECT_TRUE(result->region.Contains(p));
    }
  }
}

TEST(CloakingTest, SatisfiesAreaRequirement) {
  PointPyramid pyramid = UniformPyramid(1000, 6, 4);
  Rng rng(5);
  for (double a_min : {0.0, 1e-4, 1e-3, 1e-2, 0.2, 1.0}) {
    for (int i = 0; i < 10; ++i) {
      const Point p = rng.PointIn(pyramid.config().space);
      auto result = BottomUpCloak(pyramid.config(), pyramid.CountFn(),
                                  pyramid.total(), PrivacyProfile{1, a_min},
                                  pyramid.config().LeafCellAt(p));
      ASSERT_TRUE(result.ok());
      EXPECT_GE(result->region.Area(), a_min - 1e-12);
    }
  }
}

TEST(CloakingTest, RegionIsCellOrNeighborUnion) {
  PointPyramid pyramid = UniformPyramid(500, 5, 6);
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const Point p = rng.PointIn(pyramid.config().space);
    const uint32_t k = static_cast<uint32_t>(rng.UniformInt(1, 100));
    auto result = BottomUpCloak(pyramid.config(), pyramid.CountFn(),
                                pyramid.total(), PrivacyProfile{k, 0.0},
                                pyramid.config().LeafCellAt(p));
    ASSERT_TRUE(result.ok());
    // The region must be an axis-aligned 1x1 cell or a 1x2/2x1 block.
    const double ratio = result->region.width() / result->region.height();
    if (result->merged_with_neighbor) {
      EXPECT_TRUE(std::abs(ratio - 2.0) < 1e-9 ||
                  std::abs(ratio - 0.5) < 1e-9);
    } else {
      EXPECT_NEAR(ratio, 1.0, 1e-9);
    }
  }
}

TEST(CloakingTest, NeighborMergePrefersCloserToK) {
  // Craft a 2-level pyramid: lowest level 2x2. Put 3 users in cell
  // (0,0), 5 in its horizontal neighbor (1,0), 9 in the vertical
  // neighbor (0,1), 0 elsewhere.
  PyramidConfig config;
  config.height = 1;
  std::vector<Point> points;
  auto add = [&](double x, double y, int n) {
    for (int i = 0; i < n; ++i) points.push_back({x, y});
  };
  add(0.25, 0.25, 3);   // cell (0,0)
  add(0.75, 0.25, 5);   // cell (1,0) horizontal neighbor
  add(0.25, 0.75, 9);   // cell (0,1) vertical neighbor
  PointPyramid pyramid(config, points);

  // k=8: N_H = 3+5 = 8 >= 8, N_V = 3+9 = 12 >= 8, N_H <= N_V: horizontal.
  auto result =
      BottomUpCloak(config, pyramid.CountFn(), 17, PrivacyProfile{8, 0.0},
                    CellId{1, 0, 0});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->merged_with_neighbor);
  EXPECT_EQ(result->users_in_region, 8u);
  EXPECT_EQ(result->region, Rect(0, 0, 1, 0.5));  // Bottom row.

  // k=9: N_H = 8 < 9, N_V = 12 >= 9: vertical merge.
  result = BottomUpCloak(config, pyramid.CountFn(), 17,
                         PrivacyProfile{9, 0.0}, CellId{1, 0, 0});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->merged_with_neighbor);
  EXPECT_EQ(result->users_in_region, 12u);
  EXPECT_EQ(result->region, Rect(0, 0, 0.5, 1));  // Left column.

  // k=13: neither union works; falls to root.
  result = BottomUpCloak(config, pyramid.CountFn(), 17,
                         PrivacyProfile{13, 0.0}, CellId{1, 0, 0});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->region, config.space);
  EXPECT_EQ(result->users_in_region, 17u);
  EXPECT_EQ(result->levels_visited, 2);
}

TEST(CloakingTest, AreaRequirementBlocksNeighborMerge) {
  // Same population; k=8 is achievable via the bottom-row merge whose
  // area is 0.5, but a_min of 0.9 forces the root.
  PyramidConfig config;
  config.height = 1;
  std::vector<Point> points;
  for (int i = 0; i < 8; ++i) {
    points.push_back({i < 3 ? 0.25 : 0.75, 0.25});
  }
  PointPyramid pyramid(config, points);
  auto result = BottomUpCloak(config, pyramid.CountFn(), 8,
                              PrivacyProfile{8, 0.9}, CellId{1, 0, 0});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->region, config.space);
}

TEST(CloakingTest, DisableNeighborMergeAblation) {
  PyramidConfig config;
  config.height = 1;
  std::vector<Point> points;
  for (int i = 0; i < 4; ++i) points.push_back({i < 2 ? 0.25 : 0.75, 0.25});
  PointPyramid pyramid(config, points);

  CloakingOptions no_merge;
  no_merge.enable_neighbor_merge = false;
  // k=4 via merge would give the bottom row; without merge -> root.
  auto with = BottomUpCloak(config, pyramid.CountFn(), 4,
                            PrivacyProfile{4, 0.0}, CellId{1, 0, 0});
  auto without = BottomUpCloak(config, pyramid.CountFn(), 4,
                               PrivacyProfile{4, 0.0}, CellId{1, 0, 0},
                               no_merge);
  ASSERT_TRUE(with.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_TRUE(with->merged_with_neighbor);
  EXPECT_EQ(without->region, config.space);
  EXPECT_LE(with->region.Area(), without->region.Area());
}

TEST(CloakingTest, ValidatesPreconditions) {
  PointPyramid pyramid = UniformPyramid(10, 3, 8);
  const CellId start = pyramid.config().LeafCellAt({0.5, 0.5});
  // k = 0.
  EXPECT_EQ(BottomUpCloak(pyramid.config(), pyramid.CountFn(), 10,
                          PrivacyProfile{0, 0.0}, start)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // k > population.
  EXPECT_EQ(BottomUpCloak(pyramid.config(), pyramid.CountFn(), 10,
                          PrivacyProfile{11, 0.0}, start)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
  // a_min > space area.
  EXPECT_EQ(BottomUpCloak(pyramid.config(), pyramid.CountFn(), 10,
                          PrivacyProfile{1, 2.0}, start)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
  // Start below pyramid height.
  EXPECT_EQ(BottomUpCloak(pyramid.config(), pyramid.CountFn(), 10,
                          PrivacyProfile{1, 0.0}, CellId{9, 0, 0})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(CloakingTest, StricterProfileNeverShrinksRegion) {
  PointPyramid pyramid = UniformPyramid(800, 6, 9);
  Rng rng(10);
  for (int i = 0; i < 50; ++i) {
    const Point p = rng.PointIn(pyramid.config().space);
    const CellId start = pyramid.config().LeafCellAt(p);
    double prev_area = 0.0;
    for (uint32_t k : {1u, 4u, 16u, 64u, 256u}) {
      auto result = BottomUpCloak(pyramid.config(), pyramid.CountFn(),
                                  pyramid.total(), PrivacyProfile{k, 0.0},
                                  start);
      ASSERT_TRUE(result.ok());
      EXPECT_GE(result->region.Area(), prev_area - 1e-12);
      prev_area = result->region.Area();
    }
  }
}

}  // namespace
}  // namespace casper::anonymizer
