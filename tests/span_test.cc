#include "src/obs/span.h"

#include <gtest/gtest.h>

/// Tests of the query-span tracer: phase accumulation, histogram
/// fold-in, and the recent-span ring.

namespace casper::obs {
namespace {

TEST(SpanTest, ScopedPhaseAccumulatesOntoSpan) {
  QuerySpan span;
  {
    ScopedPhase phase(&span, Phase::kEvaluate);
  }
  {
    ScopedPhase phase(&span, Phase::kEvaluate);  // Accumulates, not replaces.
  }
  EXPECT_GT(span.phase_seconds[static_cast<size_t>(Phase::kEvaluate)], 0.0);
  EXPECT_DOUBLE_EQ(span.phase_seconds[static_cast<size_t>(Phase::kCloak)],
                   0.0);
  EXPECT_GT(span.TotalSeconds(), 0.0);
}

TEST(SpanTest, StartAssignsMonotonicIdsAndKind) {
  MetricsRegistry registry;
  QueryTracer tracer(&registry);
  const QuerySpan a = tracer.Start("nearest_public");
  const QuerySpan b = tracer.Start("density");
  EXPECT_LT(a.trace_id, b.trace_id);
  EXPECT_STREQ(a.kind, "nearest_public");
  EXPECT_STREQ(b.kind, "density");
}

TEST(SpanTest, FinishFoldsOnlyRunPhasesIntoHistograms) {
  MetricsRegistry registry;
  QueryTracer tracer(&registry);

  QuerySpan span = tracer.Start("range_public");
  span.phase_seconds[static_cast<size_t>(Phase::kCloak)] = 0.002;
  span.phase_seconds[static_cast<size_t>(Phase::kEvaluate)] = 0.004;
  // wire_encode and refine stay zero: phase not run.
  tracer.Finish(span);

  const MetricsSnapshot snapshot = registry.Scrape();
  const MetricFamily* phases = nullptr;
  for (const MetricFamily& family : snapshot.families) {
    if (family.name == "casper_query_phase_seconds") phases = &family;
  }
  ASSERT_NE(phases, nullptr);
  ASSERT_EQ(phases->samples.size(), kPhaseCount);
  for (const MetricSample& sample : phases->samples) {
    const std::string& phase = sample.labels[0].second;
    const uint64_t expected =
        (phase == "cloak" || phase == "evaluate") ? 1u : 0u;
    EXPECT_EQ(sample.histogram.count, expected) << "phase=" << phase;
  }
  EXPECT_EQ(tracer.finished_count(), 1u);
}

TEST(SpanTest, RecordPhaseBypassesSpans) {
  MetricsRegistry registry;
  QueryTracer tracer(&registry);
  tracer.RecordPhase(Phase::kCloak, 0.01);
  const MetricsSnapshot snapshot = registry.Scrape();
  for (const MetricFamily& family : snapshot.families) {
    if (family.name != "casper_query_phase_seconds") continue;
    for (const MetricSample& sample : family.samples) {
      if (sample.labels[0].second == "cloak") {
        EXPECT_EQ(sample.histogram.count, 1u);
      }
    }
  }
  EXPECT_EQ(tracer.finished_count(), 0u);  // Not a finished span.
}

TEST(SpanTest, RingKeepsMostRecentSpansInOrder) {
  MetricsRegistry registry;
  QueryTracer tracer(&registry, /*ring_capacity=*/3);
  for (int i = 0; i < 5; ++i) {
    tracer.Finish(tracer.Start("density"));
  }
  const std::vector<QuerySpan> recent = tracer.Recent();
  ASSERT_EQ(recent.size(), 3u);
  // Oldest first, and only the last three survive.
  EXPECT_LT(recent[0].trace_id, recent[1].trace_id);
  EXPECT_LT(recent[1].trace_id, recent[2].trace_id);
  EXPECT_EQ(recent[2].trace_id, 5u);
}

TEST(SpanTest, PhaseNamesAreStable) {
  EXPECT_STREQ(PhaseName(Phase::kCloak), "cloak");
  EXPECT_STREQ(PhaseName(Phase::kWireEncode), "wire_encode");
  EXPECT_STREQ(PhaseName(Phase::kEvaluate), "evaluate");
  EXPECT_STREQ(PhaseName(Phase::kRefine), "refine");
}

}  // namespace
}  // namespace casper::obs
