#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>

#include "src/obs/casper_metrics.h"
#include "src/obs/metrics.h"
#include "src/storage/disk_storage.h"

/// Torn-write recovery: a page file corrupted or truncated underneath a
/// committed store must surface as a *typed* kDataLoss on the next read
/// — never a crash, never silently served garbage. Each test commits a
/// store, damages the files out-of-band (what a torn sector or a
/// half-finished write leaves behind), and asserts the typed failure
/// plus the checksum-failure counter.

namespace casper::storage {
namespace {

class StorageCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    registry_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = std::make_unique<obs::CasperMetrics>(registry_.get());
    path_ = testing::TempDir() + "casper_corrupt_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            "_" + std::to_string(::getpid());
  }

  void TearDown() override {
    std::remove(dat().c_str());
    std::remove(idx().c_str());
  }

  std::string dat() const { return path_ + ".dat"; }
  std::string idx() const { return path_ + ".idx"; }

  DiskStorageOptions Options() {
    DiskStorageOptions options;
    options.metrics = metrics_.get();
    return options;
  }

  /// Create a store holding one committed page; returns its id.
  PageId CommitOnePage(const std::string& payload) {
    auto created = DiskStorageManager::Create(path_, Options());
    EXPECT_TRUE(created.ok());
    auto stored = (*created)->Store(kNoPage, payload);
    EXPECT_TRUE(stored.ok());
    EXPECT_TRUE((*created)->Flush().ok());
    return *stored;
  }

  /// XOR one byte at `offset` in `file` (a torn sector in miniature).
  void FlipByte(const std::string& file, long offset) {
    std::FILE* f = std::fopen(file.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    if (offset < 0) {
      ASSERT_EQ(std::fseek(f, 0, SEEK_END), 0);
      offset = std::ftell(f) + offset;
    }
    ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
    int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
    ASSERT_NE(std::fputc(c ^ 0x40, f), EOF);
    std::fclose(f);
  }

  void Truncate(const std::string& file, long keep_bytes) {
    std::string contents;
    {
      std::FILE* f = std::fopen(file.c_str(), "rb");
      ASSERT_NE(f, nullptr);
      char buf[1 << 14];
      size_t n;
      while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        contents.append(buf, n);
      std::fclose(f);
    }
    ASSERT_LT(static_cast<size_t>(keep_bytes), contents.size());
    std::FILE* f = std::fopen(file.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(contents.data(), 1, keep_bytes, f),
              static_cast<size_t>(keep_bytes));
    std::fclose(f);
  }

  uint64_t ChecksumFailures() const {
    return metrics_->storage_checksum_failures_total->Value();
  }

  std::string path_;
  std::unique_ptr<obs::MetricsRegistry> registry_;
  std::unique_ptr<obs::CasperMetrics> metrics_;
};

TEST_F(StorageCorruptionTest, CorruptedPagePayloadFailsDataLoss) {
  const PageId id = CommitOnePage(std::string(2000, 'p'));
  FlipByte(dat(), 100);

  auto reopened = DiskStorageManager::Open(path_, Options());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  std::string out;
  const Status loaded = (*reopened)->Load(id, &out);
  EXPECT_EQ(loaded.code(), StatusCode::kDataLoss) << loaded.ToString();
  EXPECT_GE(ChecksumFailures(), 1u);
}

TEST_F(StorageCorruptionTest, TruncatedDataFileFailsDataLoss) {
  // A payload spanning two slots, with the second slot torn off — the
  // classic torn multi-slot write after a crash.
  const PageId id = CommitOnePage(std::string(6000, 'q'));
  Truncate(dat(), 4096);

  auto reopened = DiskStorageManager::Open(path_, Options());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  std::string out;
  const Status loaded = (*reopened)->Load(id, &out);
  EXPECT_EQ(loaded.code(), StatusCode::kDataLoss) << loaded.ToString();
  EXPECT_GE(ChecksumFailures(), 1u);
}

TEST_F(StorageCorruptionTest, CorruptedHeaderFailsDataLossOnOpen) {
  CommitOnePage("payload");
  FlipByte(idx(), 24);

  const auto reopened = DiskStorageManager::Open(path_, Options());
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kDataLoss)
      << reopened.status().ToString();
}

TEST_F(StorageCorruptionTest, TruncatedHeaderFailsDataLossOnOpen) {
  CommitOnePage("payload");
  Truncate(idx(), 10);

  const auto reopened = DiskStorageManager::Open(path_, Options());
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kDataLoss)
      << reopened.status().ToString();
}

TEST_F(StorageCorruptionTest, CorruptedHeaderChecksumTrailerFails) {
  CommitOnePage("payload");
  FlipByte(idx(), -3);  // Inside the trailing FNV-1a-64 seal.

  const auto reopened = DiskStorageManager::Open(path_, Options());
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kDataLoss);
}

TEST_F(StorageCorruptionTest, IntactStoreStillOpensAfterFailedLoad) {
  // kDataLoss on one page must not poison the manager: other pages
  // keep loading.
  auto created = DiskStorageManager::Create(path_, Options());
  ASSERT_TRUE(created.ok());
  auto good = (*created)->Store(kNoPage, "good");
  auto bad = (*created)->Store(kNoPage, std::string(3000, 'b'));
  ASSERT_TRUE(good.ok() && bad.ok());
  ASSERT_TRUE((*created)->Flush().ok());
  created->reset();

  // Damage only the second page's payload region. The first page is
  // tiny and occupies slot 0; the big page spans slots 1..2, so byte
  // 5000 lands inside it.
  FlipByte(dat(), 5000);
  auto reopened = DiskStorageManager::Open(path_, Options());
  ASSERT_TRUE(reopened.ok());
  std::string out;
  EXPECT_TRUE((*reopened)->Load(*good, &out).ok());
  EXPECT_EQ(out, "good");
  EXPECT_EQ((*reopened)->Load(*bad, &out).code(), StatusCode::kDataLoss);
}

}  // namespace
}  // namespace casper::storage
