#include "src/processor/private_nn.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/rng.h"

namespace casper::processor {
namespace {

std::vector<PublicTarget> UniformTargets(size_t n, Rng* rng,
                                         const Rect& space) {
  std::vector<PublicTarget> targets;
  for (uint64_t i = 0; i < n; ++i) {
    targets.push_back({i, rng->PointIn(space)});
  }
  return targets;
}

uint64_t BruteNearestId(const std::vector<PublicTarget>& targets,
                        const Point& q) {
  uint64_t best = targets.front().id;
  double best_d = 1e300;
  for (const auto& t : targets) {
    const double d = SquaredDistance(q, t.position);
    if (d < best_d) {
      best_d = d;
      best = t.id;
    }
  }
  return best;
}

TEST(PrivateNNTest, BasicCandidateList) {
  Rng rng(1);
  const Rect space(0, 0, 1, 1);
  auto targets = UniformTargets(200, &rng, space);
  PublicTargetStore store(targets);

  const Rect cloak(0.4, 0.4, 0.6, 0.6);
  auto result = PrivateNearestNeighbor(store, cloak);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->size(), 0u);
  EXPECT_LT(result->size(), targets.size());
  EXPECT_TRUE(result->area.a_ext.Contains(cloak));
}

TEST(PrivateNNTest, ErrorPaths) {
  PublicTargetStore empty_store;
  EXPECT_EQ(PrivateNearestNeighbor(empty_store, Rect(0, 0, 1, 1))
                .status()
                .code(),
            StatusCode::kNotFound);
  PublicTargetStore store(std::vector<PublicTarget>{{0, {0.5, 0.5}}});
  EXPECT_EQ(PrivateNearestNeighbor(store, Rect()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PrivateNNTest, SingleTargetAlwaysInList) {
  PublicTargetStore store(std::vector<PublicTarget>{{0, {0.9, 0.9}}});
  auto result = PrivateNearestNeighbor(store, Rect(0.1, 0.1, 0.2, 0.2));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ(result->candidates[0].id, 0u);
}

TEST(PrivateNNTest, RefineNearestPicksExact) {
  std::vector<PublicTarget> candidates = {
      {0, {0.0, 0.0}}, {1, {0.5, 0.5}}, {2, {1.0, 1.0}}};
  auto best = RefineNearest(candidates, {0.6, 0.6});
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(best->id, 1u);
  EXPECT_EQ(RefineNearest({}, {0, 0}).status().code(), StatusCode::kNotFound);
}

/// Inclusiveness (Theorem 1) sweep: for every filter policy, every
/// cloak, and every possible user position inside the cloak, the true
/// nearest target must be in the candidate list.
struct InclusionParams {
  size_t targets;
  double cloak_size;
  FilterPolicy policy;
  uint64_t seed;
};

class InclusivenessTest : public ::testing::TestWithParam<InclusionParams> {};

TEST_P(InclusivenessTest, CandidateListContainsTrueNearest) {
  const InclusionParams params = GetParam();
  Rng rng(params.seed);
  const Rect space(0, 0, 1, 1);
  auto targets = UniformTargets(params.targets, &rng, space);
  PublicTargetStore store(targets);

  for (int trial = 0; trial < 40; ++trial) {
    const double s = params.cloak_size;
    const Point c = rng.PointIn(Rect(0, 0, 1 - s, 1 - s));
    const Rect cloak(c.x, c.y, c.x + s, c.y + s);
    auto result = PrivateNearestNeighbor(store, cloak, params.policy);
    ASSERT_TRUE(result.ok());

    std::vector<uint64_t> candidate_ids;
    for (const auto& t : result->candidates) candidate_ids.push_back(t.id);
    std::sort(candidate_ids.begin(), candidate_ids.end());

    // Sample user positions across the cloak, including corners/edges.
    for (int sx = 0; sx <= 6; ++sx) {
      for (int sy = 0; sy <= 6; ++sy) {
        const Point user{cloak.min.x + sx / 6.0 * cloak.width(),
                         cloak.min.y + sy / 6.0 * cloak.height()};
        const uint64_t true_nn = BruteNearestId(targets, user);
        EXPECT_TRUE(std::binary_search(candidate_ids.begin(),
                                       candidate_ids.end(), true_nn))
            << "policy=" << static_cast<int>(params.policy)
            << " user=" << user.x << "," << user.y;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, InclusivenessTest,
    ::testing::Values(
        InclusionParams{50, 0.1, FilterPolicy::kOneFilter, 1},
        InclusionParams{50, 0.1, FilterPolicy::kTwoFilters, 1},
        InclusionParams{50, 0.1, FilterPolicy::kFourFilters, 1},
        InclusionParams{500, 0.05, FilterPolicy::kOneFilter, 2},
        InclusionParams{500, 0.05, FilterPolicy::kTwoFilters, 2},
        InclusionParams{500, 0.05, FilterPolicy::kFourFilters, 2},
        InclusionParams{2000, 0.2, FilterPolicy::kOneFilter, 3},
        InclusionParams{2000, 0.2, FilterPolicy::kTwoFilters, 3},
        InclusionParams{2000, 0.2, FilterPolicy::kFourFilters, 3},
        InclusionParams{10, 0.5, FilterPolicy::kFourFilters, 4},
        InclusionParams{3, 0.8, FilterPolicy::kFourFilters, 5},
        InclusionParams{100, 0.01, FilterPolicy::kFourFilters, 6}));

/// More filters should never enlarge the extended area (each side's
/// extension distance is computed from tighter upper bounds).
TEST(PrivateNNTest, MoreFiltersGiveSmallerOrEqualAExt) {
  Rng rng(7);
  const Rect space(0, 0, 1, 1);
  auto targets = UniformTargets(500, &rng, space);
  PublicTargetStore store(targets);
  int four_strictly_smaller = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const Point c = rng.PointIn(Rect(0.1, 0.1, 0.7, 0.7));
    const Rect cloak(c.x, c.y, c.x + 0.2, c.y + 0.2);
    auto one = PrivateNearestNeighbor(store, cloak, FilterPolicy::kOneFilter);
    auto four =
        PrivateNearestNeighbor(store, cloak, FilterPolicy::kFourFilters);
    ASSERT_TRUE(one.ok());
    ASSERT_TRUE(four.ok());
    // Four per-vertex nearest filters give the tightest per-vertex
    // bounds, so A_EXT (and the candidate list) can only shrink.
    EXPECT_LE(four->area.a_ext.Area(), one->area.a_ext.Area() + 1e-12);
    EXPECT_LE(four->size(), one->size());
    if (four->area.a_ext.Area() < one->area.a_ext.Area() - 1e-12) {
      ++four_strictly_smaller;
    }
  }
  EXPECT_GT(four_strictly_smaller, 0);  // The sweep must show real wins.
}

TEST(PrivateNNTest, CandidateListMuchSmallerThanSendAll) {
  Rng rng(9);
  const Rect space(0, 0, 1, 1);
  auto targets = UniformTargets(5000, &rng, space);
  PublicTargetStore store(targets);
  const Rect cloak(0.45, 0.45, 0.55, 0.55);
  auto result = PrivateNearestNeighbor(store, cloak);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->size(), targets.size() / 10);
}

TEST(PrivateNNTest, CandidatesAreExactlyTargetsInAExt) {
  Rng rng(10);
  const Rect space(0, 0, 1, 1);
  auto targets = UniformTargets(300, &rng, space);
  PublicTargetStore store(targets);
  const Rect cloak(0.3, 0.6, 0.5, 0.7);
  auto result = PrivateNearestNeighbor(store, cloak);
  ASSERT_TRUE(result.ok());
  std::vector<uint64_t> got;
  for (const auto& t : result->candidates) got.push_back(t.id);
  std::sort(got.begin(), got.end());
  std::vector<uint64_t> expect;
  for (const auto& t : targets) {
    if (result->area.a_ext.Contains(t.position)) expect.push_back(t.id);
  }
  EXPECT_EQ(got, expect);
}

}  // namespace
}  // namespace casper::processor
