#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/casper/messages.h"
#include "src/obs/metrics.h"
#include "src/obs/shard_metrics.h"
#include "src/server/query_server.h"
#include "src/sharding/shard_router.h"

/// ShardRouter unit tests: routing of public targets and region
/// maintenance to owning shards, cross-shard replace handling, wire
/// error parity with the single server, and the casper_shard_* metrics.

namespace casper::sharding {
namespace {

Rect CellRegion(double cx, double cy, double half) {
  return Rect(cx - half, cy - half, cx + half, cy + half);
}

class ShardRouterTest : public ::testing::Test {
 protected:
  ShardRouterTest() {
    ShardRouterOptions options;
    options.num_shards = 4;
    options.partition_level = 2;  // 16 cells, 4 per shard
    options.space = Rect(0.0, 0.0, 1.0, 1.0);
    options.registry = &registry_;
    router_ = std::make_unique<ShardRouter>(options);
  }

  static RegionUpsertMsg Upsert(uint64_t id, uint64_t handle,
                                const Rect& region) {
    RegionUpsertMsg msg;
    msg.request_id = id;
    msg.handle = handle;
    msg.region = region;
    return msg;
  }

  static RegionUpsertMsg Replace(uint64_t id, uint64_t handle,
                                 uint64_t replaces, const Rect& region) {
    RegionUpsertMsg msg = Upsert(id, handle, region);
    msg.has_replaces = true;
    msg.replaces = replaces;
    return msg;
  }

  obs::MetricsRegistry registry_;
  std::unique_ptr<ShardRouter> router_;
};

TEST_F(ShardRouterTest, PublicTargetsLandOnTheirHomeShard) {
  // One target per quadrant of the Z-order: each uniform shard at
  // level 2 owns exactly one quadrant.
  router_->SetPublicTargets({{1, {0.1, 0.1}},
                             {2, {0.9, 0.1}},
                             {3, {0.1, 0.9}},
                             {4, {0.9, 0.9}}});
  EXPECT_EQ(router_->total_public(), 4u);
  for (size_t s = 0; s < router_->num_shards(); ++s) {
    EXPECT_EQ(router_->public_count(s), 1u) << "shard " << s;
    EXPECT_EQ(router_->metrics().stored_objects[s]->Value(), 1.0);
  }
}

TEST_F(ShardRouterTest, RegionsRouteByCenter) {
  ASSERT_TRUE(router_->Apply(Upsert(1, 100, CellRegion(0.1, 0.1, 0.05))).ok());
  ASSERT_TRUE(router_->Apply(Upsert(2, 101, CellRegion(0.9, 0.9, 0.05))).ok());
  EXPECT_EQ(router_->total_regions(), 2u);
  const size_t low = router_->partition().HomeShard({0.1, 0.1});
  const size_t high = router_->partition().HomeShard({0.9, 0.9});
  EXPECT_NE(low, high);
  EXPECT_EQ(router_->region_count(low), 1u);
  EXPECT_EQ(router_->region_count(high), 1u);
}

TEST_F(ShardRouterTest, RemoveRoutesToTheOwner) {
  ASSERT_TRUE(router_->Apply(Upsert(1, 100, CellRegion(0.1, 0.1, 0.05))).ok());
  RegionRemoveMsg remove;
  remove.request_id = 2;
  remove.handle = 100;
  ASSERT_TRUE(router_->Apply(remove).ok());
  EXPECT_EQ(router_->total_regions(), 0u);
}

TEST_F(ShardRouterTest, WireErrorsMatchTheSingleServer) {
  // Duplicate handle, unknown remove, and unknown replaces reproduce
  // the QueryServer's own typed failures.
  ASSERT_TRUE(router_->Apply(Upsert(1, 100, CellRegion(0.1, 0.1, 0.05))).ok());
  const Status dup =
      router_->Apply(Upsert(2, 100, CellRegion(0.9, 0.9, 0.05)));
  EXPECT_EQ(dup.code(), StatusCode::kInternal);
  EXPECT_NE(dup.message().find("already stored"), std::string::npos);

  RegionRemoveMsg remove;
  remove.request_id = 3;
  remove.handle = 999;
  const Status missing = router_->Apply(remove);
  EXPECT_EQ(missing.code(), StatusCode::kInternal);
  EXPECT_NE(missing.message().find("missing"), std::string::npos);

  const Status bad_replace =
      router_->Apply(Replace(4, 101, 999, CellRegion(0.9, 0.9, 0.05)));
  EXPECT_EQ(bad_replace.code(), StatusCode::kInternal);
}

TEST_F(ShardRouterTest, CrossShardReplaceMovesTheRegion) {
  const size_t low = router_->partition().HomeShard({0.1, 0.1});
  const size_t high = router_->partition().HomeShard({0.9, 0.9});
  ASSERT_NE(low, high);
  ASSERT_TRUE(router_->Apply(Upsert(1, 100, CellRegion(0.1, 0.1, 0.05))).ok());
  ASSERT_TRUE(
      router_->Apply(Replace(2, 100, 100, CellRegion(0.9, 0.9, 0.05))).ok());
  EXPECT_EQ(router_->region_count(low), 0u);
  EXPECT_EQ(router_->region_count(high), 1u);
  EXPECT_EQ(router_->total_regions(), 1u);

  // The moved region answers from its new home: a window query around
  // the new center sees exactly one region, the old center none.
  CloakedQueryMsg query;
  query.kind = QueryKind::kPublicRange;
  query.request_id = 7;
  query.region = CellRegion(0.9, 0.9, 0.1);
  auto answer = router_->Execute(query);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(std::get<processor::RangeCountResult>(answer->payload).possible,
            1u);

  query.region = CellRegion(0.1, 0.1, 0.1);
  answer = router_->Execute(query);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(std::get<processor::RangeCountResult>(answer->payload).possible,
            0u);
}

TEST_F(ShardRouterTest, SameShardReplaceForwardsAtomically) {
  ASSERT_TRUE(router_->Apply(Upsert(1, 100, CellRegion(0.1, 0.1, 0.05))).ok());
  ASSERT_TRUE(
      router_->Apply(Replace(2, 101, 100, CellRegion(0.15, 0.1, 0.05))).ok());
  EXPECT_EQ(router_->total_regions(), 1u);
  const size_t low = router_->partition().HomeShard({0.1, 0.1});
  EXPECT_EQ(router_->region_count(low), 1u);
}

TEST_F(ShardRouterTest, LoadPartitionsSnapshotAndClearsStaleState) {
  ASSERT_TRUE(router_->Apply(Upsert(1, 50, CellRegion(0.5, 0.5, 0.02))).ok());
  SnapshotMsg snapshot;
  snapshot.regions = {{200, CellRegion(0.1, 0.1, 0.05)},
                      {201, CellRegion(0.9, 0.9, 0.05)}};
  ASSERT_TRUE(router_->Load(snapshot).ok());
  EXPECT_EQ(router_->total_regions(), 2u);
  // The pre-load region is gone fleet-wide.
  CloakedQueryMsg query;
  query.kind = QueryKind::kPublicRange;
  query.region = Rect(0.0, 0.0, 1.0, 1.0);
  auto answer = router_->Execute(query);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(std::get<processor::RangeCountResult>(answer->payload).possible,
            2u);
}

TEST_F(ShardRouterTest, EmptyStoreErrorsMatchSingleServerMessages) {
  CloakedQueryMsg query;
  query.kind = QueryKind::kNearestPublic;
  query.cloak = Rect(0.4, 0.4, 0.6, 0.6);
  const auto nn = router_->Execute(query);
  ASSERT_FALSE(nn.ok());
  EXPECT_EQ(nn.status().code(), StatusCode::kNotFound);
  EXPECT_NE(nn.status().message().find("no public targets"),
            std::string::npos);

  query.kind = QueryKind::kNearestPrivate;
  const auto pnn = router_->Execute(query);
  ASSERT_FALSE(pnn.ok());
  EXPECT_EQ(pnn.status().code(), StatusCode::kNotFound);
  EXPECT_NE(pnn.status().message().find("no private targets"),
            std::string::npos);

  query.kind = QueryKind::kRangePublic;
  query.radius = -1.0;
  EXPECT_EQ(router_->Execute(query).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ShardRouterTest, FanOutTouchesOnlyIntersectingShards) {
  router_->SetPublicTargets({{1, {0.1, 0.1}},
                             {2, {0.9, 0.1}},
                             {3, {0.1, 0.9}},
                             {4, {0.9, 0.9}}});
  const size_t low = router_->partition().HomeShard({0.1, 0.1});
  const uint64_t before = router_->metrics().requests_total[low]->Value();
  uint64_t before_others = 0;
  for (size_t s = 0; s < router_->num_shards(); ++s) {
    if (s != low) before_others += router_->metrics().requests_total[s]->Value();
  }

  // A range query confined to shard `low`'s quadrant.
  CloakedQueryMsg query;
  query.kind = QueryKind::kRangePublic;
  query.cloak = Rect(0.05, 0.05, 0.2, 0.2);
  query.radius = 0.01;
  auto answer = router_->Execute(query);
  ASSERT_TRUE(answer.ok());
  EXPECT_FALSE(answer->degraded);
  EXPECT_EQ(std::get<processor::PublicRangeCandidates>(answer->payload)
                .candidates.size(),
            1u);

  EXPECT_GT(router_->metrics().requests_total[low]->Value(), before);
  uint64_t after_others = 0;
  for (size_t s = 0; s < router_->num_shards(); ++s) {
    if (s != low) after_others += router_->metrics().requests_total[s]->Value();
  }
  EXPECT_EQ(after_others, before_others);

  const auto fanout = router_->metrics().fanout_shards->Snapshot();
  EXPECT_GE(fanout.count, 1u);
}

TEST_F(ShardRouterTest, BreakersStartClosed) {
  for (size_t s = 0; s < router_->num_shards(); ++s) {
    EXPECT_EQ(router_->breaker_state(s), transport::BreakerState::kClosed);
  }
}

TEST_F(ShardRouterTest, NearestAcrossShardBoundaryMatchesSingleServer) {
  // The filter target of the cloak's corners lives across the Z-order
  // boundary from the cloak — the branch-and-bound probe must cross
  // shards, and the merged answer must be byte-identical to one
  // un-sharded server over the same store.
  const std::vector<processor::PublicTarget> targets = {
      {1, {0.30, 0.50}},   // far, left half
      {2, {0.51, 0.50}},   // near, right half: the cross-shard filter
      {3, {0.95, 0.95}}};
  router_->SetPublicTargets(targets);
  server::QueryServer reference{server::QueryServerOptions{}};
  reference.SetPublicTargets(targets);

  CloakedQueryMsg query;
  query.kind = QueryKind::kNearestPublic;
  query.request_id = 11;
  query.cloak = Rect(0.40, 0.45, 0.44, 0.55);  // fully left of midline
  auto routed = router_->Execute(query);
  auto single = reference.Execute(query, nullptr);
  ASSERT_TRUE(routed.ok()) << routed.status().ToString();
  ASSERT_TRUE(single.ok()) << single.status().ToString();
  // The router echoes the request id (it is a wire-level component,
  // like ServerEndpoint); a directly-called QueryServer does not.
  // Normalize both run-dependent fields before the byte comparison.
  routed->processor_seconds = 0.0;
  routed->request_id = 0;
  single->processor_seconds = 0.0;
  single->request_id = 0;
  EXPECT_EQ(Encode(*routed), Encode(*single));
  const auto& list = std::get<processor::PublicCandidateList>(routed->payload);
  bool has_cross_shard_winner = false;
  for (const auto& t : list.candidates) {
    has_cross_shard_winner |= t.id == 2;
  }
  EXPECT_TRUE(has_cross_shard_winner);
}

}  // namespace
}  // namespace casper::sharding
