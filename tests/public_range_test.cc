#include "src/processor/public_range.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace casper::processor {
namespace {

TEST(PublicRangeTest, CertainExpectedPossibleOrdering) {
  PrivateTargetStore store(std::vector<PrivateTarget>{
      {0, Rect(0.1, 0.1, 0.2, 0.2)},  // Fully inside.
      {1, Rect(0.0, 0.0, 1.0, 1.0)},  // Partially inside.
      {2, Rect(0.8, 0.8, 0.9, 0.9)},  // Outside.
  });
  auto result = PublicRangeCount(store, Rect(0.0, 0.0, 0.5, 0.5));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->certain, 1u);
  EXPECT_EQ(result->possible, 2u);
  EXPECT_GE(result->expected, static_cast<double>(result->certain));
  EXPECT_LE(result->expected, static_cast<double>(result->possible));
  // Fraction of target 1 inside the window: 0.25.
  EXPECT_NEAR(result->expected, 1.0 + 0.25, 1e-12);
}

TEST(PublicRangeTest, EmptyQueryRejected) {
  PrivateTargetStore store;
  EXPECT_EQ(PublicRangeCount(store, Rect()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PublicRangeTest, EmptyStoreCountsZero) {
  PrivateTargetStore store;
  auto result = PublicRangeCount(store, Rect(0, 0, 1, 1));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->possible, 0u);
  EXPECT_DOUBLE_EQ(result->expected, 0.0);
}

TEST(PublicRangeTest, DegenerateRegionsCountExactly) {
  // Degenerate (point) regions model public users; they count as 1.
  PrivateTargetStore store(std::vector<PrivateTarget>{
      {0, Rect::FromPoint({0.25, 0.25})},
      {1, Rect::FromPoint({0.75, 0.75})},
  });
  auto result = PublicRangeCount(store, Rect(0, 0, 0.5, 0.5));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->certain, 1u);
  EXPECT_EQ(result->possible, 1u);
  EXPECT_DOUBLE_EQ(result->expected, 1.0);
}

TEST(PublicRangeTest, ExpectedCountIsUnbiasedEstimator) {
  // Statistical check of the uniformity semantics: with users uniform in
  // their cloaks, the expected count should match the mean realized
  // count over many position draws.
  Rng rng(3);
  std::vector<PrivateTarget> regions;
  for (uint64_t i = 0; i < 50; ++i) {
    const Point c = rng.PointIn(Rect(0, 0, 0.8, 0.8));
    regions.push_back({i, Rect(c.x, c.y, c.x + 0.2, c.y + 0.2)});
  }
  PrivateTargetStore store(regions);
  const Rect query(0.2, 0.2, 0.7, 0.6);
  auto result = PublicRangeCount(store, query);
  ASSERT_TRUE(result.ok());

  double total = 0.0;
  constexpr int kDraws = 20000;
  for (int d = 0; d < kDraws; ++d) {
    int count = 0;
    for (const auto& r : regions) {
      if (query.Contains(rng.PointIn(r.region))) ++count;
    }
    total += count;
  }
  const double simulated = total / kDraws;
  EXPECT_NEAR(result->expected, simulated, 0.15);
}

TEST(PublicRangeTest, OverlappingListMatchesPossible) {
  Rng rng(5);
  std::vector<PrivateTarget> regions;
  for (uint64_t i = 0; i < 100; ++i) {
    const Point c = rng.PointIn(Rect(0, 0, 0.9, 0.9));
    regions.push_back({i, Rect(c.x, c.y, c.x + 0.1, c.y + 0.1)});
  }
  PrivateTargetStore store(regions);
  auto result = PublicRangeCount(store, Rect(0.3, 0.3, 0.6, 0.6));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->overlapping.size(), result->possible);
}

}  // namespace
}  // namespace casper::processor
