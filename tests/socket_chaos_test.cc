#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/casper/batch_query_engine.h"
#include "src/casper/casper.h"
#include "src/casper/workload.h"
#include "src/common/rng.h"
#include "src/transport/fault_injection.h"
#include "src/transport/listener.h"
#include "src/transport/socket_channel.h"

/// The PR-4 chaos acceptance suite, re-run over a *real* socket: the
/// tier channel becomes FaultInjectingChannel -> SocketChannel ->
/// SocketListener -> (the service's own in-process endpoint), so every
/// drop, duplicate, corruption, and delay now exercises framing,
/// connection pooling, reconnects, and the listener's worker pool on
/// top of the resilience stack. FaultInjectingChannel wraps the socket
/// channel *unchanged* — that composability is the point of the
/// Channel seam. A second test restarts the listener mid-run (a
/// network-level outage): the breaker must trip, the replay buffer
/// must hold the maintenance stream, and recovery must end with
/// exactly one region per user.

namespace casper {
namespace {

using transport::CallContext;
using transport::SocketChannel;
using transport::SocketChannelOptions;
using transport::SocketListener;

constexpr size_t kUsers = 24;
constexpr size_t kTargets = 60;
constexpr size_t kBatches = 6;
constexpr size_t kBatchSize = 60;

uint64_t BruteNearest(const std::vector<processor::PublicTarget>& targets,
                      const Point& p) {
  uint64_t best_id = 0;
  double best_d2 = -1.0;
  for (const processor::PublicTarget& t : targets) {
    const double dx = t.position.x - p.x;
    const double dy = t.position.y - p.y;
    const double d2 = dx * dx + dy * dy;
    if (best_d2 < 0.0 || d2 < best_d2) {
      best_d2 = d2;
      best_id = t.id;
    }
  }
  return best_id;
}

bool ContainsId(const std::vector<processor::PublicTarget>& candidates,
                uint64_t id) {
  for (const processor::PublicTarget& t : candidates) {
    if (t.id == id) return true;
  }
  return false;
}

server::BatchQueryRequest MixedRequest(size_t i, const Rect& space) {
  const uint64_t uid = i % kUsers;
  switch (i % 8) {
    case 0:
    case 4:
      return server::BatchQueryRequest::NearestPublic(uid);
    case 1:
      return server::BatchQueryRequest::KNearestPublic(uid, 3);
    case 2:
      return server::BatchQueryRequest::RangePublic(uid,
                                                    space.width() * 0.02);
    case 3:
      return server::BatchQueryRequest::NearestPrivate(uid);
    case 5:
      return server::BatchQueryRequest::PublicNearest(
          Point{space.min.x + space.width() * 0.3,
                space.min.y + space.height() * 0.7});
    case 6:
      return server::BatchQueryRequest::PublicRange(
          Rect(space.min.x, space.min.y,
               space.min.x + space.width() * 0.4,
               space.min.y + space.height() * 0.4));
    default:
      return server::BatchQueryRequest::Density(4, 4);
  }
}

/// Shuts the listener down before the service (and the inner channel
/// the listener's handler calls into) is destroyed, regardless of how
/// the test exits.
struct ListenerGuard {
  std::unique_ptr<SocketListener>* listener;
  ~ListenerGuard() {
    if (listener != nullptr && *listener != nullptr) {
      (*listener)->Shutdown();
    }
  }
};

TEST(SocketChaosTest, ChaosSuiteHoldsOverRealSockets) {
  transport::FaultProfile profile;
  profile.drop_request_rate = 0.03;
  profile.drop_response_rate = 0.02;
  profile.duplicate_rate = 0.02;
  profile.corrupt_request_rate = 0.02;
  profile.corrupt_response_rate = 0.02;
  profile.delay_rate = 0.01;
  profile.delay_micros = 50;
  ASSERT_GE(profile.CombinedRate(), 0.10);

  const std::string address = "unix:/tmp/casper_chaos_" +
                              std::to_string(getpid()) + ".sock";
  std::unique_ptr<SocketListener> listener;

  CasperOptions options;
  options.pyramid.height = 6;
  options.auto_sync_private_data = true;
  options.resilience.retry.max_attempts = 4;
  options.resilience.retry.initial_backoff_seconds = 1e-4;
  options.resilience.retry.max_backoff_seconds = 1e-3;
  options.resilience.retry.deadline_seconds = 5.0;
  options.resilience.breaker.failure_threshold = 8;
  options.resilience.breaker.open_seconds = 0.005;
  options.resilience.breaker.half_open_successes = 1;

  transport::FaultInjectingChannel* fault = nullptr;
  options.channel_decorator =
      [&listener, &address, &fault, &profile](transport::Channel* inner)
      -> std::unique_ptr<transport::Channel> {
    // The listener dispatches straight back into the service's own
    // endpoint via the inner DirectChannel — a loopback deployment, so
    // the suite's oracles keep working while the bytes really cross a
    // socket. SerializedHandler restores the facade's write/read
    // locking that a multi-worker listener cannot inherit.
    auto started = SocketListener::Start(
        address,
        transport::SerializedHandler(
            [inner](std::string_view request, const CallContext& context) {
              return inner->Call(request, context);
            }),
        transport::ListenerOptions{});
    EXPECT_TRUE(started.ok()) << started.status().ToString();
    listener = std::move(started).value();

    SocketChannelOptions socket_options;
    socket_options.io_timeout_seconds = 2.0;
    socket_options.backoff_initial_seconds = 0.001;
    socket_options.backoff_max_seconds = 0.01;
    struct Composite : transport::Channel {
      std::unique_ptr<SocketChannel> socket;
      std::unique_ptr<transport::FaultInjectingChannel> chaos;
      Result<std::string> Call(std::string_view request,
                               const CallContext& context) override {
        return chaos->Call(request, context);
      }
    };
    auto composite = std::make_unique<Composite>();
    composite->socket =
        std::make_unique<SocketChannel>(address, socket_options);
    composite->chaos = std::make_unique<transport::FaultInjectingChannel>(
        composite->socket.get(), profile, /*seed=*/0x50C4E7);
    fault = composite->chaos.get();
    return composite;
  };

  CasperService service(options);
  ListenerGuard guard{&listener};
  ASSERT_NE(fault, nullptr);
  ASSERT_NE(listener, nullptr);

  Rng rng(0x50C4);
  const Rect space = service.options().pyramid.space;
  for (anonymizer::UserId uid = 0; uid < kUsers; ++uid) {
    anonymizer::PrivacyProfile user_profile;
    user_profile.k = static_cast<uint32_t>(rng.UniformInt(1, 6));
    ASSERT_TRUE(
        service.RegisterUser(uid, user_profile, rng.PointIn(space)).ok());
  }
  const std::vector<processor::PublicTarget> targets =
      workload::UniformPublicTargets(kTargets, space, &rng);
  service.SetPublicTargets(targets);

  server::BatchEngineOptions engine_options;
  engine_options.threads = 4;
  engine_options.use_cache = true;
  server::BatchQueryEngine engine(&service, engine_options);

  size_t ok_count = 0;
  size_t inclusive_checks = 0;
  for (size_t batch = 0; batch < kBatches; ++batch) {
    if (batch == 3) {
      // Scripted hard outage on top of the random chaos: trips the
      // breaker even though the socket peer is alive. Short enough
      // (relative to the 360-query run) that well over half the
      // workload still succeeds.
      fault->FailRequests(fault->calls() + 1, fault->calls() + 12);
    }
    std::vector<server::BatchQueryRequest> requests;
    requests.reserve(kBatchSize);
    for (size_t i = 0; i < kBatchSize; ++i) {
      requests.push_back(MixedRequest(batch * kBatchSize + i, space));
    }
    const server::BatchResult result = engine.Execute(requests);
    ASSERT_EQ(result.responses.size(), requests.size());
    for (size_t i = 0; i < result.responses.size(); ++i) {
      const server::BatchQueryResponse& response = result.responses[i];
      if (!response.ok()) {
        EXPECT_TRUE(
            response.status.code() == StatusCode::kUnavailable ||
            response.status.code() == StatusCode::kDeadlineExceeded)
            << "batch " << batch << " slot " << i << ": "
            << response.status.message();
        continue;
      }
      ++ok_count;
      if (response.kind != QueryKind::kNearestPublic) continue;
      ASSERT_NE(response.nearest_public(), nullptr);
      const PublicNNResponse& nn = *response.nearest_public();
      const uint64_t uid = requests[i].uid;
      const auto position = service.ClientPosition(uid);
      ASSERT_TRUE(position.ok());
      const uint64_t truth = BruteNearest(targets, position.value());
      EXPECT_TRUE(ContainsId(nn.server_answer.candidates, truth))
          << "batch " << batch << " slot " << i
          << ": true NN missing from candidate list over the socket";
      EXPECT_EQ(nn.exact.id, truth);
      ++inclusive_checks;
    }
    for (anonymizer::UserId uid = 0; uid < kUsers; ++uid) {
      ASSERT_TRUE(service.UpdateUserLocation(uid, rng.PointIn(space)).ok());
    }
    // A condensed workload finishes batches in single-digit
    // milliseconds — faster than half-open probes can burn off a
    // scripted outage. Give the breaker the wall-clock a real client
    // would: probe until it re-closes before the next burst.
    for (int i = 0; i < 300 && service.transport_client().breaker_state() ==
                                   transport::BreakerState::kOpen;
         ++i) {
      (void)service.QueryNearestPublic(i % kUsers);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  const transport::FaultStats stats = fault->stats();
  EXPECT_GT(stats.TotalInjected(), 20u);
  EXPECT_GT(ok_count, kBatches * kBatchSize / 2);
  EXPECT_GT(inclusive_checks, 30u);

  // Calm the channel, recover the breaker, drain the replay buffer:
  // exactly one region per user, duplicates and retries notwithstanding.
  fault->SetProfile(transport::FaultProfile{});
  for (int i = 0; i < 500 && service.transport_client().breaker_state() !=
                                 transport::BreakerState::kClosed;
       ++i) {
    (void)service.QueryNearestPublic(i % kUsers);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(service.transport_client().breaker_state(),
            transport::BreakerState::kClosed);
  ASSERT_TRUE(service.transport_client().Flush().ok());
  EXPECT_EQ(service.private_store().size(), kUsers);
}

TEST(SocketChaosTest, BreakerTripsAndRecoversAcrossListenerRestart) {
  const std::string address = "unix:/tmp/casper_churn_" +
                              std::to_string(getpid()) + ".sock";
  std::unique_ptr<SocketListener> listener;
  transport::SocketHandler handler;  // Rebuilt listeners reuse this.

  CasperOptions options;
  options.pyramid.height = 6;
  options.auto_sync_private_data = true;
  options.resilience.retry.max_attempts = 2;
  options.resilience.retry.initial_backoff_seconds = 1e-4;
  options.resilience.retry.max_backoff_seconds = 1e-3;
  options.resilience.retry.deadline_seconds = 0.5;
  options.resilience.breaker.failure_threshold = 3;
  options.resilience.breaker.open_seconds = 0.01;
  options.resilience.breaker.half_open_successes = 1;

  options.channel_decorator =
      [&listener, &handler, &address](transport::Channel* inner)
      -> std::unique_ptr<transport::Channel> {
    handler = transport::SerializedHandler(
        [inner](std::string_view request, const CallContext& context) {
          return inner->Call(request, context);
        });
    auto started = SocketListener::Start(address, handler,
                                         transport::ListenerOptions{});
    EXPECT_TRUE(started.ok()) << started.status().ToString();
    listener = std::move(started).value();

    SocketChannelOptions socket_options;
    socket_options.connect_timeout_seconds = 0.1;
    socket_options.io_timeout_seconds = 1.0;
    socket_options.backoff_initial_seconds = 0.001;
    socket_options.backoff_max_seconds = 0.02;
    return std::make_unique<SocketChannel>(address, socket_options);
  };

  CasperService service(options);
  ListenerGuard guard{&listener};
  ASSERT_NE(listener, nullptr);

  Rng rng(0xC1124);
  const Rect space = service.options().pyramid.space;
  for (anonymizer::UserId uid = 0; uid < 16; ++uid) {
    anonymizer::PrivacyProfile user_profile;
    user_profile.k = static_cast<uint32_t>(rng.UniformInt(1, 4));
    ASSERT_TRUE(
        service.RegisterUser(uid, user_profile, rng.PointIn(space)).ok());
  }
  ASSERT_TRUE(service.QueryNearestPrivate(0).ok() ||
              service.private_store().size() > 0);

  // Outage: the listener dies mid-run. Queries fail typed; the breaker
  // opens; maintenance keeps landing in the replay buffer.
  listener->Shutdown();
  listener.reset();
  bool breaker_opened = false;
  for (int i = 0; i < 100 && !breaker_opened; ++i) {
    auto failed = service.QueryNearestPrivate(i % 16);
    if (failed.ok()) continue;
    EXPECT_TRUE(failed.status().code() == StatusCode::kUnavailable ||
                failed.status().code() == StatusCode::kDeadlineExceeded)
        << failed.status().ToString();
    breaker_opened = service.transport_client().breaker_state() ==
                     transport::BreakerState::kOpen;
  }
  EXPECT_TRUE(breaker_opened);
  for (anonymizer::UserId uid = 0; uid < 16; ++uid) {
    // Buffered while unreachable, OK by contract.
    ASSERT_TRUE(service.UpdateUserLocation(uid, rng.PointIn(space)).ok());
  }

  // Restart on the same address (the anonymizer-side state and the
  // in-process server both survived; only the wire went away).
  auto restarted = SocketListener::Start(address, handler,
                                         transport::ListenerOptions{});
  ASSERT_TRUE(restarted.ok()) << restarted.status().ToString();
  listener = std::move(restarted).value();

  bool recovered = false;
  for (int i = 0; i < 500 && !recovered; ++i) {
    recovered = service.QueryNearestPrivate(i % 16).ok() &&
                service.transport_client().breaker_state() ==
                    transport::BreakerState::kClosed;
    if (!recovered) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(recovered) << "breaker never re-closed after the restart";

  ASSERT_TRUE(service.transport_client().Flush().ok());
  EXPECT_EQ(service.private_store().size(), 16u)
      << "replayed maintenance did not land exactly once";
}

}  // namespace
}  // namespace casper
