#include "src/casper/casper.h"

#include <gtest/gtest.h>

#include "src/casper/workload.h"
#include "src/common/rng.h"

namespace casper {
namespace {

CasperOptions TestOptions(bool adaptive = true) {
  CasperOptions options;
  options.pyramid.height = 6;
  options.use_adaptive_anonymizer = adaptive;
  return options;
}

/// A service pre-loaded with `users` uniform users and `targets` uniform
/// public targets.
CasperService MakeService(size_t users, size_t targets, uint64_t seed,
                          bool adaptive = true, uint32_t k_max = 10) {
  CasperService service(TestOptions(adaptive));
  Rng rng(seed);
  const Rect space = service.options().pyramid.space;
  for (anonymizer::UserId uid = 0; uid < users; ++uid) {
    anonymizer::PrivacyProfile profile;
    profile.k = static_cast<uint32_t>(rng.UniformInt(1, k_max));
    EXPECT_TRUE(service.RegisterUser(uid, profile, rng.PointIn(space)).ok());
  }
  service.SetPublicTargets(workload::UniformPublicTargets(targets, space,
                                                          &rng));
  return service;
}

TEST(CasperServiceTest, EndToEndPublicNN) {
  CasperService service = MakeService(200, 500, 1);
  auto response = service.QueryNearestPublic(7);
  ASSERT_TRUE(response.ok()) << response.status().ToString();

  // The cloak hides the user: region contains the true position.
  auto pos = service.ClientPosition(7);
  ASSERT_TRUE(pos.ok());
  EXPECT_TRUE(response->cloak.region.Contains(*pos));

  // The refined answer equals the true global NN.
  auto true_nn = service.public_store().Nearest(*pos);
  ASSERT_TRUE(true_nn.ok());
  EXPECT_EQ(response->exact.id, true_nn->id);

  // Timing breakdown is populated.
  EXPECT_GE(response->timing.anonymizer_seconds, 0.0);
  EXPECT_GT(response->timing.transmission_seconds, 0.0);
  EXPECT_GT(response->timing.Total(), 0.0);
}

TEST(CasperServiceTest, ExactAnswerForEveryUserAndBothAnonymizers) {
  for (bool adaptive : {false, true}) {
    CasperService service = MakeService(150, 300, 2, adaptive);
    for (anonymizer::UserId uid = 0; uid < 150; uid += 11) {
      auto response = service.QueryNearestPublic(uid);
      ASSERT_TRUE(response.ok());
      auto pos = service.ClientPosition(uid);
      ASSERT_TRUE(pos.ok());
      auto true_nn = service.public_store().Nearest(*pos);
      ASSERT_TRUE(true_nn.ok());
      EXPECT_EQ(response->exact.id, true_nn->id) << "adaptive=" << adaptive;
    }
  }
}

TEST(CasperServiceTest, PrivateNNRequiresSync) {
  CasperService service = MakeService(50, 10, 3);
  EXPECT_EQ(service.QueryNearestPrivate(1).status().code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(service.SyncPrivateData().ok());
  auto response = service.QueryNearestPrivate(1);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  // Server-side ids are pseudonyms; the trusted side resolves them and
  // the buddy answer is never the querier herself.
  auto best_uid = service.ResolvePseudonym(response->best.id);
  ASSERT_TRUE(best_uid.ok());
  EXPECT_NE(*best_uid, 1u);
  for (const auto& c : response->server_answer.candidates) {
    auto resolved = service.ResolvePseudonym(c.id);
    ASSERT_TRUE(resolved.ok());
    EXPECT_NE(*resolved, 1u);
    // Pseudonymity: the server-visible id never equals the uid.
    EXPECT_GE(c.id, 50u);  // uids here are 0..49.
  }
}

TEST(CasperServiceTest, SyncInvalidatedByMovement) {
  CasperService service = MakeService(30, 10, 4);
  ASSERT_TRUE(service.SyncPrivateData().ok());
  ASSERT_TRUE(service.QueryNearestPrivate(2).ok());
  ASSERT_TRUE(service.UpdateUserLocation(2, {0.1, 0.1}).ok());
  EXPECT_EQ(service.QueryNearestPrivate(2).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(CasperServiceTest, PublicRangeCountsCloakedUsers) {
  CasperService service = MakeService(100, 10, 5);
  ASSERT_TRUE(service.SyncPrivateData().ok());
  auto result = service.QueryPublicRange(Rect(0, 0, 1, 1));
  ASSERT_TRUE(result.ok());
  // The whole space covers every cloak.
  EXPECT_EQ(result->certain, 100u);
  EXPECT_NEAR(result->expected, 100.0, 1e-9);

  auto half = service.QueryPublicRange(Rect(0, 0, 0.5, 1));
  ASSERT_TRUE(half.ok());
  EXPECT_LE(half->certain, half->possible);
  EXPECT_GT(half->possible, 0u);
}

TEST(CasperServiceTest, RangeQueryOverPublicData) {
  CasperService service = MakeService(50, 400, 6);
  auto result = service.QueryRangePublic(3, 0.1);
  ASSERT_TRUE(result.ok());
  // Refinement with the exact position keeps only true hits.
  auto pos = service.ClientPosition(3);
  ASSERT_TRUE(pos.ok());
  auto exact = processor::RefineRange(result->candidates, *pos, 0.1);
  for (const auto& t : exact) {
    EXPECT_LE(Distance(*pos, t.position), 0.1);
  }
}

TEST(CasperServiceTest, UserLifecycle) {
  CasperService service(TestOptions());
  EXPECT_EQ(service.QueryNearestPublic(9).status().code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(service.RegisterUser(9, {1, 0.0}, {0.5, 0.5}).ok());
  EXPECT_EQ(service.RegisterUser(9, {1, 0.0}, {0.5, 0.5}).code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(service.UpdateUserProfile(9, {1, 0.001}).ok());
  ASSERT_TRUE(service.UpdateUserLocation(9, {0.2, 0.8}).ok());
  ASSERT_TRUE(service.DeregisterUser(9).ok());
  EXPECT_EQ(service.DeregisterUser(9).code(), StatusCode::kNotFound);
  EXPECT_EQ(service.user_count(), 0u);
}

TEST(CasperServiceTest, StricterProfileGrowsCandidateList) {
  CasperService service = MakeService(500, 2000, 7, true, 1);
  // Query with k=1, then tighten to k=100 and compare.
  auto relaxed = service.QueryNearestPublic(0);
  ASSERT_TRUE(relaxed.ok());
  ASSERT_TRUE(service.UpdateUserProfile(0, {100, 0.0}).ok());
  auto strict = service.QueryNearestPublic(0);
  ASSERT_TRUE(strict.ok());
  EXPECT_GE(strict->cloak.region.Area(), relaxed->cloak.region.Area());
  EXPECT_GE(strict->server_answer.size(), relaxed->server_answer.size());
}

TEST(CasperServiceTest, QualityNeverCompromised) {
  // The headline guarantee: across users, profiles, and movement, the
  // refined answer always equals the true nearest neighbor.
  CasperService service = MakeService(120, 250, 8);
  Rng rng(99);
  const Rect space = service.options().pyramid.space;
  for (int round = 0; round < 3; ++round) {
    for (anonymizer::UserId uid = 0; uid < 120; ++uid) {
      ASSERT_TRUE(service.UpdateUserLocation(uid, rng.PointIn(space)).ok());
    }
    for (anonymizer::UserId uid = 0; uid < 120; uid += 17) {
      auto response = service.QueryNearestPublic(uid);
      ASSERT_TRUE(response.ok());
      auto pos = service.ClientPosition(uid);
      ASSERT_TRUE(pos.ok());
      auto true_nn = service.public_store().Nearest(*pos);
      ASSERT_TRUE(true_nn.ok());
      EXPECT_EQ(response->exact.id, true_nn->id);
    }
  }
}

}  // namespace
}  // namespace casper
