#include "src/processor/filter_policy.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace casper::processor {
namespace {

/// Brute-force nearest over a fixed target list (MaxDist metric).
NearestTargetFn MakeNearest(const std::vector<FilterTarget>& targets) {
  return [targets](const Point& q) -> Result<FilterTarget> {
    if (targets.empty()) return Status::NotFound("empty");
    const FilterTarget* best = &targets.front();
    double best_d = MaxDist(q, best->region);
    for (const FilterTarget& t : targets) {
      const double d = MaxDist(q, t.region);
      if (d < best_d) {
        best = &t;
        best_d = d;
      }
    }
    return *best;
  };
}

std::vector<FilterTarget> CornerTargets() {
  // One point target near each corner of the unit square.
  return {{0, Rect::FromPoint({0.05, 0.05})},
          {1, Rect::FromPoint({0.95, 0.05})},
          {2, Rect::FromPoint({0.95, 0.95})},
          {3, Rect::FromPoint({0.05, 0.95})}};
}

TEST(FilterPolicyTest, FourFiltersPickPerCornerNearest) {
  const Rect cloak(0.2, 0.2, 0.8, 0.8);
  auto filters = SelectFilters(cloak, FilterPolicy::kFourFilters,
                               MakeNearest(CornerTargets()));
  ASSERT_TRUE(filters.ok());
  EXPECT_EQ((*filters)[0].id, 0u);
  EXPECT_EQ((*filters)[1].id, 1u);
  EXPECT_EQ((*filters)[2].id, 2u);
  EXPECT_EQ((*filters)[3].id, 3u);
}

TEST(FilterPolicyTest, OneFilterAssignsCenterNearestEverywhere) {
  const Rect cloak(0.2, 0.2, 0.8, 0.8);
  auto targets = CornerTargets();
  targets.push_back({9, Rect::FromPoint({0.5, 0.51})});  // Nearest to center.
  auto filters =
      SelectFilters(cloak, FilterPolicy::kOneFilter, MakeNearest(targets));
  ASSERT_TRUE(filters.ok());
  for (const FilterTarget& f : *filters) EXPECT_EQ(f.id, 9u);
}

TEST(FilterPolicyTest, TwoFiltersAnchorOppositeCorners) {
  const Rect cloak(0.2, 0.2, 0.8, 0.8);
  auto filters = SelectFilters(cloak, FilterPolicy::kTwoFilters,
                               MakeNearest(CornerTargets()));
  ASSERT_TRUE(filters.ok());
  EXPECT_EQ((*filters)[0].id, 0u);  // Anchor at v0.
  EXPECT_EQ((*filters)[2].id, 2u);  // Anchor at v2.
  // v1/v3 take one of the two anchors.
  for (int i : {1, 3}) {
    EXPECT_TRUE((*filters)[static_cast<size_t>(i)].id == 0u ||
                (*filters)[static_cast<size_t>(i)].id == 2u);
  }
}

TEST(FilterPolicyTest, TwoFiltersAssignTighterAnchor) {
  // t0 anchors v0 = (0.2, 0.2); t2 anchors v2 = (0.8, 0.8). The corner
  // v1 = (0.8, 0.2) is nearer to t0, v3 = (0.2, 0.8) nearer to t2.
  std::vector<FilterTarget> targets = {{0, Rect::FromPoint({0.2, 0.1})},
                                       {2, Rect::FromPoint({0.85, 0.85})}};
  const Rect cloak(0.2, 0.2, 0.8, 0.8);
  auto filters =
      SelectFilters(cloak, FilterPolicy::kTwoFilters, MakeNearest(targets));
  ASSERT_TRUE(filters.ok());
  EXPECT_EQ((*filters)[0].id, 0u);
  EXPECT_EQ((*filters)[2].id, 2u);
  EXPECT_EQ((*filters)[1].id, 0u);
  EXPECT_EQ((*filters)[3].id, 2u);
}

TEST(FilterPolicyTest, EmptyCloakRejected) {
  auto filters = SelectFilters(Rect(), FilterPolicy::kFourFilters,
                               MakeNearest(CornerTargets()));
  EXPECT_EQ(filters.status().code(), StatusCode::kInvalidArgument);
}

TEST(FilterPolicyTest, EmptyStorePropagates) {
  auto filters = SelectFilters(Rect(0, 0, 1, 1), FilterPolicy::kFourFilters,
                               MakeNearest({}));
  EXPECT_EQ(filters.status().code(), StatusCode::kNotFound);
}

TEST(FilterPolicyTest, FilterUpperBoundsVertexNNDistance) {
  // Whatever the policy, MaxDist(v_i, filter_i.region) must upper-bound
  // the true NN distance from v_i — that is what the inclusiveness proof
  // leans on.
  Rng rng(5);
  std::vector<FilterTarget> targets;
  for (uint64_t i = 0; i < 50; ++i) {
    const Point c = rng.PointIn(Rect(0, 0, 1, 1));
    targets.push_back({i, Rect(c.x, c.y, std::min(c.x + 0.05, 1.0),
                               std::min(c.y + 0.05, 1.0))});
  }
  auto nearest = MakeNearest(targets);
  for (int trial = 0; trial < 50; ++trial) {
    const Point c = rng.PointIn(Rect(0.1, 0.1, 0.7, 0.7));
    const Rect cloak(c.x, c.y, c.x + 0.2, c.y + 0.2);
    for (FilterPolicy policy :
         {FilterPolicy::kOneFilter, FilterPolicy::kTwoFilters,
          FilterPolicy::kFourFilters}) {
      auto filters = SelectFilters(cloak, policy, nearest);
      ASSERT_TRUE(filters.ok());
      const auto corners = cloak.Corners();
      for (size_t i = 0; i < 4; ++i) {
        double true_nn = 1e300;
        for (const auto& t : targets) {
          true_nn = std::min(true_nn, MaxDist(corners[i], t.region));
        }
        EXPECT_GE(MaxDist(corners[i], (*filters)[i].region) + 1e-12, true_nn);
      }
    }
  }
}

}  // namespace
}  // namespace casper::processor
