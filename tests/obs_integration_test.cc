#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/casper/batch_query_engine.h"
#include "src/casper/casper.h"
#include "src/casper/workload.h"
#include "src/common/rng.h"
#include "src/obs/casper_metrics.h"
#include "src/obs/exporters.h"

/// End-to-end observability test: a service with an injected (fresh)
/// metrics bundle runs a batch covering every query kind, and the
/// scrape must show non-zero counters and latency histograms for all
/// seven kinds, in valid Prometheus text exposition format.

namespace casper {
namespace {

/// Minimal validator of the Prometheus text format 0.0.4: every sample
/// line belongs to an announced family, histogram series carry
/// cumulative buckets ending in +Inf, and counts reconcile.
void ValidatePrometheus(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::set<std::string> announced;
  std::string last_name;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
      const size_t name_start = 7;
      const size_t name_end = line.find(' ', name_start);
      ASSERT_NE(name_end, std::string::npos) << line;
      announced.insert(line.substr(name_start, name_end - name_start));
      continue;
    }
    ASSERT_NE(line[0], '#') << "unknown comment: " << line;
    // `name{labels} value` or `name value`.
    const size_t name_end = line.find_first_of("{ ");
    ASSERT_NE(name_end, std::string::npos) << line;
    std::string name = line.substr(0, name_end);
    // Histogram series announce the base name.
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const size_t pos = name.rfind(suffix);
      if (pos != std::string::npos &&
          pos + std::string(suffix).size() == name.size() &&
          announced.count(name.substr(0, pos)) > 0) {
        name = name.substr(0, pos);
        break;
      }
    }
    EXPECT_TRUE(announced.count(name) > 0)
        << "sample for unannounced family: " << line;
    last_name = name;
  }
  ASSERT_FALSE(announced.empty());
  (void)last_name;
}

TEST(ObsIntegrationTest, BatchAcrossAllKindsPopulatesEveryInstrument) {
  obs::MetricsRegistry registry;
  obs::CasperMetrics metrics(&registry);

  CasperOptions options;
  options.pyramid.height = 6;
  options.metrics = &metrics;
  CasperService service(options);

  Rng rng(7);
  const Rect space = service.options().pyramid.space;
  constexpr size_t kUsers = 32;
  for (anonymizer::UserId uid = 0; uid < kUsers; ++uid) {
    anonymizer::PrivacyProfile profile;
    profile.k = static_cast<uint32_t>(rng.UniformInt(1, 4));
    ASSERT_TRUE(
        service.RegisterUser(uid, profile, rng.PointIn(space)).ok());
  }
  service.SetPublicTargets(workload::UniformPublicTargets(200, space, &rng));
  ASSERT_TRUE(service.SyncPrivateData().ok());

  // One batch slot of every kind, several times over.
  std::vector<server::BatchQueryRequest> requests;
  for (size_t round = 0; round < 4; ++round) {
    const anonymizer::UserId uid = round % kUsers;
    requests.push_back(server::BatchQueryRequest::NearestPublic(uid));
    requests.push_back(server::BatchQueryRequest::KNearestPublic(uid, 3));
    requests.push_back(
        server::BatchQueryRequest::RangePublic(uid, space.width() * 0.05));
    requests.push_back(server::BatchQueryRequest::NearestPrivate(uid));
    requests.push_back(
        server::BatchQueryRequest::PublicNearest(rng.PointIn(space)));
    requests.push_back(server::BatchQueryRequest::PublicRange(space));
    requests.push_back(server::BatchQueryRequest::Density(4, 4));
  }

  server::BatchEngineOptions engine_options;
  engine_options.threads = 2;
  engine_options.metrics = &metrics;
  server::BatchQueryEngine engine(&service, engine_options);
  const server::BatchResult result = engine.Execute(requests);
  ASSERT_EQ(result.summary.error_count, 0u)
      << result.responses[0].status.ToString();

  // Per-kind server metrics: every one of the seven kinds ran, was
  // timed, and produced candidates.
  for (size_t kind = 0; kind < obs::kQueryKindCount; ++kind) {
    EXPECT_GE(metrics.queries_total[kind]->Value(), 4u)
        << "kind=" << obs::kQueryKindLabels[kind];
    EXPECT_GE(metrics.query_seconds[kind]->Snapshot().count, 4u)
        << "kind=" << obs::kQueryKindLabels[kind];
    EXPECT_EQ(metrics.query_errors_total[kind]->Value(), 0u)
        << "kind=" << obs::kQueryKindLabels[kind];
  }

  // Anonymizer-tier distributions from registration + snapshot + the
  // batch's cloaking phase.
  EXPECT_GT(metrics.cloaks_total->Value(), 0u);
  EXPECT_GT(metrics.cloak_seconds->Snapshot().count, 0u);
  EXPECT_GT(metrics.cloak_area->Snapshot().count, 0u);
  EXPECT_GT(metrics.cloak_k_achieved->Snapshot().count, 0u);
  EXPECT_EQ(static_cast<size_t>(metrics.users->Value()), kUsers);
  EXPECT_EQ(
      metrics.user_events_total[static_cast<size_t>(obs::UserEvent::kRegister)]
          ->Value(),
      kUsers);
  EXPECT_EQ(metrics.snapshots_total->Value(), 1u);

  // Batch engine.
  EXPECT_EQ(metrics.batches_total->Value(), 1u);
  EXPECT_EQ(metrics.batch_queries_total->Value(), requests.size());
  EXPECT_EQ(static_cast<size_t>(metrics.pool_threads->Value()), 2u);
  EXPECT_EQ(metrics.batch_wall_seconds->Snapshot().count, 1u);

  // Spans: every batch slot traced all the way through Finish().
  EXPECT_EQ(metrics.tracer.finished_count(), requests.size());

  // The scrape renders as valid Prometheus text with the per-kind
  // latency series present and populated.
  const std::string text = obs::ExportPrometheus(registry.Scrape());
  ValidatePrometheus(text);
  for (size_t kind = 0; kind < obs::kQueryKindCount; ++kind) {
    const std::string series = "casper_server_query_seconds_count{kind=\"" +
                               std::string(obs::kQueryKindLabels[kind]) +
                               "\"}";
    EXPECT_NE(text.find(series), std::string::npos) << series;
  }
}

TEST(ObsIntegrationTest, SequentialExecutePathTracesAllFourPhases) {
  obs::MetricsRegistry registry;
  obs::CasperMetrics metrics(&registry);

  CasperOptions options;
  options.pyramid.height = 6;
  options.metrics = &metrics;
  CasperService service(options);

  Rng rng(11);
  const Rect space = service.options().pyramid.space;
  for (anonymizer::UserId uid = 0; uid < 8; ++uid) {
    anonymizer::PrivacyProfile profile;
    profile.k = 2;
    ASSERT_TRUE(
        service.RegisterUser(uid, profile, rng.PointIn(space)).ok());
  }
  service.SetPublicTargets(workload::UniformPublicTargets(50, space, &rng));
  ASSERT_TRUE(service.QueryNearestPublic(3).ok());

  // The cloaked kind exercises cloak + wire_encode + evaluate + refine.
  const std::vector<obs::QuerySpan> recent = metrics.tracer.Recent();
  ASSERT_FALSE(recent.empty());
  const obs::QuerySpan& span = recent.back();
  EXPECT_STREQ(span.kind, "nearest_public");
  for (size_t phase = 0; phase < obs::kPhaseCount; ++phase) {
    EXPECT_GT(span.phase_seconds[phase], 0.0)
        << obs::PhaseName(static_cast<obs::Phase>(phase));
  }
}

}  // namespace
}  // namespace casper
