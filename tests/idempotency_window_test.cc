#include <gtest/gtest.h>

#include "src/casper/casper.h"
#include "src/casper/messages.h"
#include "src/server/query_server.h"

/// The server-side idempotency window is now a configurable capacity
/// (QueryServerOptions::idempotency_window, surfaced as
/// CasperOptions::server_idempotency_window and `casper_cli
/// --idempotency-window`). The regression at stake: a replay arriving
/// *after* its window entry was evicted must re-execute safely —
/// converging to the already-applied state — never double-applying an
/// upsert or resurrecting a replaced region.

namespace casper {
namespace {

RegionUpsertMsg Upsert(uint64_t request_id, uint64_t handle,
                       const Rect& region) {
  RegionUpsertMsg msg;
  msg.request_id = request_id;
  msg.handle = handle;
  msg.region = region;
  return msg;
}

RegionUpsertMsg Rotate(uint64_t request_id, uint64_t handle,
                       uint64_t replaces, const Rect& region) {
  RegionUpsertMsg msg = Upsert(request_id, handle, region);
  msg.has_replaces = true;
  msg.replaces = replaces;
  return msg;
}

TEST(IdempotencyWindowTest, WindowCapacityIsConfigurable) {
  server::QueryServerOptions options;
  options.idempotency_window = 2;
  server::QueryServer server(options);
  for (uint64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(
        server.Apply(Upsert(i, 100 + i, Rect(0.1, 0.1, 0.2, 0.2))).ok());
  }
  EXPECT_EQ(server.applied_request_count(), 2u)
      << "the FIFO window must hold exactly the configured capacity";
}

TEST(IdempotencyWindowTest, WindowZeroDisablesReplayMemory) {
  server::QueryServerOptions options;
  options.idempotency_window = 0;
  server::QueryServer server(options);
  ASSERT_TRUE(server.Apply(Upsert(1, 7, Rect(0.1, 0.1, 0.2, 0.2))).ok());
  EXPECT_EQ(server.applied_request_count(), 0u);
  // Re-execution is still safe (same handle converges), just unrecorded.
  ASSERT_TRUE(server.Apply(Upsert(1, 7, Rect(0.1, 0.1, 0.2, 0.2))).ok());
  EXPECT_EQ(server.private_store().size(), 1u);
}

TEST(IdempotencyWindowTest, ReplayWithinWindowIsStable) {
  server::QueryServerOptions options;
  options.idempotency_window = 8;
  server::QueryServer server(options);
  const RegionUpsertMsg msg = Upsert(5, 50, Rect(0.2, 0.2, 0.3, 0.3));
  ASSERT_TRUE(server.Apply(msg).ok());
  for (int replay = 0; replay < 3; ++replay) {
    ASSERT_TRUE(server.Apply(msg).ok());
  }
  EXPECT_EQ(server.private_store().size(), 1u);
}

TEST(IdempotencyWindowTest, ReplayAfterEvictionNeverDoubleApplies) {
  // Window of 2: the pseudonym-rotation chain below evicts request 1's
  // outcome before its duplicate arrives.
  server::QueryServerOptions options;
  options.idempotency_window = 2;
  server::QueryServer server(options);

  const RegionUpsertMsg first = Upsert(1, 100, Rect(0.1, 0.1, 0.2, 0.2));
  const RegionUpsertMsg second =
      Rotate(2, 101, /*replaces=*/100, Rect(0.2, 0.2, 0.3, 0.3));
  const RegionUpsertMsg third =
      Rotate(3, 102, /*replaces=*/101, Rect(0.3, 0.3, 0.4, 0.4));
  ASSERT_TRUE(server.Apply(first).ok());
  ASSERT_TRUE(server.Apply(second).ok());
  ASSERT_TRUE(server.Apply(third).ok());
  ASSERT_EQ(server.private_store().size(), 1u);

  // An at-least-once transport re-delivers requests 1 and 2 after both
  // outcomes left the window. Blind re-execution would resurrect the
  // retired handles 100/101 next to 102 — the double-apply this test
  // pins down. The retired-handle memory must make both no-ops.
  ASSERT_TRUE(server.Apply(first).ok());
  ASSERT_TRUE(server.Apply(second).ok());
  EXPECT_EQ(server.private_store().size(), 1u)
      << "a stale replayed upsert resurrected a replaced region";
}

TEST(IdempotencyWindowTest, ReplayOfLiveHandleAfterEvictionConverges) {
  server::QueryServerOptions options;
  options.idempotency_window = 1;
  server::QueryServer server(options);
  const RegionUpsertMsg msg = Upsert(1, 9, Rect(0.4, 0.4, 0.5, 0.5));
  ASSERT_TRUE(server.Apply(msg).ok());
  // Evict request 1, then replay it: the handle is still live, so
  // re-execution replaces in place — same state, no duplicate.
  ASSERT_TRUE(server.Apply(Upsert(2, 10, Rect(0.1, 0.1, 0.2, 0.2))).ok());
  ASSERT_TRUE(server.Apply(msg).ok());
  EXPECT_EQ(server.private_store().size(), 2u);
}

TEST(IdempotencyWindowTest, ReplayedRemoveOfUnknownHandleIsOk) {
  server::QueryServerOptions options;
  options.idempotency_window = 1;
  server::QueryServer server(options);
  ASSERT_TRUE(server.Apply(Upsert(1, 5, Rect(0.1, 0.1, 0.2, 0.2))).ok());
  RegionRemoveMsg remove;
  remove.request_id = 2;
  remove.handle = 5;
  ASSERT_TRUE(server.Apply(remove).ok());
  // Evict, then replay the remove: already gone must mean OK, not an
  // error the retrying client would surface.
  ASSERT_TRUE(server.Apply(Upsert(3, 6, Rect(0.2, 0.2, 0.3, 0.3))).ok());
  EXPECT_TRUE(server.Apply(remove).ok());
  EXPECT_EQ(server.private_store().size(), 1u);
}

TEST(IdempotencyWindowTest, FacadePlumbsTheWindowOption) {
  CasperOptions options;
  options.server_idempotency_window = 4;
  CasperService service(options);
  EXPECT_EQ(service.query_server().options().idempotency_window, 4u);
}

}  // namespace
}  // namespace casper
