#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/casper/messages.h"
#include "src/common/rng.h"

/// Property tests for the wire-message binary codec: for randomized
/// instances of every message type, Decode(Encode(msg)) == msg exactly
/// (doubles travel as bit patterns, so equality is bitwise). Truncated,
/// mistyped, and trailing-garbage buffers must fail with
/// InvalidArgument rather than crash or mis-parse.

namespace casper {
namespace {

constexpr int kRounds = 200;

Rect RandomRect(Rng* rng) {
  const Point a = rng->PointIn(Rect(0, 0, 1, 1));
  return Rect(a.x, a.y, a.x + rng->NextDouble(), a.y + rng->NextDouble());
}

processor::ExtendedArea RandomArea(Rng* rng) {
  processor::ExtendedArea area;
  area.a_ext = RandomRect(rng);
  for (processor::EdgeExtension& edge : area.edges) {
    edge.max_d = rng->NextDouble();
    edge.has_middle = rng->Bernoulli(0.5);
    if (edge.has_middle) edge.middle = rng->PointIn(area.a_ext);
  }
  return area;
}

processor::FilterPolicy RandomPolicy(Rng* rng) {
  switch (rng->UniformInt(0, 2)) {
    case 0:
      return processor::FilterPolicy::kOneFilter;
    case 1:
      return processor::FilterPolicy::kTwoFilters;
    default:
      return processor::FilterPolicy::kFourFilters;
  }
}

std::vector<processor::PublicTarget> RandomPublicTargets(Rng* rng,
                                                         size_t max_n) {
  std::vector<processor::PublicTarget> targets(rng->UniformInt(0, max_n));
  for (processor::PublicTarget& t : targets) {
    t.id = rng->Next();
    t.position = rng->PointIn(Rect(0, 0, 1, 1));
  }
  return targets;
}

std::vector<processor::PrivateTarget> RandomPrivateTargets(Rng* rng,
                                                           size_t max_n) {
  std::vector<processor::PrivateTarget> targets(rng->UniformInt(0, max_n));
  for (processor::PrivateTarget& t : targets) {
    t.id = rng->Next();
    t.region = RandomRect(rng);
  }
  return targets;
}

CloakedQueryMsg RandomCloakedQuery(Rng* rng) {
  CloakedQueryMsg msg;
  msg.kind = static_cast<QueryKind>(rng->UniformInt(0, 6));
  msg.request_id = rng->Bernoulli(0.5) ? rng->Next() : 0;
  switch (msg.kind) {
    case QueryKind::kNearestPublic:
      msg.cloak = RandomRect(rng);
      break;
    case QueryKind::kKNearestPublic:
      msg.cloak = RandomRect(rng);
      msg.k = rng->UniformInt(1, 64);
      break;
    case QueryKind::kRangePublic:
      msg.cloak = RandomRect(rng);
      msg.radius = rng->NextDouble();
      break;
    case QueryKind::kNearestPrivate:
      msg.cloak = RandomRect(rng);
      msg.has_exclude = rng->Bernoulli(0.5);
      if (msg.has_exclude) msg.exclude_handle = rng->Next();
      break;
    case QueryKind::kPublicNearest:
      msg.point = rng->PointIn(Rect(0, 0, 1, 1));
      break;
    case QueryKind::kPublicRange:
      msg.region = RandomRect(rng);
      break;
    case QueryKind::kDensity:
      msg.cols = static_cast<int32_t>(rng->UniformInt(1, 16));
      msg.rows = static_cast<int32_t>(rng->UniformInt(1, 16));
      break;
  }
  return msg;
}

ServerPayload RandomPayload(Rng* rng, QueryKind kind) {
  switch (kind) {
    case QueryKind::kNearestPublic: {
      processor::PublicCandidateList list;
      list.candidates = RandomPublicTargets(rng, 8);
      list.area = RandomArea(rng);
      list.policy = RandomPolicy(rng);
      return list;
    }
    case QueryKind::kKNearestPublic: {
      processor::KnnCandidateList list;
      list.candidates = RandomPublicTargets(rng, 8);
      list.a_ext = RandomRect(rng);
      list.k = rng->UniformInt(1, 16);
      return list;
    }
    case QueryKind::kRangePublic: {
      processor::PublicRangeCandidates list;
      list.candidates = RandomPublicTargets(rng, 8);
      list.search_window = RandomRect(rng);
      return list;
    }
    case QueryKind::kNearestPrivate: {
      processor::PrivateCandidateList list;
      list.candidates = RandomPrivateTargets(rng, 8);
      list.area = RandomArea(rng);
      list.policy = RandomPolicy(rng);
      return list;
    }
    case QueryKind::kPublicNearest: {
      processor::PublicNNCandidates list;
      list.candidates.resize(rng->UniformInt(0, 8));
      for (auto& candidate : list.candidates) {
        candidate.target.id = rng->Next();
        candidate.target.region = RandomRect(rng);
        candidate.min_dist = rng->NextDouble();
        candidate.max_dist = candidate.min_dist + rng->NextDouble();
      }
      list.minimax_bound = rng->NextDouble();
      return list;
    }
    case QueryKind::kPublicRange: {
      processor::RangeCountResult result;
      result.overlapping = RandomPrivateTargets(rng, 8);
      result.possible = result.overlapping.size();
      result.certain = rng->UniformInt(0, result.possible);
      result.expected = rng->Uniform(static_cast<double>(result.certain),
                                     static_cast<double>(result.possible));
      return result;
    }
    case QueryKind::kDensity:
    default: {
      const int cols = static_cast<int>(rng->UniformInt(1, 8));
      const int rows = static_cast<int>(rng->UniformInt(1, 8));
      std::vector<double> cells(static_cast<size_t>(cols) * rows);
      for (double& c : cells) c = rng->NextDouble();
      auto map = processor::DensityMap::FromCells(Rect(0, 0, 1, 1), cols,
                                                  rows, std::move(cells));
      CASPER_DCHECK(map.ok());
      return std::move(map).value();
    }
  }
}

TEST(MessagesRoundtripTest, CloakedQuery) {
  Rng rng(0xC0FFEE);
  for (int i = 0; i < kRounds; ++i) {
    const CloakedQueryMsg msg = RandomCloakedQuery(&rng);
    auto decoded = DecodeCloakedQuery(Encode(msg));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_TRUE(*decoded == msg) << "round " << i;
  }
}

TEST(MessagesRoundtripTest, RegionUpsert) {
  Rng rng(0xBEEF);
  for (int i = 0; i < kRounds; ++i) {
    RegionUpsertMsg msg;
    msg.request_id = rng.Bernoulli(0.5) ? rng.Next() : 0;
    msg.handle = rng.Next();
    msg.has_replaces = rng.Bernoulli(0.5);
    if (msg.has_replaces) msg.replaces = rng.Next();
    msg.region = RandomRect(&rng);
    auto decoded = DecodeRegionUpsert(Encode(msg));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_TRUE(*decoded == msg) << "round " << i;
  }
}

TEST(MessagesRoundtripTest, RegionRemove) {
  Rng rng(0xF00D);
  for (int i = 0; i < kRounds; ++i) {
    RegionRemoveMsg msg;
    msg.request_id = rng.Bernoulli(0.5) ? rng.Next() : 0;
    msg.handle = rng.Next();
    auto decoded = DecodeRegionRemove(Encode(msg));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_TRUE(*decoded == msg) << "round " << i;
  }
}

TEST(MessagesRoundtripTest, Snapshot) {
  Rng rng(0xCA5);
  for (int i = 0; i < kRounds; ++i) {
    SnapshotMsg msg;
    msg.regions = RandomPrivateTargets(&rng, 32);
    auto decoded = DecodeSnapshot(Encode(msg));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_TRUE(*decoded == msg) << "round " << i;
  }
}

TEST(MessagesRoundtripTest, CandidateList) {
  Rng rng(0xD1CE);
  for (int i = 0; i < kRounds; ++i) {
    CandidateListMsg msg;
    msg.kind = static_cast<QueryKind>(rng.UniformInt(0, 6));
    msg.request_id = rng.Bernoulli(0.5) ? rng.Next() : 0;
    msg.degraded = rng.Bernoulli(0.25);
    msg.payload = RandomPayload(&rng, msg.kind);
    msg.processor_seconds = rng.NextDouble();
    auto decoded = DecodeCandidateList(Encode(msg));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_TRUE(*decoded == msg) << "round " << i;
  }
}

TEST(MessagesRoundtripTest, Ack) {
  Rng rng(0xACC);
  const StatusCode codes[] = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kNotFound,     StatusCode::kAlreadyExists,
      StatusCode::kFailedPrecondition, StatusCode::kOutOfRange,
      StatusCode::kInternal,     StatusCode::kDeadlineExceeded,
      StatusCode::kUnavailable,  StatusCode::kDataLoss,
  };
  for (int i = 0; i < kRounds; ++i) {
    AckMsg msg;
    msg.request_id = rng.Bernoulli(0.5) ? rng.Next() : 0;
    msg.code = codes[rng.UniformInt(0, 9)];
    if (msg.code != StatusCode::kOk && rng.Bernoulli(0.7)) {
      msg.message = "error detail " + std::to_string(i);
    }
    auto decoded = DecodeAck(Encode(msg));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_TRUE(*decoded == msg) << "round " << i;
    EXPECT_EQ(decoded->ToStatus().code(), msg.code);
  }
}

TEST(MessagesRoundtripTest, AckForStatusCarriesCodeAndMessage) {
  const AckMsg ack = AckMsg::For(42, Status::NotFound("no such handle"));
  EXPECT_EQ(ack.request_id, 42u);
  EXPECT_EQ(ack.code, StatusCode::kNotFound);
  EXPECT_EQ(ack.message, "no such handle");
  EXPECT_FALSE(ack.ok());
  EXPECT_TRUE(AckMsg::For(7, Status::OK()).ok());
}

TEST(MessagesRoundtripTest, AckRejectsUnknownStatusCode) {
  AckMsg msg;
  msg.request_id = 1;
  msg.code = StatusCode::kUnavailable;
  std::string bytes = Encode(msg);
  // The code byte sits after the tag and the 8-byte request id; an
  // out-of-range enum value must be rejected, not cast blindly.
  bytes[9] = '\x7f';
  EXPECT_FALSE(DecodeAck(bytes).ok());
}

TEST(MessagesRoundtripTest, TagOfIdentifiesEveryMessage) {
  EXPECT_EQ(TagOf(Encode(CloakedQueryMsg{})).value(),
            MessageTag::kCloakedQuery);
  EXPECT_EQ(TagOf(Encode(RegionUpsertMsg{})).value(),
            MessageTag::kRegionUpsert);
  EXPECT_EQ(TagOf(Encode(RegionRemoveMsg{})).value(),
            MessageTag::kRegionRemove);
  EXPECT_EQ(TagOf(Encode(SnapshotMsg{})).value(), MessageTag::kSnapshot);
  EXPECT_EQ(TagOf(Encode(AckMsg{})).value(), MessageTag::kAck);
  EXPECT_FALSE(TagOf("").ok());
  EXPECT_FALSE(TagOf(std::string_view("\x00", 1)).ok());
}

TEST(MessagesRoundtripTest, RecordCountSurvivesTheWire) {
  Rng rng(0xFACE);
  for (int i = 0; i < kRounds; ++i) {
    CandidateListMsg msg;
    msg.kind = static_cast<QueryKind>(rng.UniformInt(0, 6));
    msg.payload = RandomPayload(&rng, msg.kind);
    auto decoded = DecodeCandidateList(Encode(msg));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(RecordCount(decoded->payload), RecordCount(msg.payload));
  }
}

TEST(MessagesRoundtripTest, TruncationFailsCleanly) {
  Rng rng(0xACE);
  for (int i = 0; i < 50; ++i) {
    const std::string bytes = Encode(RandomCloakedQuery(&rng));
    for (size_t cut = 0; cut < bytes.size(); ++cut) {
      auto decoded = DecodeCloakedQuery(std::string_view(bytes).substr(0, cut));
      EXPECT_FALSE(decoded.ok());
      EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

TEST(MessagesRoundtripTest, TrailingGarbageRejected) {
  Rng rng(0xABBA);
  CandidateListMsg msg;
  msg.kind = QueryKind::kNearestPublic;
  msg.payload = RandomPayload(&rng, msg.kind);
  const std::string bytes = Encode(msg) + "x";
  auto decoded = DecodeCandidateList(bytes);
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(MessagesRoundtripTest, MistypedBufferRejected) {
  RegionRemoveMsg remove;
  remove.handle = 7;
  const std::string bytes = Encode(remove);
  // Feed a remove message to every other decoder.
  EXPECT_FALSE(DecodeCloakedQuery(bytes).ok());
  EXPECT_FALSE(DecodeRegionUpsert(bytes).ok());
  EXPECT_FALSE(DecodeSnapshot(bytes).ok());
  EXPECT_FALSE(DecodeCandidateList(bytes).ok());
  EXPECT_FALSE(DecodeAck(bytes).ok());
}

TEST(MessagesRoundtripTest, CorruptLengthPrefixRejected) {
  SnapshotMsg msg;
  msg.regions.resize(2);
  msg.regions[0] = {1, Rect(0, 0, 0.5, 0.5)};
  msg.regions[1] = {2, Rect(0.5, 0.5, 1, 1)};
  std::string bytes = Encode(msg);
  // The vector length prefix sits right after the 1-byte tag; blow it
  // up far past the buffer and the sanity cap must reject it.
  bytes[1] = '\xff';
  bytes[2] = '\xff';
  bytes[3] = '\xff';
  bytes[4] = '\x7f';
  auto decoded = DecodeSnapshot(bytes);
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(MessagesRoundtripTest, EmptyBufferRejected) {
  EXPECT_FALSE(DecodeCloakedQuery("").ok());
  EXPECT_FALSE(DecodeRegionUpsert("").ok());
  EXPECT_FALSE(DecodeRegionRemove("").ok());
  EXPECT_FALSE(DecodeSnapshot("").ok());
  EXPECT_FALSE(DecodeCandidateList("").ok());
  EXPECT_FALSE(DecodeAck("").ok());
}

}  // namespace
}  // namespace casper
