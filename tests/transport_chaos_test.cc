#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/casper/batch_query_engine.h"
#include "src/casper/casper.h"
#include "src/casper/workload.h"
#include "src/common/rng.h"
#include "src/obs/exporters.h"
#include "src/transport/fault_injection.h"

/// End-to-end chaos acceptance test (the ISSUE's headline criterion):
/// a full CasperService whose tier channel is wrapped in a seeded
/// FaultInjectingChannel at >= 10% combined fault rates, driven with
/// over a thousand mixed queries (plus continuous movement publishing
/// region upserts through the same chaotic channel), verifying that
///
///  - every successful private NN answer is *correct*: the true nearest
///    public target of the user's exact position appears in the
///    candidate list (inclusiveness) and survives client refinement —
///    degraded (cache-served) answers included;
///  - every failure is one of the two typed transport errors the client
///    is allowed to surface, kUnavailable or kDeadlineExceeded — no
///    hangs, no crashes, no silent wrong answers, no leaked kDataLoss;
///  - duplicated deliveries never double-apply maintenance: after the
///    chaos ends and the replay buffer flushes, the server holds
///    exactly one cloaked region per registered user;
///  - the breaker trips under a scripted outage, recovers afterwards,
///    and its transitions plus the retry counters appear in a scraped
///    Prometheus export.

namespace casper {
namespace {

constexpr size_t kUsers = 48;
constexpr size_t kTargets = 120;
constexpr size_t kBatches = 12;
constexpr size_t kBatchSize = 100;  // 12 * 100 = 1200 >= 1000 queries.

/// True nearest target of `p` by exhaustive scan — the oracle the
/// server's candidate lists are checked against.
uint64_t BruteNearest(const std::vector<processor::PublicTarget>& targets,
                      const Point& p) {
  uint64_t best_id = 0;
  double best_d2 = -1.0;
  for (const processor::PublicTarget& t : targets) {
    const double dx = t.position.x - p.x;
    const double dy = t.position.y - p.y;
    const double d2 = dx * dx + dy * dy;
    if (best_d2 < 0.0 || d2 < best_d2) {
      best_d2 = d2;
      best_id = t.id;
    }
  }
  return best_id;
}

bool ContainsId(const std::vector<processor::PublicTarget>& candidates,
                uint64_t id) {
  for (const processor::PublicTarget& t : candidates) {
    if (t.id == id) return true;
  }
  return false;
}

/// A deterministic mix over all seven query kinds, weighted toward the
/// private NN kind so the inclusiveness oracle gets plenty of samples
/// (and the cache warms enough to serve degraded answers).
server::BatchQueryRequest MixedRequest(size_t i, const Rect& space) {
  const uint64_t uid = i % kUsers;
  switch (i % 8) {
    case 0:
    case 4:
      return server::BatchQueryRequest::NearestPublic(uid);
    case 1:
      return server::BatchQueryRequest::KNearestPublic(uid, 3);
    case 2:
      return server::BatchQueryRequest::RangePublic(
          uid, space.width() * 0.02);
    case 3:
      return server::BatchQueryRequest::NearestPrivate(uid);
    case 5:
      return server::BatchQueryRequest::PublicNearest(
          Point{space.min.x + space.width() * 0.3,
                space.min.y + space.height() * 0.7});
    case 6:
      return server::BatchQueryRequest::PublicRange(
          Rect(space.min.x, space.min.y,
               space.min.x + space.width() * 0.4,
               space.min.y + space.height() * 0.4));
    default:
      return server::BatchQueryRequest::Density(4, 4);
  }
}

TEST(TransportChaosTest, ThousandMixedQueriesUnderTenPercentFaults) {
  obs::MetricsRegistry registry;
  obs::CasperMetrics metrics(&registry);

  transport::FaultProfile profile;
  profile.drop_request_rate = 0.03;
  profile.drop_response_rate = 0.02;
  profile.duplicate_rate = 0.02;
  profile.corrupt_request_rate = 0.02;
  profile.corrupt_response_rate = 0.02;
  profile.delay_rate = 0.02;
  profile.delay_micros = 50;
  profile.late_delivery_rate = 0.02;
  ASSERT_GE(profile.CombinedRate(), 0.10);

  CasperOptions options;
  options.pyramid.height = 6;
  options.metrics = &metrics;
  // Every user event publishes a fresh cloaked region through the
  // chaotic channel — the maintenance stream (idempotency keys, replay
  // buffer) is under test, not just the query stream.
  options.auto_sync_private_data = true;
  options.resilience.retry.max_attempts = 4;
  options.resilience.retry.initial_backoff_seconds = 1e-5;
  options.resilience.retry.max_backoff_seconds = 1e-4;
  options.resilience.retry.deadline_seconds = 2.0;
  options.resilience.breaker.failure_threshold = 5;
  options.resilience.breaker.open_seconds = 0.002;
  options.resilience.breaker.half_open_successes = 1;
  options.resilience.metrics = &metrics;

  transport::FaultInjectingChannel* fault = nullptr;
  options.channel_decorator =
      [&fault, &profile](
          transport::Channel* inner) -> std::unique_ptr<transport::Channel> {
    auto owned = std::make_unique<transport::FaultInjectingChannel>(
        inner, profile, /*seed=*/0xC4A05);
    fault = owned.get();
    return owned;
  };

  CasperService service(options);
  ASSERT_NE(fault, nullptr);

  Rng rng(0xC4A0);
  const Rect space = service.options().pyramid.space;
  for (anonymizer::UserId uid = 0; uid < kUsers; ++uid) {
    anonymizer::PrivacyProfile user_profile;
    user_profile.k = static_cast<uint32_t>(rng.UniformInt(1, 8));
    ASSERT_TRUE(
        service.RegisterUser(uid, user_profile, rng.PointIn(space)).ok());
  }
  const std::vector<processor::PublicTarget> targets =
      workload::UniformPublicTargets(kTargets, space, &rng);
  service.SetPublicTargets(targets);

  server::BatchEngineOptions engine_options;
  engine_options.threads = 4;
  engine_options.use_cache = true;
  engine_options.metrics = &metrics;
  server::BatchQueryEngine engine(&service, engine_options);

  size_t ok_count = 0;
  size_t degraded_count = 0;
  size_t unavailable_count = 0;
  size_t deadline_count = 0;
  size_t inclusive_checks = 0;

  for (size_t batch = 0; batch < kBatches; ++batch) {
    // Batch 6 runs into a scripted hard outage: the next 40 channel
    // calls all fail, which (threshold 5) must trip the breaker.
    if (batch == 6) {
      fault->FailRequests(fault->calls() + 1, fault->calls() + 40);
    }

    std::vector<server::BatchQueryRequest> requests;
    requests.reserve(kBatchSize);
    for (size_t i = 0; i < kBatchSize; ++i) {
      requests.push_back(MixedRequest(batch * kBatchSize + i, space));
    }
    const server::BatchResult result = engine.Execute(requests);
    ASSERT_EQ(result.responses.size(), requests.size());

    for (size_t i = 0; i < result.responses.size(); ++i) {
      const server::BatchQueryResponse& response = result.responses[i];
      if (!response.ok()) {
        // The caller-facing trichotomy: nothing but the two typed
        // transport errors may surface (application errors cannot occur
        // in this workload — every uid is registered and private data
        // auto-syncs).
        EXPECT_TRUE(
            response.status.code() == StatusCode::kUnavailable ||
            response.status.code() == StatusCode::kDeadlineExceeded)
            << "batch " << batch << " slot " << i << ": "
            << response.status.message();
        if (response.status.code() == StatusCode::kUnavailable) {
          ++unavailable_count;
        } else {
          ++deadline_count;
        }
        continue;
      }
      ++ok_count;
      if (response.kind != QueryKind::kNearestPublic) continue;
      ASSERT_NE(response.nearest_public(), nullptr);
      const PublicNNResponse& nn = *response.nearest_public();
      if (nn.degraded) ++degraded_count;
      // Inclusiveness (and hence end-to-end correctness after client
      // refinement) must hold for every successful answer — degraded
      // ones included.
      const uint64_t uid = requests[i].uid;
      const auto position = service.ClientPosition(uid);
      ASSERT_TRUE(position.ok());
      const uint64_t truth = BruteNearest(targets, position.value());
      EXPECT_TRUE(ContainsId(nn.server_answer.candidates, truth))
          << "batch " << batch << " slot " << i
          << ": true NN missing from candidate list";
      EXPECT_EQ(nn.exact.id, truth)
          << "batch " << batch << " slot " << i
          << ": client refinement picked a wrong answer";
      ++inclusive_checks;
    }

    // Movement between batches: every user event publishes a region
    // upsert (pseudonym-rotated, so each one is a replace chain the
    // idempotency window must protect) through the chaotic channel.
    for (anonymizer::UserId uid = 0; uid < kUsers; ++uid) {
      ASSERT_TRUE(
          service.UpdateUserLocation(uid, rng.PointIn(space)).ok());
    }
  }

  // The workload genuinely exercised the fault model.
  const transport::FaultStats stats = fault->stats();
  EXPECT_GT(stats.TotalInjected(), 50u);
  EXPECT_GT(stats.duplicated, 0u);
  EXPECT_GT(stats.scripted_failures, 0u);
  EXPECT_GT(ok_count, kBatches * kBatchSize / 2);
  EXPECT_GT(inclusive_checks, 100u);
  EXPECT_GT(degraded_count + unavailable_count + deadline_count, 0u);
  EXPECT_GE(metrics.breaker_transitions_total[1]->Value(), 1u)
      << "the scripted outage should have tripped the breaker open";
  EXPECT_GT(metrics.transport_retries_total->Value(), 0u);

  // End the chaos and let the breaker recover: the remaining scripted
  // failures burn off through half-open probes (one every cool-down),
  // after which a probe success re-closes the breaker.
  fault->SetProfile(transport::FaultProfile{});
  for (int i = 0; i < 500 && service.transport_client().breaker_state() !=
                                 transport::BreakerState::kClosed;
       ++i) {
    (void)service.QueryNearestPublic(i % kUsers);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(service.transport_client().breaker_state(),
            transport::BreakerState::kClosed);

  // Drain the replay buffer; with duplicates deduplicated and every
  // queued upsert applied exactly once, the server must hold exactly
  // one region per user — no lost and no doubled regions.
  ASSERT_TRUE(service.transport_client().Flush().ok());
  EXPECT_EQ(service.transport_client().replay_depth(), 0u);
  EXPECT_EQ(service.private_store().size(), service.user_count());

  // The resilience instruments made it into the scraped export.
  const std::string prom = obs::ExportPrometheus(registry.Scrape());
  EXPECT_NE(prom.find("casper_transport_breaker_transitions_total{to=\"open\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("casper_transport_retries_total"), std::string::npos);
  EXPECT_NE(prom.find("casper_transport_requests_total"), std::string::npos);
  EXPECT_NE(prom.find("casper_transport_breaker_state"), std::string::npos);
}

/// Load shedding: with one worker and a queue-depth watermark of 1, a
/// large batch cannot be admitted whole — the overflow fails fast with
/// kUnavailable and is counted, while the admitted slots still succeed.
TEST(TransportChaosTest, BatchEngineShedsLoadBeyondTheWatermark) {
  obs::MetricsRegistry registry;
  obs::CasperMetrics metrics(&registry);

  CasperOptions options;
  options.pyramid.height = 6;
  options.metrics = &metrics;
  CasperService service(options);

  Rng rng(0x5EDD);
  const Rect space = service.options().pyramid.space;
  for (anonymizer::UserId uid = 0; uid < 16; ++uid) {
    anonymizer::PrivacyProfile profile;
    profile.k = 2;
    ASSERT_TRUE(
        service.RegisterUser(uid, profile, rng.PointIn(space)).ok());
  }
  service.SetPublicTargets(
      workload::UniformPublicTargets(64, space, &rng));

  server::BatchEngineOptions engine_options;
  engine_options.threads = 1;
  engine_options.shed_queue_depth = 1;
  engine_options.metrics = &metrics;
  server::BatchQueryEngine engine(&service, engine_options);

  std::vector<server::BatchQueryRequest> requests;
  for (size_t i = 0; i < 64; ++i) {
    requests.push_back(server::BatchQueryRequest::NearestPublic(i % 16));
  }
  const server::BatchResult result = engine.Execute(requests);
  ASSERT_EQ(result.responses.size(), requests.size());

  size_t shed = 0;
  size_t served = 0;
  for (const server::BatchQueryResponse& response : result.responses) {
    if (response.ok()) {
      ++served;
      continue;
    }
    EXPECT_EQ(response.status.code(), StatusCode::kUnavailable);
    EXPECT_NE(response.status.message().find("overloaded"),
              std::string::npos);
    ++shed;
  }
  EXPECT_GT(shed, 0u);
  EXPECT_GT(served, 0u);
  EXPECT_EQ(metrics.batch_shed_total->Value(), shed);
  EXPECT_EQ(shed + served, requests.size());
}

}  // namespace
}  // namespace casper
