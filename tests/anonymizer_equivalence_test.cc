#include <gtest/gtest.h>

#include "src/anonymizer/adaptive_anonymizer.h"
#include "src/anonymizer/basic_anonymizer.h"
#include "src/common/rng.h"

/// The paper observes (§6.1.1) that the basic and adaptive anonymizers
/// "yield the same accuracy as they result in the same cloaked region
/// from Algorithm 1". This suite drives both implementations through
/// identical registration / movement / profile-change histories and
/// asserts region-for-region equality of every cloak.

namespace casper::anonymizer {
namespace {

struct Scenario {
  int height;
  size_t users;
  uint32_t k_max;
  double a_min_max_fraction;
  uint64_t seed;
};

class EquivalenceTest : public ::testing::TestWithParam<Scenario> {};

TEST_P(EquivalenceTest, IdenticalCloaksThroughoutHistory) {
  const Scenario s = GetParam();
  PyramidConfig config;
  config.height = s.height;
  BasicAnonymizer basic(config);
  AdaptiveAnonymizer adaptive(config);
  Rng rng(s.seed);

  // Identical registrations.
  std::vector<Point> pos(s.users);
  for (UserId uid = 0; uid < s.users; ++uid) {
    pos[uid] = rng.PointIn(config.space);
    PrivacyProfile profile;
    profile.k = static_cast<uint32_t>(rng.UniformInt(1, s.k_max));
    profile.a_min =
        config.space.Area() * rng.Uniform(0.0, s.a_min_max_fraction);
    ASSERT_TRUE(basic.RegisterUser(uid, profile, pos[uid]).ok());
    ASSERT_TRUE(adaptive.RegisterUser(uid, profile, pos[uid]).ok());
  }

  auto compare_all_cloaks = [&](const char* phase) {
    for (UserId uid = 0; uid < s.users; ++uid) {
      auto b = basic.Cloak(uid);
      auto a = adaptive.Cloak(uid);
      ASSERT_TRUE(b.ok()) << phase << " uid " << uid;
      ASSERT_TRUE(a.ok()) << phase << " uid " << uid;
      EXPECT_EQ(b->region, a->region)
          << phase << " uid " << uid << " basic=" << b->region.ToString()
          << " adaptive=" << a->region.ToString();
      EXPECT_EQ(b->users_in_region, a->users_in_region);
    }
  };
  compare_all_cloaks("after-registration");

  // Random movement.
  for (int round = 0; round < 5; ++round) {
    for (UserId uid = 0; uid < s.users; ++uid) {
      pos[uid].x = std::clamp(pos[uid].x + rng.Uniform(-0.1, 0.1), 0.0, 1.0);
      pos[uid].y = std::clamp(pos[uid].y + rng.Uniform(-0.1, 0.1), 0.0, 1.0);
      ASSERT_TRUE(basic.UpdateLocation(uid, pos[uid]).ok());
      ASSERT_TRUE(adaptive.UpdateLocation(uid, pos[uid]).ok());
    }
  }
  ASSERT_TRUE(adaptive.CheckInvariants());
  compare_all_cloaks("after-movement");

  // Random profile changes.
  for (UserId uid = 0; uid < s.users; uid += 3) {
    PrivacyProfile profile;
    profile.k = static_cast<uint32_t>(rng.UniformInt(1, s.k_max));
    profile.a_min =
        config.space.Area() * rng.Uniform(0.0, s.a_min_max_fraction);
    ASSERT_TRUE(basic.UpdateProfile(uid, profile).ok());
    ASSERT_TRUE(adaptive.UpdateProfile(uid, profile).ok());
  }
  ASSERT_TRUE(adaptive.CheckInvariants());
  compare_all_cloaks("after-profile-change");

  // Partial deregistration (keep enough users for remaining k values:
  // re-relax survivors first).
  for (UserId uid = 0; uid < s.users; ++uid) {
    ASSERT_TRUE(basic.UpdateProfile(uid, {1, 0.0}).ok());
    ASSERT_TRUE(adaptive.UpdateProfile(uid, {1, 0.0}).ok());
  }
  for (UserId uid = 0; uid < s.users / 2; ++uid) {
    ASSERT_TRUE(basic.DeregisterUser(uid).ok());
    ASSERT_TRUE(adaptive.DeregisterUser(uid).ok());
  }
  ASSERT_TRUE(adaptive.CheckInvariants());
  for (UserId uid = s.users / 2; uid < s.users; ++uid) {
    auto b = basic.Cloak(uid);
    auto a = adaptive.Cloak(uid);
    ASSERT_TRUE(b.ok());
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(b->region, a->region);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, EquivalenceTest,
    ::testing::Values(Scenario{4, 60, 8, 0.0, 1}, Scenario{5, 120, 20, 0.0, 2},
                      Scenario{6, 200, 30, 0.001, 3},
                      Scenario{7, 150, 10, 0.01, 4},
                      Scenario{5, 80, 60, 0.0005, 5},
                      Scenario{8, 250, 40, 0.0001, 6}));

}  // namespace
}  // namespace casper::anonymizer
