#include "src/casper/transmission.h"

#include <gtest/gtest.h>

namespace casper {
namespace {

TEST(TransmissionModelTest, PaperDefaults) {
  TransmissionModel model;
  EXPECT_EQ(model.record_bytes(), 64u);
  EXPECT_DOUBLE_EQ(model.bandwidth_bps(), 100e6);
  // One 64-byte record over 100 Mbps: 512 bits / 1e8 bps.
  EXPECT_DOUBLE_EQ(model.SecondsFor(1), 512.0 / 100e6);
  EXPECT_DOUBLE_EQ(model.SecondsFor(0), 0.0);
}

TEST(TransmissionModelTest, LinearInRecords) {
  TransmissionModel model;
  EXPECT_DOUBLE_EQ(model.SecondsFor(1000), 1000 * model.SecondsFor(1));
  EXPECT_EQ(model.BytesFor(10), 640u);
}

TEST(TransmissionModelTest, CustomChannel) {
  TransmissionModel model(128, 1e6);
  EXPECT_DOUBLE_EQ(model.SecondsFor(1), 1024.0 / 1e6);
}

}  // namespace
}  // namespace casper
