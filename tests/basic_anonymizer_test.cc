#include "src/anonymizer/basic_anonymizer.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace casper::anonymizer {
namespace {

PyramidConfig SmallConfig(int height = 5) {
  PyramidConfig config;
  config.height = height;
  return config;
}

TEST(BasicAnonymizerTest, RegisterUpdatesAllLevels) {
  BasicAnonymizer anon(SmallConfig(3));
  ASSERT_TRUE(anon.RegisterUser(1, {1, 0.0}, {0.1, 0.1}).ok());
  EXPECT_EQ(anon.user_count(), 1u);
  // Every ancestor of the user's leaf counts her.
  for (int level = 0; level <= 3; ++level) {
    EXPECT_EQ(anon.CellCount(anon.config().CellAt(level, {0.1, 0.1})), 1u);
  }
  // Stats: one counter update per level.
  EXPECT_EQ(anon.stats().counter_updates, 4u);
  EXPECT_TRUE(anon.CheckInvariants());
}

TEST(BasicAnonymizerTest, RegistrationValidation) {
  BasicAnonymizer anon(SmallConfig());
  ASSERT_TRUE(anon.RegisterUser(1, {1, 0.0}, {0.5, 0.5}).ok());
  EXPECT_EQ(anon.RegisterUser(1, {1, 0.0}, {0.5, 0.5}).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(anon.RegisterUser(2, {1, 0.0}, {1.5, 0.5}).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(anon.RegisterUser(3, {0, 0.0}, {0.5, 0.5}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(anon.user_count(), 1u);
}

TEST(BasicAnonymizerTest, UpdateWithinCellIsFree) {
  BasicAnonymizer anon(SmallConfig(3));
  ASSERT_TRUE(anon.RegisterUser(1, {1, 0.0}, {0.10, 0.10}).ok());
  const uint64_t before = anon.stats().counter_updates;
  // Leaf cells at height 3 have side 1/8; stay inside the same cell.
  ASSERT_TRUE(anon.UpdateLocation(1, {0.11, 0.11}).ok());
  EXPECT_EQ(anon.stats().counter_updates, before);
  EXPECT_EQ(anon.stats().cell_crossings, 0u);
  EXPECT_EQ(anon.stats().location_updates, 1u);
  EXPECT_TRUE(anon.CheckInvariants());
}

TEST(BasicAnonymizerTest, UpdateAcrossCellsPropagatesToLca) {
  BasicAnonymizer anon(SmallConfig(3));
  ASSERT_TRUE(anon.RegisterUser(1, {1, 0.0}, {0.05, 0.05}).ok());
  const uint64_t before = anon.stats().counter_updates;

  // Move to the adjacent leaf (same parent): 2 mutations at the leaf
  // level only.
  ASSERT_TRUE(anon.UpdateLocation(1, {0.2, 0.05}).ok());
  EXPECT_EQ(anon.stats().counter_updates - before, 2u);
  EXPECT_TRUE(anon.CheckInvariants());

  // Move across the whole space: mutations at every level below root.
  const uint64_t before2 = anon.stats().counter_updates;
  ASSERT_TRUE(anon.UpdateLocation(1, {0.95, 0.95}).ok());
  EXPECT_EQ(anon.stats().counter_updates - before2, 2u * 3);
  EXPECT_TRUE(anon.CheckInvariants());
}

TEST(BasicAnonymizerTest, DeregisterRemovesCounts) {
  BasicAnonymizer anon(SmallConfig());
  ASSERT_TRUE(anon.RegisterUser(1, {1, 0.0}, {0.3, 0.3}).ok());
  ASSERT_TRUE(anon.RegisterUser(2, {1, 0.0}, {0.3, 0.3}).ok());
  ASSERT_TRUE(anon.DeregisterUser(1).ok());
  EXPECT_EQ(anon.user_count(), 1u);
  EXPECT_EQ(anon.CellCount(CellId::Root()), 1u);
  EXPECT_EQ(anon.DeregisterUser(1).code(), StatusCode::kNotFound);
  EXPECT_TRUE(anon.CheckInvariants());
}

TEST(BasicAnonymizerTest, CloakHonorsProfile) {
  BasicAnonymizer anon(SmallConfig(6));
  Rng rng(1);
  for (UserId uid = 0; uid < 500; ++uid) {
    ASSERT_TRUE(
        anon.RegisterUser(uid, {1, 0.0}, rng.PointIn(anon.config().space))
            .ok());
  }
  // Tighten one user's profile and cloak.
  ASSERT_TRUE(anon.UpdateProfile(0, {50, 0.01}).ok());
  auto result = anon.Cloak(0);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->users_in_region, 50u);
  EXPECT_GE(result->region.Area(), 0.01);
  EXPECT_EQ(anon.stats().cloak_calls, 1u);
  EXPECT_GT(anon.stats().cloak_levels_visited, 0u);
}

TEST(BasicAnonymizerTest, CloakUnknownUser) {
  BasicAnonymizer anon(SmallConfig());
  EXPECT_EQ(anon.Cloak(77).status().code(), StatusCode::kNotFound);
}

TEST(BasicAnonymizerTest, CloakFailsWhenKExceedsPopulation) {
  BasicAnonymizer anon(SmallConfig());
  ASSERT_TRUE(anon.RegisterUser(1, {10, 0.0}, {0.5, 0.5}).ok());
  EXPECT_EQ(anon.Cloak(1).status().code(), StatusCode::kFailedPrecondition);
}

TEST(BasicAnonymizerTest, ProfileUpdateValidation) {
  BasicAnonymizer anon(SmallConfig());
  ASSERT_TRUE(anon.RegisterUser(1, {1, 0.0}, {0.5, 0.5}).ok());
  EXPECT_EQ(anon.UpdateProfile(2, {1, 0.0}).code(), StatusCode::kNotFound);
  EXPECT_EQ(anon.UpdateProfile(1, {0, 0.0}).code(),
            StatusCode::kInvalidArgument);
}

TEST(BasicAnonymizerTest, ManyUsersManyMovesInvariants) {
  BasicAnonymizer anon(SmallConfig(6));
  Rng rng(2);
  const Rect space = anon.config().space;
  for (UserId uid = 0; uid < 300; ++uid) {
    ASSERT_TRUE(anon.RegisterUser(uid, {1, 0.0}, rng.PointIn(space)).ok());
  }
  for (int round = 0; round < 10; ++round) {
    for (UserId uid = 0; uid < 300; ++uid) {
      ASSERT_TRUE(anon.UpdateLocation(uid, rng.PointIn(space)).ok());
    }
  }
  EXPECT_TRUE(anon.CheckInvariants());
  EXPECT_EQ(anon.stats().location_updates, 3000u);
}

TEST(BasicAnonymizerTest, CloakedRegionAlwaysContainsUser) {
  BasicAnonymizer anon(SmallConfig(7));
  Rng rng(3);
  const Rect space = anon.config().space;
  std::vector<Point> positions;
  for (UserId uid = 0; uid < 400; ++uid) {
    const Point p = rng.PointIn(space);
    positions.push_back(p);
    const uint32_t k = static_cast<uint32_t>(rng.UniformInt(1, 40));
    ASSERT_TRUE(anon.RegisterUser(uid, {k, 0.0}, p).ok());
  }
  for (UserId uid = 0; uid < 400; uid += 7) {
    auto result = anon.Cloak(uid);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->region.Contains(positions[uid]));
  }
}

}  // namespace
}  // namespace casper::anonymizer
