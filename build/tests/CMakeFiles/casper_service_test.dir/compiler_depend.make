# Empty compiler generated dependencies file for casper_service_test.
# This may be replaced when dependencies are built.
