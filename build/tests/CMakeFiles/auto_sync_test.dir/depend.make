# Empty dependencies file for auto_sync_test.
# This may be replaced when dependencies are built.
