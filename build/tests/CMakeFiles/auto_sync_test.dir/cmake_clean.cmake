file(REMOVE_RECURSE
  "CMakeFiles/auto_sync_test.dir/auto_sync_test.cc.o"
  "CMakeFiles/auto_sync_test.dir/auto_sync_test.cc.o.d"
  "auto_sync_test"
  "auto_sync_test.pdb"
  "auto_sync_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auto_sync_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
