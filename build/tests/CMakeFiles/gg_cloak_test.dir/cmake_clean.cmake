file(REMOVE_RECURSE
  "CMakeFiles/gg_cloak_test.dir/gg_cloak_test.cc.o"
  "CMakeFiles/gg_cloak_test.dir/gg_cloak_test.cc.o.d"
  "gg_cloak_test"
  "gg_cloak_test.pdb"
  "gg_cloak_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gg_cloak_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
