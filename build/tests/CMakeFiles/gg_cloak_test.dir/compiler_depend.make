# Empty compiler generated dependencies file for gg_cloak_test.
# This may be replaced when dependencies are built.
