file(REMOVE_RECURSE
  "CMakeFiles/query_cache_test.dir/query_cache_test.cc.o"
  "CMakeFiles/query_cache_test.dir/query_cache_test.cc.o.d"
  "query_cache_test"
  "query_cache_test.pdb"
  "query_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
