file(REMOVE_RECURSE
  "CMakeFiles/transmission_test.dir/transmission_test.cc.o"
  "CMakeFiles/transmission_test.dir/transmission_test.cc.o.d"
  "transmission_test"
  "transmission_test.pdb"
  "transmission_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transmission_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
