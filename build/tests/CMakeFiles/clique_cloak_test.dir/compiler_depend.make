# Empty compiler generated dependencies file for clique_cloak_test.
# This may be replaced when dependencies are built.
