file(REMOVE_RECURSE
  "CMakeFiles/clique_cloak_test.dir/clique_cloak_test.cc.o"
  "CMakeFiles/clique_cloak_test.dir/clique_cloak_test.cc.o.d"
  "clique_cloak_test"
  "clique_cloak_test.pdb"
  "clique_cloak_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clique_cloak_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
