file(REMOVE_RECURSE
  "CMakeFiles/pyramid_config_test.dir/pyramid_config_test.cc.o"
  "CMakeFiles/pyramid_config_test.dir/pyramid_config_test.cc.o.d"
  "pyramid_config_test"
  "pyramid_config_test.pdb"
  "pyramid_config_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pyramid_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
