# Empty dependencies file for pyramid_config_test.
# This may be replaced when dependencies are built.
