# Empty dependencies file for cloaking_test.
# This may be replaced when dependencies are built.
