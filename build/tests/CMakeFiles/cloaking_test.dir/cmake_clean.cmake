file(REMOVE_RECURSE
  "CMakeFiles/cloaking_test.dir/cloaking_test.cc.o"
  "CMakeFiles/cloaking_test.dir/cloaking_test.cc.o.d"
  "cloaking_test"
  "cloaking_test.pdb"
  "cloaking_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloaking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
