file(REMOVE_RECURSE
  "CMakeFiles/filter_policy_test.dir/filter_policy_test.cc.o"
  "CMakeFiles/filter_policy_test.dir/filter_policy_test.cc.o.d"
  "filter_policy_test"
  "filter_policy_test.pdb"
  "filter_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filter_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
