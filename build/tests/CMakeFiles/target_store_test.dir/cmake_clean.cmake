file(REMOVE_RECURSE
  "CMakeFiles/target_store_test.dir/target_store_test.cc.o"
  "CMakeFiles/target_store_test.dir/target_store_test.cc.o.d"
  "target_store_test"
  "target_store_test.pdb"
  "target_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/target_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
