# Empty dependencies file for target_store_test.
# This may be replaced when dependencies are built.
