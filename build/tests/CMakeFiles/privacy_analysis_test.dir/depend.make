# Empty dependencies file for privacy_analysis_test.
# This may be replaced when dependencies are built.
