file(REMOVE_RECURSE
  "CMakeFiles/privacy_analysis_test.dir/privacy_analysis_test.cc.o"
  "CMakeFiles/privacy_analysis_test.dir/privacy_analysis_test.cc.o.d"
  "privacy_analysis_test"
  "privacy_analysis_test.pdb"
  "privacy_analysis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privacy_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
