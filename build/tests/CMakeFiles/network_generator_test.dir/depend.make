# Empty dependencies file for network_generator_test.
# This may be replaced when dependencies are built.
