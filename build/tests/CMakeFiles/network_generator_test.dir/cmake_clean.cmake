file(REMOVE_RECURSE
  "CMakeFiles/network_generator_test.dir/network_generator_test.cc.o"
  "CMakeFiles/network_generator_test.dir/network_generator_test.cc.o.d"
  "network_generator_test"
  "network_generator_test.pdb"
  "network_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
