# Empty compiler generated dependencies file for private_nn_private_test.
# This may be replaced when dependencies are built.
