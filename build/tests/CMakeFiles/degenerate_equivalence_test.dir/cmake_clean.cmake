file(REMOVE_RECURSE
  "CMakeFiles/degenerate_equivalence_test.dir/degenerate_equivalence_test.cc.o"
  "CMakeFiles/degenerate_equivalence_test.dir/degenerate_equivalence_test.cc.o.d"
  "degenerate_equivalence_test"
  "degenerate_equivalence_test.pdb"
  "degenerate_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/degenerate_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
