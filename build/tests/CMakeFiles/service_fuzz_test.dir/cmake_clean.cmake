file(REMOVE_RECURSE
  "CMakeFiles/service_fuzz_test.dir/service_fuzz_test.cc.o"
  "CMakeFiles/service_fuzz_test.dir/service_fuzz_test.cc.o.d"
  "service_fuzz_test"
  "service_fuzz_test.pdb"
  "service_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
