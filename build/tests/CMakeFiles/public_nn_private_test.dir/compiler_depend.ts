# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for public_nn_private_test.
