# Empty dependencies file for public_nn_private_test.
# This may be replaced when dependencies are built.
