file(REMOVE_RECURSE
  "CMakeFiles/public_nn_private_test.dir/public_nn_private_test.cc.o"
  "CMakeFiles/public_nn_private_test.dir/public_nn_private_test.cc.o.d"
  "public_nn_private_test"
  "public_nn_private_test.pdb"
  "public_nn_private_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/public_nn_private_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
