# Empty compiler generated dependencies file for private_range_test.
# This may be replaced when dependencies are built.
