file(REMOVE_RECURSE
  "CMakeFiles/private_range_test.dir/private_range_test.cc.o"
  "CMakeFiles/private_range_test.dir/private_range_test.cc.o.d"
  "private_range_test"
  "private_range_test.pdb"
  "private_range_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/private_range_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
