# Empty dependencies file for extended_area_test.
# This may be replaced when dependencies are built.
