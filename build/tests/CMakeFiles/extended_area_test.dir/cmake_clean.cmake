file(REMOVE_RECURSE
  "CMakeFiles/extended_area_test.dir/extended_area_test.cc.o"
  "CMakeFiles/extended_area_test.dir/extended_area_test.cc.o.d"
  "extended_area_test"
  "extended_area_test.pdb"
  "extended_area_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extended_area_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
