file(REMOVE_RECURSE
  "CMakeFiles/differential_spatial_test.dir/differential_spatial_test.cc.o"
  "CMakeFiles/differential_spatial_test.dir/differential_spatial_test.cc.o.d"
  "differential_spatial_test"
  "differential_spatial_test.pdb"
  "differential_spatial_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/differential_spatial_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
