# Empty dependencies file for moving_objects_test.
# This may be replaced when dependencies are built.
