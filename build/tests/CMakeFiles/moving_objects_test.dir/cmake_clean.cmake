file(REMOVE_RECURSE
  "CMakeFiles/moving_objects_test.dir/moving_objects_test.cc.o"
  "CMakeFiles/moving_objects_test.dir/moving_objects_test.cc.o.d"
  "moving_objects_test"
  "moving_objects_test.pdb"
  "moving_objects_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moving_objects_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
