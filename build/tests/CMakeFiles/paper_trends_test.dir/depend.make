# Empty dependencies file for paper_trends_test.
# This may be replaced when dependencies are built.
