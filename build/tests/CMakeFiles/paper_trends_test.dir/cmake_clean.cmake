file(REMOVE_RECURSE
  "CMakeFiles/paper_trends_test.dir/paper_trends_test.cc.o"
  "CMakeFiles/paper_trends_test.dir/paper_trends_test.cc.o.d"
  "paper_trends_test"
  "paper_trends_test.pdb"
  "paper_trends_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_trends_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
