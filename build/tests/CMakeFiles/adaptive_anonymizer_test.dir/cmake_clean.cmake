file(REMOVE_RECURSE
  "CMakeFiles/adaptive_anonymizer_test.dir/adaptive_anonymizer_test.cc.o"
  "CMakeFiles/adaptive_anonymizer_test.dir/adaptive_anonymizer_test.cc.o.d"
  "adaptive_anonymizer_test"
  "adaptive_anonymizer_test.pdb"
  "adaptive_anonymizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_anonymizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
