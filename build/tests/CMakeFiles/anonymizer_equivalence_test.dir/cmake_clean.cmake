file(REMOVE_RECURSE
  "CMakeFiles/anonymizer_equivalence_test.dir/anonymizer_equivalence_test.cc.o"
  "CMakeFiles/anonymizer_equivalence_test.dir/anonymizer_equivalence_test.cc.o.d"
  "anonymizer_equivalence_test"
  "anonymizer_equivalence_test.pdb"
  "anonymizer_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anonymizer_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
