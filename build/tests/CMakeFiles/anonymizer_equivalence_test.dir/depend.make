# Empty dependencies file for anonymizer_equivalence_test.
# This may be replaced when dependencies are built.
