# Empty dependencies file for basic_anonymizer_test.
# This may be replaced when dependencies are built.
