file(REMOVE_RECURSE
  "CMakeFiles/basic_anonymizer_test.dir/basic_anonymizer_test.cc.o"
  "CMakeFiles/basic_anonymizer_test.dir/basic_anonymizer_test.cc.o.d"
  "basic_anonymizer_test"
  "basic_anonymizer_test.pdb"
  "basic_anonymizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/basic_anonymizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
