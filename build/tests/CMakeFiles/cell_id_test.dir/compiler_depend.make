# Empty compiler generated dependencies file for cell_id_test.
# This may be replaced when dependencies are built.
