file(REMOVE_RECURSE
  "CMakeFiles/cell_id_test.dir/cell_id_test.cc.o"
  "CMakeFiles/cell_id_test.dir/cell_id_test.cc.o.d"
  "cell_id_test"
  "cell_id_test.pdb"
  "cell_id_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cell_id_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
