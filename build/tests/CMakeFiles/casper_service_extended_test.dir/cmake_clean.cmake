file(REMOVE_RECURSE
  "CMakeFiles/casper_service_extended_test.dir/casper_service_extended_test.cc.o"
  "CMakeFiles/casper_service_extended_test.dir/casper_service_extended_test.cc.o.d"
  "casper_service_extended_test"
  "casper_service_extended_test.pdb"
  "casper_service_extended_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casper_service_extended_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
