# Empty dependencies file for casper_service_extended_test.
# This may be replaced when dependencies are built.
