file(REMOVE_RECURSE
  "CMakeFiles/public_range_test.dir/public_range_test.cc.o"
  "CMakeFiles/public_range_test.dir/public_range_test.cc.o.d"
  "public_range_test"
  "public_range_test.pdb"
  "public_range_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/public_range_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
