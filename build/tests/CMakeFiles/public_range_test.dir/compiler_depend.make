# Empty compiler generated dependencies file for public_range_test.
# This may be replaced when dependencies are built.
