file(REMOVE_RECURSE
  "CMakeFiles/private_nn_test.dir/private_nn_test.cc.o"
  "CMakeFiles/private_nn_test.dir/private_nn_test.cc.o.d"
  "private_nn_test"
  "private_nn_test.pdb"
  "private_nn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/private_nn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
