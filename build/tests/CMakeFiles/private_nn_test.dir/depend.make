# Empty dependencies file for private_nn_test.
# This may be replaced when dependencies are built.
