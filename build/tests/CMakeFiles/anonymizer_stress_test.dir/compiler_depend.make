# Empty compiler generated dependencies file for anonymizer_stress_test.
# This may be replaced when dependencies are built.
