file(REMOVE_RECURSE
  "CMakeFiles/anonymizer_stress_test.dir/anonymizer_stress_test.cc.o"
  "CMakeFiles/anonymizer_stress_test.dir/anonymizer_stress_test.cc.o.d"
  "anonymizer_stress_test"
  "anonymizer_stress_test.pdb"
  "anonymizer_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anonymizer_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
