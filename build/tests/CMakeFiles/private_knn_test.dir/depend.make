# Empty dependencies file for private_knn_test.
# This may be replaced when dependencies are built.
