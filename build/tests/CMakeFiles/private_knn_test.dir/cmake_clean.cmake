file(REMOVE_RECURSE
  "CMakeFiles/private_knn_test.dir/private_knn_test.cc.o"
  "CMakeFiles/private_knn_test.dir/private_knn_test.cc.o.d"
  "private_knn_test"
  "private_knn_test.pdb"
  "private_knn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/private_knn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
