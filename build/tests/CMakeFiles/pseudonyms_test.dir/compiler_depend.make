# Empty compiler generated dependencies file for pseudonyms_test.
# This may be replaced when dependencies are built.
