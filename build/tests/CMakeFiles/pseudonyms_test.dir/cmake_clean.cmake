file(REMOVE_RECURSE
  "CMakeFiles/pseudonyms_test.dir/pseudonyms_test.cc.o"
  "CMakeFiles/pseudonyms_test.dir/pseudonyms_test.cc.o.d"
  "pseudonyms_test"
  "pseudonyms_test.pdb"
  "pseudonyms_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pseudonyms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
