file(REMOVE_RECURSE
  "CMakeFiles/example_record_and_replay.dir/record_and_replay.cpp.o"
  "CMakeFiles/example_record_and_replay.dir/record_and_replay.cpp.o.d"
  "example_record_and_replay"
  "example_record_and_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_record_and_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
