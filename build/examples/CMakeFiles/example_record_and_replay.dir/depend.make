# Empty dependencies file for example_record_and_replay.
# This may be replaced when dependencies are built.
