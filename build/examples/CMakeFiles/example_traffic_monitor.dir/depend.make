# Empty dependencies file for example_traffic_monitor.
# This may be replaced when dependencies are built.
