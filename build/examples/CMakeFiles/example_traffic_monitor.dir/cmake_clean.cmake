file(REMOVE_RECURSE
  "CMakeFiles/example_traffic_monitor.dir/traffic_monitor.cpp.o"
  "CMakeFiles/example_traffic_monitor.dir/traffic_monitor.cpp.o.d"
  "example_traffic_monitor"
  "example_traffic_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_traffic_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
