# Empty compiler generated dependencies file for example_buddy_finder.
# This may be replaced when dependencies are built.
