file(REMOVE_RECURSE
  "CMakeFiles/example_buddy_finder.dir/buddy_finder.cpp.o"
  "CMakeFiles/example_buddy_finder.dir/buddy_finder.cpp.o.d"
  "example_buddy_finder"
  "example_buddy_finder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_buddy_finder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
