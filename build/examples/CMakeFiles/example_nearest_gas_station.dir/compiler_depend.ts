# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for example_nearest_gas_station.
