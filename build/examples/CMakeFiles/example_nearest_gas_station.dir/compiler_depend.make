# Empty compiler generated dependencies file for example_nearest_gas_station.
# This may be replaced when dependencies are built.
