file(REMOVE_RECURSE
  "CMakeFiles/example_nearest_gas_station.dir/nearest_gas_station.cpp.o"
  "CMakeFiles/example_nearest_gas_station.dir/nearest_gas_station.cpp.o.d"
  "example_nearest_gas_station"
  "example_nearest_gas_station.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_nearest_gas_station.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
