# Empty dependencies file for example_continuous_tracking.
# This may be replaced when dependencies are built.
