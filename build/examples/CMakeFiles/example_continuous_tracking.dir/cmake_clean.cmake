file(REMOVE_RECURSE
  "CMakeFiles/example_continuous_tracking.dir/continuous_tracking.cpp.o"
  "CMakeFiles/example_continuous_tracking.dir/continuous_tracking.cpp.o.d"
  "example_continuous_tracking"
  "example_continuous_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_continuous_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
