# Empty compiler generated dependencies file for fig14_private_targets.
# This may be replaced when dependencies are built.
