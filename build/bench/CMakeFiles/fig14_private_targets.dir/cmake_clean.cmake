file(REMOVE_RECURSE
  "CMakeFiles/fig14_private_targets.dir/fig14_private_targets.cc.o"
  "CMakeFiles/fig14_private_targets.dir/fig14_private_targets.cc.o.d"
  "fig14_private_targets"
  "fig14_private_targets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_private_targets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
