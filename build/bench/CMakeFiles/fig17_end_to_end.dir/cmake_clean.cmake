file(REMOVE_RECURSE
  "CMakeFiles/fig17_end_to_end.dir/fig17_end_to_end.cc.o"
  "CMakeFiles/fig17_end_to_end.dir/fig17_end_to_end.cc.o.d"
  "fig17_end_to_end"
  "fig17_end_to_end.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_end_to_end.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
