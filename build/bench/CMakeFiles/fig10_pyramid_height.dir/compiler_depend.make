# Empty compiler generated dependencies file for fig10_pyramid_height.
# This may be replaced when dependencies are built.
