file(REMOVE_RECURSE
  "CMakeFiles/fig10_pyramid_height.dir/fig10_pyramid_height.cc.o"
  "CMakeFiles/fig10_pyramid_height.dir/fig10_pyramid_height.cc.o.d"
  "fig10_pyramid_height"
  "fig10_pyramid_height.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_pyramid_height.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
