# Empty dependencies file for fig12_privacy_profile.
# This may be replaced when dependencies are built.
