file(REMOVE_RECURSE
  "CMakeFiles/fig12_privacy_profile.dir/fig12_privacy_profile.cc.o"
  "CMakeFiles/fig12_privacy_profile.dir/fig12_privacy_profile.cc.o.d"
  "fig12_privacy_profile"
  "fig12_privacy_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_privacy_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
