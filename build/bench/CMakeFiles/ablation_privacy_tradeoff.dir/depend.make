# Empty dependencies file for ablation_privacy_tradeoff.
# This may be replaced when dependencies are built.
