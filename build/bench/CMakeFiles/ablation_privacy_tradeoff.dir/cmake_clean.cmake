file(REMOVE_RECURSE
  "CMakeFiles/ablation_privacy_tradeoff.dir/ablation_privacy_tradeoff.cc.o"
  "CMakeFiles/ablation_privacy_tradeoff.dir/ablation_privacy_tradeoff.cc.o.d"
  "ablation_privacy_tradeoff"
  "ablation_privacy_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_privacy_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
