# Empty dependencies file for fig13_public_targets.
# This may be replaced when dependencies are built.
