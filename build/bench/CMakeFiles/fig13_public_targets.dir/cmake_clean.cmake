file(REMOVE_RECURSE
  "CMakeFiles/fig13_public_targets.dir/fig13_public_targets.cc.o"
  "CMakeFiles/fig13_public_targets.dir/fig13_public_targets.cc.o.d"
  "fig13_public_targets"
  "fig13_public_targets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_public_targets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
