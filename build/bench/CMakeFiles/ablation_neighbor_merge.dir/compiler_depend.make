# Empty compiler generated dependencies file for ablation_neighbor_merge.
# This may be replaced when dependencies are built.
