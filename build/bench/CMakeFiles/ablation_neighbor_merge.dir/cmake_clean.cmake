file(REMOVE_RECURSE
  "CMakeFiles/ablation_neighbor_merge.dir/ablation_neighbor_merge.cc.o"
  "CMakeFiles/ablation_neighbor_merge.dir/ablation_neighbor_merge.cc.o.d"
  "ablation_neighbor_merge"
  "ablation_neighbor_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_neighbor_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
