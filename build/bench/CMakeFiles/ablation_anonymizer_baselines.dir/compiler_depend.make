# Empty compiler generated dependencies file for ablation_anonymizer_baselines.
# This may be replaced when dependencies are built.
