file(REMOVE_RECURSE
  "CMakeFiles/ablation_anonymizer_baselines.dir/ablation_anonymizer_baselines.cc.o"
  "CMakeFiles/ablation_anonymizer_baselines.dir/ablation_anonymizer_baselines.cc.o.d"
  "ablation_anonymizer_baselines"
  "ablation_anonymizer_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_anonymizer_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
