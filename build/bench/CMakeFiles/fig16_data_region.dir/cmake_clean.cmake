file(REMOVE_RECURSE
  "CMakeFiles/fig16_data_region.dir/fig16_data_region.cc.o"
  "CMakeFiles/fig16_data_region.dir/fig16_data_region.cc.o.d"
  "fig16_data_region"
  "fig16_data_region.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_data_region.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
