# Empty compiler generated dependencies file for fig16_data_region.
# This may be replaced when dependencies are built.
