file(REMOVE_RECURSE
  "CMakeFiles/fig15_query_region.dir/fig15_query_region.cc.o"
  "CMakeFiles/fig15_query_region.dir/fig15_query_region.cc.o.d"
  "fig15_query_region"
  "fig15_query_region.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_query_region.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
