# Empty compiler generated dependencies file for fig15_query_region.
# This may be replaced when dependencies are built.
