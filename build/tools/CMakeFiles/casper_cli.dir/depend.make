# Empty dependencies file for casper_cli.
# This may be replaced when dependencies are built.
