file(REMOVE_RECURSE
  "CMakeFiles/casper_cli.dir/casper_cli.cc.o"
  "CMakeFiles/casper_cli.dir/casper_cli.cc.o.d"
  "casper_cli"
  "casper_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casper_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
