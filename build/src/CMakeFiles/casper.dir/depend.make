# Empty dependencies file for casper.
# This may be replaced when dependencies are built.
