
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/anonymizer/adaptive_anonymizer.cc" "src/CMakeFiles/casper.dir/anonymizer/adaptive_anonymizer.cc.o" "gcc" "src/CMakeFiles/casper.dir/anonymizer/adaptive_anonymizer.cc.o.d"
  "/root/repo/src/anonymizer/basic_anonymizer.cc" "src/CMakeFiles/casper.dir/anonymizer/basic_anonymizer.cc.o" "gcc" "src/CMakeFiles/casper.dir/anonymizer/basic_anonymizer.cc.o.d"
  "/root/repo/src/anonymizer/cell_id.cc" "src/CMakeFiles/casper.dir/anonymizer/cell_id.cc.o" "gcc" "src/CMakeFiles/casper.dir/anonymizer/cell_id.cc.o.d"
  "/root/repo/src/anonymizer/cloaking.cc" "src/CMakeFiles/casper.dir/anonymizer/cloaking.cc.o" "gcc" "src/CMakeFiles/casper.dir/anonymizer/cloaking.cc.o.d"
  "/root/repo/src/anonymizer/privacy_analysis.cc" "src/CMakeFiles/casper.dir/anonymizer/privacy_analysis.cc.o" "gcc" "src/CMakeFiles/casper.dir/anonymizer/privacy_analysis.cc.o.d"
  "/root/repo/src/anonymizer/pseudonyms.cc" "src/CMakeFiles/casper.dir/anonymizer/pseudonyms.cc.o" "gcc" "src/CMakeFiles/casper.dir/anonymizer/pseudonyms.cc.o.d"
  "/root/repo/src/baselines/clique_cloak.cc" "src/CMakeFiles/casper.dir/baselines/clique_cloak.cc.o" "gcc" "src/CMakeFiles/casper.dir/baselines/clique_cloak.cc.o.d"
  "/root/repo/src/baselines/gg_cloak.cc" "src/CMakeFiles/casper.dir/baselines/gg_cloak.cc.o" "gcc" "src/CMakeFiles/casper.dir/baselines/gg_cloak.cc.o.d"
  "/root/repo/src/casper/casper.cc" "src/CMakeFiles/casper.dir/casper/casper.cc.o" "gcc" "src/CMakeFiles/casper.dir/casper/casper.cc.o.d"
  "/root/repo/src/casper/trace.cc" "src/CMakeFiles/casper.dir/casper/trace.cc.o" "gcc" "src/CMakeFiles/casper.dir/casper/trace.cc.o.d"
  "/root/repo/src/casper/workload.cc" "src/CMakeFiles/casper.dir/casper/workload.cc.o" "gcc" "src/CMakeFiles/casper.dir/casper/workload.cc.o.d"
  "/root/repo/src/common/geometry.cc" "src/CMakeFiles/casper.dir/common/geometry.cc.o" "gcc" "src/CMakeFiles/casper.dir/common/geometry.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/casper.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/casper.dir/common/rng.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/casper.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/casper.dir/common/stats.cc.o.d"
  "/root/repo/src/network/moving_objects.cc" "src/CMakeFiles/casper.dir/network/moving_objects.cc.o" "gcc" "src/CMakeFiles/casper.dir/network/moving_objects.cc.o.d"
  "/root/repo/src/network/network_generator.cc" "src/CMakeFiles/casper.dir/network/network_generator.cc.o" "gcc" "src/CMakeFiles/casper.dir/network/network_generator.cc.o.d"
  "/root/repo/src/network/road_network.cc" "src/CMakeFiles/casper.dir/network/road_network.cc.o" "gcc" "src/CMakeFiles/casper.dir/network/road_network.cc.o.d"
  "/root/repo/src/network/shortest_path.cc" "src/CMakeFiles/casper.dir/network/shortest_path.cc.o" "gcc" "src/CMakeFiles/casper.dir/network/shortest_path.cc.o.d"
  "/root/repo/src/processor/continuous.cc" "src/CMakeFiles/casper.dir/processor/continuous.cc.o" "gcc" "src/CMakeFiles/casper.dir/processor/continuous.cc.o.d"
  "/root/repo/src/processor/density.cc" "src/CMakeFiles/casper.dir/processor/density.cc.o" "gcc" "src/CMakeFiles/casper.dir/processor/density.cc.o.d"
  "/root/repo/src/processor/extended_area.cc" "src/CMakeFiles/casper.dir/processor/extended_area.cc.o" "gcc" "src/CMakeFiles/casper.dir/processor/extended_area.cc.o.d"
  "/root/repo/src/processor/filter_policy.cc" "src/CMakeFiles/casper.dir/processor/filter_policy.cc.o" "gcc" "src/CMakeFiles/casper.dir/processor/filter_policy.cc.o.d"
  "/root/repo/src/processor/naive.cc" "src/CMakeFiles/casper.dir/processor/naive.cc.o" "gcc" "src/CMakeFiles/casper.dir/processor/naive.cc.o.d"
  "/root/repo/src/processor/private_knn.cc" "src/CMakeFiles/casper.dir/processor/private_knn.cc.o" "gcc" "src/CMakeFiles/casper.dir/processor/private_knn.cc.o.d"
  "/root/repo/src/processor/private_nn.cc" "src/CMakeFiles/casper.dir/processor/private_nn.cc.o" "gcc" "src/CMakeFiles/casper.dir/processor/private_nn.cc.o.d"
  "/root/repo/src/processor/private_nn_private.cc" "src/CMakeFiles/casper.dir/processor/private_nn_private.cc.o" "gcc" "src/CMakeFiles/casper.dir/processor/private_nn_private.cc.o.d"
  "/root/repo/src/processor/private_range.cc" "src/CMakeFiles/casper.dir/processor/private_range.cc.o" "gcc" "src/CMakeFiles/casper.dir/processor/private_range.cc.o.d"
  "/root/repo/src/processor/public_nn_private.cc" "src/CMakeFiles/casper.dir/processor/public_nn_private.cc.o" "gcc" "src/CMakeFiles/casper.dir/processor/public_nn_private.cc.o.d"
  "/root/repo/src/processor/public_range.cc" "src/CMakeFiles/casper.dir/processor/public_range.cc.o" "gcc" "src/CMakeFiles/casper.dir/processor/public_range.cc.o.d"
  "/root/repo/src/processor/query_cache.cc" "src/CMakeFiles/casper.dir/processor/query_cache.cc.o" "gcc" "src/CMakeFiles/casper.dir/processor/query_cache.cc.o.d"
  "/root/repo/src/processor/target_store.cc" "src/CMakeFiles/casper.dir/processor/target_store.cc.o" "gcc" "src/CMakeFiles/casper.dir/processor/target_store.cc.o.d"
  "/root/repo/src/spatial/grid_index.cc" "src/CMakeFiles/casper.dir/spatial/grid_index.cc.o" "gcc" "src/CMakeFiles/casper.dir/spatial/grid_index.cc.o.d"
  "/root/repo/src/spatial/rtree.cc" "src/CMakeFiles/casper.dir/spatial/rtree.cc.o" "gcc" "src/CMakeFiles/casper.dir/spatial/rtree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
