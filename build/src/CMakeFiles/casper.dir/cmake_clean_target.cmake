file(REMOVE_RECURSE
  "libcasper.a"
)
