// Private queries over private data (§5.2): "where is my nearest
// buddy?" — both the querying user and the buddies are cloaked. The
// untrusted server tier (server::QueryServer) matches the query's
// cloaked region against the stored cloaked regions of every other
// user — which it knows only under opaque pseudonym handles, thanks to
// the wire-message boundary of DESIGN.md §1b — and returns the
// candidate buddies; the trusted side ranks them locally under region
// uncertainty and resolves the winning pseudonym back to a user id.
//
// Run: ./build/examples/example_buddy_finder

#include <cstdio>

#include "src/casper/casper.h"
#include "src/casper/workload.h"
#include "src/common/rng.h"

int main() {
  using namespace casper;

  CasperOptions options;
  options.pyramid.height = 8;
  options.filter_policy = processor::FilterPolicy::kFourFilters;
  CasperService service(options);

  // A population with varied privacy postures: a privacy-conscious
  // third wants 50-anonymity, the rest are relaxed.
  Rng rng(31);
  const Rect space = options.pyramid.space;
  for (anonymizer::UserId uid = 0; uid < 1500; ++uid) {
    anonymizer::PrivacyProfile profile;
    if (uid % 3 == 0) {
      profile.k = 50;
      profile.a_min = space.Area() * 0.001;
    } else {
      profile.k = 5;
      profile.a_min = 0.0;
    }
    if (!service.RegisterUser(uid, profile, rng.PointIn(space)).ok()) {
      return 1;
    }
  }

  // The anonymizer tier builds an identity-stripped SnapshotMsg (fresh
  // pseudonyms, fresh cloaks) and the server tier bulk-loads it.
  if (auto st = service.SyncPrivateData(); !st.ok()) {
    std::fprintf(stderr, "sync: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("1500 users registered; the server tier stores %zu cloaked "
              "regions and zero identities\n\n",
              service.private_store().size());

  for (anonymizer::UserId uid : {0ull, 1ull, 600ull}) {
    auto response = service.QueryNearestPrivate(uid);
    if (!response.ok()) {
      std::fprintf(stderr, "query %llu: %s\n",
                   static_cast<unsigned long long>(uid),
                   response.status().ToString().c_str());
      return 1;
    }
    const auto& r = *response;
    std::printf("user %llu (k=%s):\n", static_cast<unsigned long long>(uid),
                uid % 3 == 0 ? "50, strict" : "5, relaxed");
    std::printf("  query cloak        : %s\n",
                r.cloak.region.ToString().c_str());
    std::printf("  candidate buddies  : %zu of 1499 others\n",
                r.server_answer.size());
    // The server only ever sees pseudonyms; the trusted anonymizer side
    // resolves the winner back to a real user id for the app.
    auto buddy = service.ResolvePseudonym(r.best.id);
    std::printf("  best (minimax)     : pseudonym %016llx -> user %llu, "
                "region %s\n",
                static_cast<unsigned long long>(r.best.id),
                static_cast<unsigned long long>(buddy.ok() ? *buddy : 0),
                r.best.region.ToString().c_str());
    std::printf("  server time %.1f us, transmission %.1f us\n\n",
                r.timing.processor_seconds * 1e6,
                r.timing.transmission_seconds * 1e6);
  }

  // Administrator view (public query over private data): how many users
  // are in the north-east quadrant right now? Phrased through the
  // unified dispatch this time — one QueryRequest variant covers all
  // seven query kinds.
  auto admin = service.Execute(PublicRangeQ{Rect(0.5, 0.5, 1.0, 1.0)});
  if (!admin.ok()) return 1;
  const auto& count = std::get<processor::RangeCountResult>(*admin);
  std::printf("admin range count over NE quadrant: certain %zu, expected "
              "%.1f, possible %zu\n",
              count.certain, count.expected, count.possible);
  std::printf("(the gap between certain and possible is the privacy the "
              "cloaks buy)\n");
  return 0;
}
