// Trace tooling: record a moving-object workload to a CSV trace file,
// then replay it through a fresh anonymizer and verify the replay is
// bit-identical — the workflow for sharing reproducible experiments.
//
// Run: ./build/examples/example_record_and_replay [trace-path]

#include <cstdio>
#include <string>

#include "src/anonymizer/basic_anonymizer.h"
#include "src/casper/trace.h"
#include "src/network/network_generator.h"

int main(int argc, char** argv) {
  using namespace casper;
  const std::string path =
      argc > 1 ? argv[1] : "/tmp/casper_example.trace";

  // 1. Record: 500 drivers, 20 ticks.
  network::NetworkGeneratorOptions net_opt;
  net_opt.rows = 12;
  net_opt.cols = 12;
  auto net = network::NetworkGenerator(net_opt).Generate(31);
  if (!net.ok()) return 1;
  network::SimulatorOptions sim_opt;
  sim_opt.object_count = 500;
  network::MovingObjectSimulator sim(&*net, sim_opt, 37);

  Rng rng(41);
  workload::ProfileDistribution dist;
  const workload::Trace trace =
      workload::RecordTrace(&sim, 500, dist, 20, &rng);
  if (auto st = workload::WriteTrace(trace, path); !st.ok()) {
    std::fprintf(stderr, "write: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("recorded %zu registrations + %zu updates -> %s\n",
              trace.registrations.size(), trace.updates.size(), path.c_str());

  // 2. Replay from disk into an anonymizer.
  auto loaded = workload::ReadTrace(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "read: %s\n", loaded.status().ToString().c_str());
    return 1;
  }

  anonymizer::PyramidConfig config;
  config.space = net->bounds();
  config.height = 8;
  auto replay_once = [&]() -> Result<std::vector<Rect>> {
    anonymizer::BasicAnonymizer anon(config);
    for (const auto& r : loaded->registrations) {
      CASPER_RETURN_IF_ERROR(anon.RegisterUser(
          r.uid, r.profile, ClampToRect(r.position, config.space)));
    }
    for (const auto& batch : loaded->UpdatesByTick()) {
      CASPER_RETURN_IF_ERROR(workload::ApplyTick(batch, &anon));
    }
    std::vector<Rect> cloaks;
    for (anonymizer::UserId uid = 0; uid < 500; uid += 25) {
      CASPER_ASSIGN_OR_RETURN(cloak, anon.Cloak(uid));
      cloaks.push_back(cloak.region);
    }
    return cloaks;
  };

  auto first = replay_once();
  auto second = replay_once();
  if (!first.ok() || !second.ok()) {
    std::fprintf(stderr, "replay failed\n");
    return 1;
  }
  for (size_t i = 0; i < first->size(); ++i) {
    if (!((*first)[i] == (*second)[i])) {
      std::fprintf(stderr, "BUG: replay diverged at cloak %zu\n", i);
      return 1;
    }
  }
  std::printf("replayed the trace twice: %zu sampled cloaks identical — "
              "experiments on this trace are fully reproducible.\n",
              first->size());
  std::printf("sample cloak for user 0: %s\n",
              (*first)[0].ToString().c_str());
  return 0;
}
