// Private queries over public data (§5.1), on a realistic mobile
// workload: users drive along a synthetic road network (the Brinkhoff
// generator substitute), continuously updating the anonymizer, while
// asking for their nearest gas station.
//
// The example contrasts Casper's candidate list against the two naive
// extremes of Figure 4:
//   * center-NN  — tiny transfer, frequently wrong;
//   * send-all   — always right, transfers the whole table;
//   * Casper     — always right, transfers a small candidate list.
//
// Run: ./build/examples/example_nearest_gas_station

#include <cstdio>

#include "src/casper/casper.h"
#include "src/casper/workload.h"
#include "src/network/network_generator.h"

int main() {
  using namespace casper;

  // Road network and moving users.
  network::NetworkGeneratorOptions net_opt;
  net_opt.rows = 20;
  net_opt.cols = 20;
  auto net = network::NetworkGenerator(net_opt).Generate(7);
  if (!net.ok()) {
    std::fprintf(stderr, "network: %s\n", net.status().ToString().c_str());
    return 1;
  }
  network::SimulatorOptions sim_opt;
  sim_opt.object_count = 2000;
  sim_opt.tick_seconds = 1.0;
  network::MovingObjectSimulator sim(&*net, sim_opt, 11);

  // Casper service over the same space.
  CasperOptions options;
  options.pyramid.space = net->bounds();
  options.pyramid.height = 8;
  CasperService service(options);

  Rng rng(13);
  workload::ProfileDistribution dist;  // Paper defaults: k in [1,50].
  if (auto st = workload::RegisterSimulatedUsers(sim, 2000, dist,
                                                 &service.anonymizer(), &rng);
      !st.ok()) {
    std::fprintf(stderr, "register: %s\n", st.ToString().c_str());
    return 1;
  }
  // Mirror the exact positions into the client-side map by re-driving
  // the facade (RegisterSimulatedUsers talks to the anonymizer only).
  // For the example we simply register targets and use the anonymizer
  // through the facade for queries below.
  service.SetPublicTargets(workload::UniformPublicTargets(
      1000, options.pyramid.space, &rng));

  std::printf("road network: %zu nodes, %zu edges; %zu drivers; "
              "1000 gas stations\n\n",
              net->node_count(), net->edge_count(), sim.object_count());

  TransmissionModel channel;  // 64-byte records at 100 Mbps.
  size_t center_wrong = 0;
  size_t casper_records = 0;
  size_t queries = 0;

  // Drive a few simulation ticks; a sample of users query each tick.
  for (int tick = 0; tick < 5; ++tick) {
    for (const auto& update : sim.Tick()) {
      const Point p = ClampToRect(update.position, options.pyramid.space);
      if (!service.anonymizer().UpdateLocation(update.uid, p).ok()) return 1;
    }
    for (anonymizer::UserId uid = tick; uid < 2000; uid += 97) {
      auto cloak = service.anonymizer().Cloak(uid);
      if (!cloak.ok()) continue;  // k larger than population never happens here.
      const Point user = ClampToRect(sim.PositionOf(uid),
                                     options.pyramid.space);

      // Casper candidate list + local refinement.
      auto answer = processor::PrivateNearestNeighbor(
          service.public_store(), cloak->region,
          processor::FilterPolicy::kFourFilters);
      if (!answer.ok()) return 1;
      auto refined = processor::RefineNearest(answer->candidates, user);
      auto truth = service.public_store().Nearest(user);
      if (!refined.ok() || !truth.ok() || refined->id != truth->id) {
        std::fprintf(stderr, "BUG: inclusive property violated\n");
        return 1;
      }
      casper_records += answer->size();

      // Center-NN baseline.
      auto naive = processor::NaiveCenterNearest(service.public_store(),
                                                 cloak->region);
      if (naive.ok() && naive->id != truth->id) ++center_wrong;
      ++queries;
    }
  }

  const double casper_avg = static_cast<double>(casper_records) / queries;
  std::printf("%zu private NN queries over 5 ticks\n", queries);
  std::printf("  center-NN baseline : wrong answer on %zu/%zu queries "
              "(%.1f%%)\n",
              center_wrong, queries, 100.0 * center_wrong / queries);
  std::printf("  send-all baseline  : 1000 records = %zu bytes/query "
              "(%.1f us on channel)\n",
              channel.BytesFor(1000), channel.SecondsFor(1000) * 1e6);
  std::printf("  casper             : exact answers, avg %.1f records = "
              "%.0f bytes/query (%.1f us)\n",
              casper_avg, casper_avg * channel.record_bytes(),
              channel.SecondsFor(static_cast<size_t>(casper_avg)) * 1e6);
  return 0;
}
