// Quickstart: the smallest end-to-end Casper session.
//
// A mobile user registers with a privacy profile (k = 20 anonymity,
// minimum cloak area 0.1% of the city), the trusted anonymizer tier
// blurs their position, the untrusted query-server tier answers "where
// is my nearest gas station?" with a candidate list, and the client
// refines the exact answer locally — the server tier never sees the
// exact location (or even a user id: the tiers speak only the wire
// messages of src/casper/messages.h; see DESIGN.md §1b).
//
// Build & run:  cmake --build build && ./build/examples/example_quickstart

#include <cstdio>

#include "src/casper/casper.h"
#include "src/casper/workload.h"
#include "src/common/rng.h"

int main() {
  using namespace casper;

  // 1. Configure the framework: a 1x1 "city" managed by a pyramid of
  //    height 8 (the anonymizer's finest cells are 1/256 x 1/256).
  CasperOptions options;
  options.pyramid.space = Rect(0.0, 0.0, 1.0, 1.0);
  options.pyramid.height = 8;
  options.use_adaptive_anonymizer = true;
  CasperService service(options);

  // 2. A population of mobile users (positions are only ever seen by
  //    the trusted anonymizer, never by the database server).
  Rng rng(2024);
  for (anonymizer::UserId uid = 0; uid < 1000; ++uid) {
    anonymizer::PrivacyProfile profile;
    profile.k = 20;                                  // 20-anonymous
    profile.a_min = options.pyramid.space.Area() * 0.001;  // >= 0.1% area
    Status st = service.RegisterUser(uid, profile,
                                     rng.PointIn(options.pyramid.space));
    if (!st.ok()) {
      std::fprintf(stderr, "register failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  // 3. Public data: 200 gas stations, stored exactly.
  service.SetPublicTargets(workload::UniformPublicTargets(
      200, options.pyramid.space, &rng));

  // 4. User 42 asks for their nearest gas station. QueryNearestPublic
  //    is a thin wrapper over the unified dispatch — the same query can
  //    be phrased as service.Execute(NearestPublicQ{42}), which is how
  //    the batch engine, the CLI, and the benches drive every kind.
  auto response = service.QueryNearestPublic(42);
  if (!response.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 response.status().ToString().c_str());
    return 1;
  }

  const auto& r = *response;
  const Point position = *service.ClientPosition(42);
  std::printf("user 42 true position      : (%.4f, %.4f)  [client-only]\n",
              position.x, position.y);
  std::printf("cloaked region sent to db  : %s (area %.4f%%, %llu users)\n",
              r.cloak.region.ToString().c_str(),
              100.0 * r.cloak.region.Area() / options.pyramid.space.Area(),
              static_cast<unsigned long long>(r.cloak.users_in_region));
  std::printf("candidate list from server : %zu of 200 stations\n",
              r.server_answer.size());
  std::printf("exact answer after refine  : station %llu at (%.4f, %.4f)\n",
              static_cast<unsigned long long>(r.exact.id),
              r.exact.position.x, r.exact.position.y);
  std::printf("timing: anonymizer %.1f us, processor %.1f us, "
              "transmission %.1f us\n",
              r.timing.anonymizer_seconds * 1e6,
              r.timing.processor_seconds * 1e6,
              r.timing.transmission_seconds * 1e6);

  // 5. The same query through the unified dispatch: one QueryRequest
  //    variant covers all seven kinds, and the answers are identical.
  auto unified = service.Execute(NearestPublicQ{42});
  if (!unified.ok() ||
      std::get<PublicNNResponse>(*unified).exact.id != r.exact.id) {
    std::fprintf(stderr, "BUG: unified dispatch disagrees with wrapper!\n");
    return 1;
  }

  // 6. Sanity: the candidate list is *inclusive* — the refined answer
  //    equals the true nearest neighbor computed with full knowledge.
  auto truth = service.public_store().Nearest(position);
  if (truth.ok() && truth->id == r.exact.id) {
    std::printf("verified: candidate list contained the true nearest "
                "station, with the server never seeing the location.\n");
    return 0;
  }
  std::fprintf(stderr, "BUG: refined answer differs from ground truth!\n");
  return 1;
}
