// Continuous private NN queries: a driver keeps a standing "nearest gas
// station" subscription while moving along the road network. The
// incremental manager reuses or patches answers when it can prove the
// stored candidate list is still inclusive, and recomputes otherwise —
// the integration hook §5 defers to incremental query processors.
//
// Run: ./build/examples/example_continuous_tracking

#include <cstdio>

#include "src/anonymizer/adaptive_anonymizer.h"
#include "src/casper/workload.h"
#include "src/network/network_generator.h"
#include "src/processor/continuous.h"

int main() {
  using namespace casper;

  network::NetworkGeneratorOptions net_opt;
  net_opt.rows = 16;
  net_opt.cols = 16;
  auto net = network::NetworkGenerator(net_opt).Generate(21);
  if (!net.ok()) return 1;
  network::SimulatorOptions sim_opt;
  sim_opt.object_count = 800;
  network::MovingObjectSimulator sim(&*net, sim_opt, 23);

  anonymizer::PyramidConfig config;
  config.space = net->bounds();
  config.height = 8;
  anonymizer::AdaptiveAnonymizer anon(config);

  Rng rng(29);
  workload::ProfileDistribution dist;
  dist.k_min = 10;
  dist.k_max = 30;
  if (!workload::RegisterSimulatedUsers(sim, 800, dist, &anon, &rng).ok()) {
    return 1;
  }

  processor::PublicTargetStore store(
      workload::UniformPublicTargets(500, config.space, &rng));
  processor::ContinuousQueryManager manager(&store);

  // Every 40th driver keeps a standing query.
  std::vector<std::pair<anonymizer::UserId, processor::QueryId>> queries;
  for (anonymizer::UserId uid = 0; uid < 800; uid += 40) {
    auto cloak = anon.Cloak(uid);
    if (!cloak.ok()) return 1;
    auto qid = manager.Register(cloak->region);
    if (!qid.ok()) return 1;
    queries.emplace_back(uid, *qid);
  }
  std::printf("%zu standing queries over 500 stations, 800 drivers\n\n",
              queries.size());

  for (int tick = 0; tick < 30; ++tick) {
    for (const auto& update : sim.Tick()) {
      const Point p = ClampToRect(update.position, config.space);
      if (!anon.UpdateLocation(update.uid, p).ok()) return 1;
    }
    for (const auto& [uid, qid] : queries) {
      auto cloak = anon.Cloak(uid);
      if (!cloak.ok()) return 1;
      auto answer = manager.OnCloakChanged(qid, cloak->region);
      if (!answer.ok()) return 1;

      // The client refines locally; verify inclusiveness on the fly.
      const Point user = ClampToRect(sim.PositionOf(uid), config.space);
      auto refined = processor::RefineNearest(answer->candidates, user);
      auto truth = store.Nearest(user);
      if (!refined.ok() || !truth.ok() || refined->id != truth->id) {
        std::fprintf(stderr, "BUG: stale continuous answer at tick %d\n",
                     tick);
        return 1;
      }
    }
  }

  const auto& stats = manager.stats();
  const uint64_t events = stats.evaluations + stats.reuses;
  std::printf("after 30 ticks x %zu queries:\n", queries.size());
  std::printf("  full evaluations : %llu\n",
              static_cast<unsigned long long>(stats.evaluations));
  std::printf("  reused answers   : %llu (%.1f%% of cloak events)\n",
              static_cast<unsigned long long>(stats.reuses),
              100.0 * stats.reuses / events);
  std::printf("every answer stayed provably inclusive; reuse happens when "
              "the new cloak is contained in the previous one.\n");
  return 0;
}
