// Public queries over private data (§5): a traffic administrator
// partitions the city into districts and monitors how many vehicles are
// in each — but every vehicle reports only a cloaked region, so the
// counts come with certain/expected/possible bounds. The example drives
// vehicles along the road network and prints a per-district dashboard
// over time, comparing the expected counts against the (hidden) truth.
//
// Run: ./build/examples/example_traffic_monitor

#include <cstdio>
#include <vector>

#include "src/casper/casper.h"
#include "src/casper/workload.h"
#include "src/network/network_generator.h"

int main() {
  using namespace casper;

  network::NetworkGeneratorOptions net_opt;
  net_opt.rows = 16;
  net_opt.cols = 16;
  auto net = network::NetworkGenerator(net_opt).Generate(3);
  if (!net.ok()) return 1;

  network::SimulatorOptions sim_opt;
  sim_opt.object_count = 1200;
  sim_opt.tick_seconds = 2.0;
  network::MovingObjectSimulator sim(&*net, sim_opt, 5);

  CasperOptions options;
  options.pyramid.space = net->bounds();
  options.pyramid.height = 7;
  CasperService service(options);

  Rng rng(17);
  workload::ProfileDistribution dist;
  dist.k_min = 10;
  dist.k_max = 40;
  const Rect space = options.pyramid.space;
  for (anonymizer::UserId uid = 0; uid < sim_opt.object_count; ++uid) {
    const auto profile = workload::SampleProfile(dist, space.Area(), &rng);
    const Point p = ClampToRect(sim.PositionOf(uid), space);
    if (!service.RegisterUser(uid, profile, p).ok()) return 1;
  }

  // A 2x2 district grid. The split lines are deliberately *not* on
  // pyramid cell boundaries (43% / 57%), so cloaked regions straddle
  // districts and the certain/expected/possible bounds separate.
  std::vector<std::pair<const char*, Rect>> districts;
  const Point c{space.min.x + 0.43 * space.width(),
                space.min.y + 0.57 * space.height()};
  districts.emplace_back("SW", Rect(space.min.x, space.min.y, c.x, c.y));
  districts.emplace_back("SE", Rect(c.x, space.min.y, space.max.x, c.y));
  districts.emplace_back("NW", Rect(space.min.x, c.y, c.x, space.max.y));
  districts.emplace_back("NE", Rect(c.x, c.y, space.max.x, space.max.y));

  std::printf("%zu vehicles on a %zu-node road network; districts SW SE NW "
              "NE\n\n",
              sim.object_count(), net->node_count());
  std::printf("%-5s %-4s %10s %10s %10s %10s\n", "tick", "dist", "certain",
              "expected", "possible", "truth");

  for (int tick = 0; tick < 6; ++tick) {
    for (const auto& update : sim.Tick()) {
      const Point p = ClampToRect(update.position, space);
      if (!service.UpdateUserLocation(update.uid, p).ok()) return 1;
    }
    if (!service.SyncPrivateData().ok()) return 1;

    for (const auto& [name, rect] : districts) {
      auto count = service.QueryPublicRange(rect);
      if (!count.ok()) return 1;
      // Ground truth, known only to this harness.
      size_t truth = 0;
      for (anonymizer::UserId uid = 0; uid < sim.object_count(); ++uid) {
        if (rect.Contains(ClampToRect(sim.PositionOf(uid), space))) ++truth;
      }
      std::printf("%-5d %-4s %10zu %10.1f %10zu %10zu\n", tick, name,
                  count->certain, count->expected, count->possible, truth);
    }
  }

  std::printf("\nexpected-count tracks the hidden truth while individual "
              "vehicles stay k-anonymous.\n");
  return 0;
}
